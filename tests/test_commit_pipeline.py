"""Tests for the staged commit pipeline (``repro.service.pipeline``).

What the phase split must and must not change:

- ``service.stats()['pipeline']`` surfaces per-phase timings and lock
  wait/hold accounting; batches commit through one pipeline scope;
- ``commit_pipeline=False`` restores the legacy single-phase critical
  section with **byte-identical** observable behavior (events,
  subscription results, deltas) — it exists as the measured pre-refactor
  baseline of the ``pipeline`` benchmark experiment;
- pull-consumer backpressure: ``block_writer`` parks the publisher until
  the consumer drains (then detaches on timeout), ``drop_oldest``
  sacrifices the oldest queued event and stays attached;
- a ``close()`` racing a blocked ``next_event()`` wakes it with
  :class:`~repro.errors.ChangefeedError` instead of letting it time out
  (the changefeed close-race fix).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ChangefeedError, ReproError
from repro.ops import DeleteOp, InsertOp
from repro.service import ViewConfig, open_view
from repro.service.pipeline import PHASES
from repro.workloads.registrar import build_registrar

DELETE = DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
INSERT = InsertOp(
    "course[cno=CS650]/prereq", "course", ("CS320", "Databases")
)


def registrar_service(**config):
    atg, db = build_registrar()
    config.setdefault("side_effects", "propagate")
    config.setdefault("strict", False)
    return open_view(atg, db, config=ViewConfig(**config))


def toggle(service, commits):
    """Alternate delete/insert of the CS320 prereq ``commits`` times."""
    for i in range(commits):
        service.apply(DELETE if i % 2 == 0 else INSERT)


# ---------------------------------------------------------------------------
# The pipeline itself
# ---------------------------------------------------------------------------


class TestCommitPipeline:
    def test_stats_surface_per_phase_timings(self):
        service = registrar_service()
        service.subscribe("//course")
        feed = service.changefeed()
        service.apply(DELETE)
        stats = service.stats()["pipeline"]
        assert stats["commits"] == 1
        assert stats["records_sealed"] == 1
        assert stats["lock_wait_seconds"] >= 0.0
        assert stats["lock_hold_seconds"] > 0.0
        # All four phases ran: a subscription forces maintain, the open
        # feed forces publish, and mutate is the accounted remainder.
        assert set(stats["phase_seconds"]) == set(PHASES)
        assert stats["last"]["generation"] == 1
        assert feed.next_event(timeout=1).generation == 1

    def test_publish_runs_after_maintain(self):
        # The fence the stress test hammers, in its smallest form: by
        # the time the callback sees generation g, the subscription has
        # already converged to g.
        service = registrar_service()
        sub = service.subscribe("//course")
        seen = []
        service.changefeed(
            on_event=lambda e: seen.append((e.generation, sub.generation))
        )
        toggle(service, 3)
        assert seen == [(1, 1), (2, 2), (3, 3)]

    def test_batch_commits_through_one_scope(self):
        service = registrar_service()
        feed = service.changefeed()
        with service.batch() as batch:
            batch.apply(DELETE)
            batch.apply(INSERT)
        stats = service.stats()["pipeline"]
        assert stats["commits"] == 1
        # One coalesced event at the flush generation.
        events = feed.events()
        assert len(events) == 1
        assert events[0].generation == service.stats()["generation"]

    def test_rejected_op_seals_nothing(self):
        service = registrar_service()
        service.changefeed()
        outcome = service.apply(
            DeleteOp("course[cno=NOPE]/prereq/course[cno=CS320]")
        )
        assert not outcome.accepted
        stats = service.stats()["pipeline"]
        assert stats["commits"] == 1
        assert stats["records_sealed"] == 0
        assert service.changefeeds.stats()["events_published"] == 0

    def test_disabled_pipeline_reports_none(self):
        service = registrar_service(commit_pipeline=False)
        assert service.pipeline is None
        assert service.stats()["pipeline"] is None

    def test_config_rejects_non_bool(self):
        with pytest.raises(ReproError):
            ViewConfig(commit_pipeline="yes")

    @pytest.mark.parametrize("commits", [4])
    def test_legacy_mode_is_observably_identical(self, commits):
        def run(commit_pipeline):
            service = registrar_service(commit_pipeline=commit_pipeline)
            subs = [
                service.subscribe(q)
                for q in ("//course", "course[cno=CS650]//course")
            ]
            feed = service.changefeed()
            toggle(service, commits)
            events = [e.to_dict() for e in feed.events()]
            return events, [
                (sub.result(), sub.delta(), dict(sub.stats))
                for sub in subs
            ]

        assert run(True) == run(False)


# ---------------------------------------------------------------------------
# Backpressure policies
# ---------------------------------------------------------------------------


class TestBackpressure:
    def test_unknown_policy_rejected(self):
        service = registrar_service()
        with pytest.raises(ChangefeedError):
            service.changefeed(backpressure="shed_load")

    def test_drop_oldest_stays_attached_across_overflow(self):
        service = registrar_service(changefeed_retention=2)
        feed = service.changefeed(backpressure="drop_oldest")  # bound 4
        toggle(service, 6)
        assert not feed.closed
        assert feed.error is None
        assert feed.drops == 2
        assert service.changefeeds.stats()["drops"] == 2
        assert service.changefeeds.stats()["overflows"] == 0
        # The oldest events were sacrificed; the tail is intact.
        assert [e.generation for e in feed.events()] == [3, 4, 5, 6]

    def test_block_writer_waits_for_a_drain(self):
        service = registrar_service(changefeed_retention=1)
        feed = service.changefeed(block_timeout=5.0)  # bound 2
        toggle(service, 2)  # queue full

        drained = []

        def drain():
            time.sleep(0.05)
            drained.append(feed.next_event(timeout=1))

        thread = threading.Thread(target=drain)
        thread.start()
        # Delivery of generation 3 parks until the drain frees a slot;
        # the consumer survives instead of detaching.
        service.apply(DELETE)
        thread.join()
        assert drained[0].generation == 1
        assert not feed.closed
        assert service.changefeeds.stats()["overflows"] == 0
        assert [e.generation for e in feed.events()] == [2, 3]


# ---------------------------------------------------------------------------
# The close()/next_event() race
# ---------------------------------------------------------------------------


class TestCloseRace:
    def test_close_wakes_blocked_next_event(self):
        service = registrar_service()
        feed = service.changefeed()
        outcome: list[object] = []

        def pull():
            try:
                outcome.append(feed.next_event(timeout=30))
            except ChangefeedError as exc:
                outcome.append(exc)

        thread = threading.Thread(target=pull)
        thread.start()
        time.sleep(0.05)  # let the puller park
        feed.close()
        thread.join(timeout=5)
        assert not thread.is_alive(), "close() left next_event() hanging"
        assert isinstance(outcome[0], ChangefeedError)

    def test_close_before_call_still_returns_none(self):
        service = registrar_service()
        feed = service.changefeed()
        service.apply(DELETE)
        feed.close()
        # Already-queued events stay drainable; only a *blocked* call
        # gets the exception.
        assert feed.next_event(timeout=0).generation == 1
        assert feed.next_event(timeout=0) is None

    def test_iteration_ends_on_concurrent_close(self):
        service = registrar_service()
        feed = service.changefeed()
        service.apply(DELETE)
        collected: list[int] = []

        def consume():
            for event in feed:
                collected.append(event.generation)

        thread = threading.Thread(target=consume)
        thread.start()
        time.sleep(0.05)
        feed.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert collected == [1]
