"""Unit tests for the durable changefeed log (:mod:`repro.wal`).

Record framing, rotation, manifest/checkpoint lifecycle, compaction
semantics, the log-backed changefeed resume path — and the corruption
matrix the durability docs promise: every distinguishable way a WAL
directory can be damaged is pinned to its typed error (or, for a torn
tail, to silent truncation).
"""

from __future__ import annotations

import gzip
import json
import os
import time

import pytest

from repro.errors import (
    ReplayGapError,
    WalCheckpointError,
    WalCorruptionError,
    WalError,
)
from repro.ops import DeleteOp, InsertOp
from repro.relational.database import DeltaOp, RelationalDelta
from repro.service import ViewConfig, open_view
from repro.subscribe.delta import EdgeRecord, NodeRecord, ViewEvent
from repro.wal import (
    FRAME_OVERHEAD,
    WriteAheadLog,
    decode_delta,
    encode_delta,
    encode_record,
    read_segment,
    recover_state,
)
from repro.workloads.registrar import build_registrar


def make_event(generation: int, coarse: bool = False) -> ViewEvent:
    return ViewEvent(
        generation=generation,
        coarse=coarse,
        edges=[EdgeRecord("insert", "a", "b", 1, 100 + generation)],
        nodes=[NodeRecord(100 + generation, "b", ("x", generation))],
        delta_r=RelationalDelta(
            [DeltaOp("insert", "r", (f"k{generation}", "v"))]
        ),
    )


def durable_wal(tmp_path, **kwargs) -> WriteAheadLog:
    kwargs.setdefault("segment_bytes", 1024)
    kwargs.setdefault("checkpoint_every", 4)
    return WriteAheadLog(str(tmp_path / "wal"), **kwargs)


def registrar_service(wal_dir, **config):
    atg, db = build_registrar()
    config.setdefault("strict", False)
    config.setdefault("side_effects", "propagate")
    config.setdefault("wal_dir", str(wal_dir))
    return open_view(atg, db, config=ViewConfig(**config))


# ---------------------------------------------------------------------------
# Record framing
# ---------------------------------------------------------------------------


class TestFraming:
    def test_roundtrip_and_overhead(self):
        payload = {"generation": 7, "event": {"edges": []}, "delta_r": None}
        data = encode_record(payload)
        body = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode()
        assert len(data) == len(body) + FRAME_OVERHEAD
        assert data.endswith(b"\n")
        records, torn = read_segment(data * 3, "seg", last=False)
        assert torn is None
        assert [p for _, p in records] == [payload] * 3
        # Offsets are byte positions, usable for error reporting.
        assert [off for off, _ in records] == [0, len(data), 2 * len(data)]

    @pytest.mark.parametrize("cut", [1, 8, 16, 17, 20, -2, -1])
    def test_torn_tail_is_reported_not_raised(self, cut):
        """Every strict prefix of a trailing record is a tear."""
        good = encode_record({"generation": 1})
        tail = encode_record({"generation": 2})
        data = good + (tail[:cut] if cut > 0 else tail[:cut])
        records, torn = read_segment(data, "seg", last=True)
        assert [p["generation"] for _, p in records] == [1]
        assert torn is not None
        assert torn.offset == len(good)
        assert torn.reason.startswith("incomplete")

    def test_torn_tail_in_sealed_segment_is_corruption(self):
        data = encode_record({"generation": 1})[:-3]
        with pytest.raises(WalCorruptionError) as exc:
            read_segment(data, "seg-00000001.wal", last=False)
        assert exc.value.segment == "seg-00000001.wal"
        assert exc.value.offset == 0

    def test_crc_flip_is_corruption_even_in_last_segment(self):
        """A complete-but-wrong record is never mistaken for a tear."""
        good = encode_record({"generation": 1})
        bad = bytearray(encode_record({"generation": 2}))
        bad[FRAME_OVERHEAD] ^= 0xFF  # flip a body byte; CRC now lies
        with pytest.raises(WalCorruptionError) as exc:
            read_segment(good + bytes(bad), "active", last=True)
        assert exc.value.offset == len(good)
        assert "CRC mismatch" in str(exc.value)

    def test_garbage_between_records_is_corruption(self):
        good = encode_record({"generation": 1})
        with pytest.raises(WalCorruptionError):
            read_segment(good + b"zzzz" + good, "seg", last=True)

    def test_delta_codec_roundtrip(self):
        delta = RelationalDelta(
            [
                DeltaOp("insert", "course", ("CS1", "T")),
                DeltaOp("delete", "prereq", ("CS1", "CS2")),
            ]
        )
        wire = encode_delta(delta)
        assert json.loads(json.dumps(wire)) == wire  # JSON-safe
        back = decode_delta(wire)
        assert back.ops == delta.ops
        assert encode_delta(None) is None
        assert decode_delta(None) is None
        assert encode_delta(RelationalDelta()) is None


# ---------------------------------------------------------------------------
# The log lifecycle
# ---------------------------------------------------------------------------


class TestLogLifecycle:
    def test_append_replay_reopen(self, tmp_path):
        wal = durable_wal(tmp_path, checkpoint_every=100)
        for g in range(1, 8):
            wal.append(make_event(g))
        assert [e.generation for e in wal.events_since(3)] == [4, 5, 6, 7]
        # Replayed events are wire-form: engine-internal fields gone.
        replayed = wal.events_since(0)[0]
        assert replayed.delta_r is None and replayed.closure is None
        # ...but the raw records still carry the ΔR for recovery.
        assert wal.records_since(0)[0][1]["delta_r"] is not None
        wal.close()
        wal2 = WriteAheadLog(str(tmp_path / "wal"))
        assert wal2.last_generation == 7
        assert [e.generation for e in wal2.events_since(0)] == list(
            range(1, 8)
        )
        wal2.close()

    def test_out_of_order_append_rejected(self, tmp_path):
        wal = durable_wal(tmp_path)
        wal.append(make_event(5))
        with pytest.raises(WalError, match="out of order"):
            wal.append(make_event(5))
        wal.close()

    def test_rotation_seals_segments(self, tmp_path):
        wal = durable_wal(tmp_path, segment_bytes=1024, checkpoint_every=100)
        for g in range(1, 40):
            wal.append(make_event(g))
        stats = wal.stats()
        assert stats["rotations"] >= 2
        assert stats["segments"] == stats["rotations"] + 1
        # Sealed segments survive reopen with the full stream intact.
        wal.close()
        wal2 = WriteAheadLog(str(tmp_path / "wal"), segment_bytes=1024)
        assert [e.generation for e in wal2.events_since(0)] == list(
            range(1, 40)
        )
        wal2.close()

    def test_compaction_advances_floor_to_live_checkpoint(self, tmp_path):
        wal = durable_wal(
            tmp_path, segment_bytes=1024, checkpoint_every=4,
            keep_checkpoints=2,
        )
        for g in range(1, 25):
            wal.append(make_event(g))
            if wal.should_checkpoint():
                wal.write_checkpoint({"state": g}, g)
        stats = wal.stats()
        assert len(stats["checkpoints"]) == 2
        oldest = stats["checkpoints"][0]["generation"]
        assert wal.floor == oldest
        # The floor names a *live* checkpoint: it loads, and replay
        # from it is complete.
        with pytest.raises(ReplayGapError) as exc:
            wal.records_since(wal.floor - 1)
        assert exc.value.oldest_available == oldest
        assert [e.generation for e in wal.events_since(oldest)] == list(
            range(oldest + 1, 25)
        )
        # Compacted files are actually gone from disk.
        names = os.listdir(str(tmp_path / "wal"))
        assert len([n for n in names if n.startswith("ckpt-")]) == 2
        wal.close()

    def test_checkpoint_envelope_roundtrip(self, tmp_path):
        wal = durable_wal(tmp_path)
        wal.append(make_event(1))
        wal.write_checkpoint({"snapshot": {"deep": [1, 2]}, "db": {}}, 1)
        ck = wal.latest_checkpoint()
        assert ck["generation"] == 1
        assert ck["state"] == {"snapshot": {"deep": [1, 2]}, "db": {}}
        # Same-generation checkpoint is idempotent, not duplicated.
        wal.write_checkpoint({"snapshot": {}, "db": {}}, 1)
        assert len(wal.stats()["checkpoints"]) == 1
        wal.close()

    def test_readonly_mode(self, tmp_path):
        wal = durable_wal(tmp_path)
        wal.append(make_event(1))
        wal.close()
        ro = WriteAheadLog(str(tmp_path / "wal"), readonly=True)
        assert [e.generation for e in ro.events_since(0)] == [1]
        with pytest.raises(WalError, match="read-only"):
            ro.append(make_event(2))
        with pytest.raises(WalError, match="read-only"):
            ro.write_checkpoint({}, 1)
        ro.close()
        with pytest.raises(WalError, match="not a WAL directory"):
            WriteAheadLog(str(tmp_path / "empty"), readonly=True)

    def test_fsync_policies_accepted_and_counted(self, tmp_path):
        always = WriteAheadLog(str(tmp_path / "a"), fsync="always")
        always.append(make_event(1))
        always.append(make_event(2))
        assert always.stats()["fsyncs"] == 2
        always.close()
        lazy = WriteAheadLog(str(tmp_path / "o"), fsync="os")
        lazy.append(make_event(1))
        assert lazy.stats()["fsyncs"] == 0
        lazy.close()
        with pytest.raises(WalError, match="fsync policy"):
            WriteAheadLog(str(tmp_path / "x"), fsync="sometimes")


# ---------------------------------------------------------------------------
# The corruption matrix
# ---------------------------------------------------------------------------


def _wal_dir_with_history(
    tmp_path, commits: int = 30, segment_bytes: int = 1024
) -> str:
    """A real service-produced WAL directory with sealed segments."""
    path = tmp_path / "wal"
    service = registrar_service(
        path, wal_segment_bytes=segment_bytes, wal_checkpoint_every=50
    )
    for i in range(commits):
        cno = ("CS650", "CS320", "CS240")[i % 3]
        service.apply(
            InsertOp(f"//course[cno={cno}]/prereq", "course", ("CS900", "X"))
        )
        service.apply(
            DeleteOp(f"//course[cno={cno}]/prereq/course[cno=CS900]")
        )
    service.close()
    return str(path)

def _reopen(path: str):
    atg, db = build_registrar()
    return open_view(
        atg, db,
        config=ViewConfig(strict=False, wal_dir=path, wal_segment_bytes=1024),
    )


class TestCorruptionMatrix:
    def test_truncated_tail_silently_dropped(self, tmp_path):
        # One big segment: the whole history lives in the active file,
        # so its tail is a legitimate tear target.
        path = _wal_dir_with_history(tmp_path, segment_bytes=1 << 20)
        manifest = json.loads(open(os.path.join(path, "manifest.json"), "rb").read())
        active = os.path.join(path, manifest["active"])
        size = os.path.getsize(active)
        os.truncate(active, size - 5)  # tear the last record
        service = _reopen(path)
        assert service.wal.torn_dropped == 1
        assert service.check_consistency() == []
        # The recovered generation is one commit behind the tear...
        assert service.stats()["generation"] == service.wal.last_generation
        # ...and the service keeps committing cleanly afterwards.
        service.apply(
            InsertOp("//course[cno=CS650]/prereq", "course", ("CS901", "Y"))
        )
        assert service.check_consistency() == []
        service.close()

    def test_flipped_crc_mid_segment_raises_typed_error(self, tmp_path):
        path = _wal_dir_with_history(tmp_path)
        manifest = json.loads(open(os.path.join(path, "manifest.json"), "rb").read())
        sealed = manifest["sealed"][0]["name"]
        target = os.path.join(path, sealed)
        blob = bytearray(open(target, "rb").read())
        offset = len(blob) // 2
        blob[offset] ^= 0xFF
        open(target, "wb").write(bytes(blob))
        with pytest.raises(WalCorruptionError) as exc:
            _reopen(path)
        assert exc.value.segment == sealed
        assert exc.value.offset is not None
        assert 0 <= exc.value.offset <= offset
        assert sealed in str(exc.value)

    def test_missing_sealed_segment_raises(self, tmp_path):
        path = _wal_dir_with_history(tmp_path)
        manifest = json.loads(open(os.path.join(path, "manifest.json"), "rb").read())
        sealed = manifest["sealed"][0]["name"]
        os.remove(os.path.join(path, sealed))
        with pytest.raises(WalCorruptionError, match="missing"):
            _reopen(path)

    def test_missing_checkpoint_raises(self, tmp_path):
        path = _wal_dir_with_history(tmp_path)
        manifest = json.loads(open(os.path.join(path, "manifest.json"), "rb").read())
        ck = manifest["checkpoints"][-1]["name"]
        os.remove(os.path.join(path, ck))
        with pytest.raises(WalCheckpointError, match="missing"):
            _reopen(path)

    def test_unreadable_checkpoint_raises(self, tmp_path):
        path = _wal_dir_with_history(tmp_path)
        manifest = json.loads(open(os.path.join(path, "manifest.json"), "rb").read())
        ck = os.path.join(path, manifest["checkpoints"][-1]["name"])
        open(ck, "wb").write(b"not gzip at all")
        with pytest.raises(WalCheckpointError, match="cannot be read"):
            _reopen(path)

    def test_checkpoint_manifest_generation_mismatch_raises(self, tmp_path):
        path = _wal_dir_with_history(tmp_path)
        manifest_path = os.path.join(path, "manifest.json")
        manifest = json.loads(open(manifest_path, "rb").read())
        # Lie about the checkpoint's generation: the envelope inside
        # the file no longer matches what the manifest promises.
        manifest["checkpoints"][-1]["generation"] += 1
        manifest["floor"] = min(
            manifest["floor"], manifest["checkpoints"][0]["generation"]
        )
        open(manifest_path, "w").write(json.dumps(manifest))
        with pytest.raises(WalCheckpointError, match="does not match"):
            _reopen(path)

    def test_corrupt_manifest_raises(self, tmp_path):
        path = _wal_dir_with_history(tmp_path)
        open(os.path.join(path, "manifest.json"), "w").write("{nope")
        with pytest.raises(WalCorruptionError, match="manifest"):
            _reopen(path)

    def test_orphan_files_cleaned_on_rw_open_only(self, tmp_path):
        path = _wal_dir_with_history(tmp_path)
        orphan = os.path.join(path, "tmp-ckpt-999.gz")
        stranger = os.path.join(path, "notes.txt")
        open(orphan, "wb").write(b"stranded")
        open(stranger, "wb").write(b"keep me")
        ro = WriteAheadLog(path, readonly=True)
        ro.close()
        assert os.path.exists(orphan)  # readonly never mutates
        service = _reopen(path)
        service.close()
        assert not os.path.exists(orphan)
        assert os.path.exists(stranger)  # only WAL-shaped names are owned


# ---------------------------------------------------------------------------
# Coarse records
# ---------------------------------------------------------------------------


class TestCoarseRecords:
    def test_coarse_commit_forces_checkpoint_and_recovers(self, tmp_path):
        path = tmp_path / "wal"
        service = registrar_service(path, wal_checkpoint_every=10_000)
        service.apply(
            InsertOp("//course[cno=CS650]/prereq", "course", ("CS900", "X"))
        )
        before = len(service.wal.stats()["checkpoints"])
        # A store rebuild publishes a coarse event; the hub must cut a
        # checkpoint right behind it so recovery never replays it.
        service.updater.rebuild_structures_only()
        after = service.wal.stats()["checkpoints"]
        assert len(after) == before + 1
        assert after[-1]["generation"] == service.stats()["generation"]
        digest = service.store.digest()
        service.close()
        recovered = _reopen(str(path))
        assert recovered.store.digest() == digest
        assert recovered.check_consistency() == []
        recovered.close()

    def test_coarse_record_without_checkpoint_is_a_typed_error(self, tmp_path):
        # Hand-build the lost-checkpoint shape: a valid checkpoint at
        # generation 0 followed by a coarse record nothing covers (the
        # crash hit inside the append→checkpoint window).
        atg, db = build_registrar()
        plain = open_view(atg, db)
        wal = durable_wal(tmp_path, checkpoint_every=100)
        wal.write_checkpoint(
            {
                "snapshot": plain.snapshot().to_dict(),
                "db": plain.db.export_state(),
            },
            0,
        )
        wal.append(ViewEvent(generation=1, coarse=True, reason="rebuild"))
        with pytest.raises(WalError, match="coarse"):
            atg2, db2 = build_registrar()
            recover_state(atg2, db2, wal)
        wal.close()


# ---------------------------------------------------------------------------
# Log-backed changefeed resume
# ---------------------------------------------------------------------------


class TestDurableChangefeed:
    def test_resume_below_buffer_floor_replays_from_log(self, tmp_path):
        """The satellite contract: durable consumers outlive the buffer."""
        path = tmp_path / "wal"
        service = registrar_service(
            path, changefeed_retention=4, wal_checkpoint_every=10_000
        )
        generations = []
        for i in range(12):
            cno = ("CS650", "CS320", "CS240")[i % 3]
            for op in (
                InsertOp(
                    f"//course[cno={cno}]/prereq", "course", ("CS900", "X")
                ),
                DeleteOp(f"//course[cno={cno}]/prereq/course[cno=CS900]"),
            ):
                if service.apply(op).accepted:
                    generations.append(service.stats()["generation"])
        buffer_floor = service.changefeeds._buffer.floor
        assert buffer_floor > 0  # retention=4 must have evicted
        # Resume from generation 0: far below the in-memory buffer,
        # fully covered by the log.
        feed = service.changefeed(since=0)
        replayed = []
        while True:
            event = feed.next_event(timeout=0)
            if event is None:
                break
            replayed.append(event.generation)
        assert replayed == generations
        # And the feed is live, not just a replay.
        service.apply(
            InsertOp("//course[cno=CS650]/prereq", "course", ("CS901", "Z"))
        )
        live = feed.next_event(timeout=1)
        assert live is not None
        assert live.generation == service.stats()["generation"]
        # Below the WAL floor is still a typed gap.
        with pytest.raises(ReplayGapError):
            service.changefeed(since=-1)
        service.close()

    def test_log_replay_longer_than_queue_bound_is_not_truncated(
        self, tmp_path
    ):
        """A log-backed replay can exceed the in-memory retention
        window by an arbitrary margin; the pull-queue bound must cover
        the whole attach batch, or the attach blocks on its own replay
        and silently drops the newest events (regression: with
        retention=2 an 11-event replay came back truncated to 4)."""
        service = registrar_service(
            tmp_path / "wal", changefeed_retention=2,
            wal_checkpoint_every=10_000,
        )
        generations = []
        for i in range(11):
            out = service.apply(InsertOp(
                "//course[cno=CS650]/prereq", "course", (f"Z{i}", "t")
            ))
            assert out.accepted
            generations.append(service.stats()["generation"])
        assert len(generations) > 2 * 2  # longer than the default bound
        before = time.monotonic()
        feed = service.changefeed(since=0)
        attach_cost = time.monotonic() - before
        replayed = []
        while True:
            event = feed.next_event(timeout=0)
            if event is None:
                break
            replayed.append(event.generation)
        assert replayed == generations  # every logged event, in order
        # The attach never waited on the consumer's own backpressure
        # (the block_writer timeout is 1s per stalled enqueue).
        assert attach_cost < 0.5
        # The consumer survived the oversized replay and is still live.
        service.apply(InsertOp(
            "//course[cno=CS650]/prereq", "course", ("Z99", "t")
        ))
        live = feed.next_event(timeout=1)
        assert live is not None and live.generation == generations[-1] + 1
        service.close()

    def test_stats_surface(self, tmp_path):
        service = registrar_service(tmp_path / "wal")
        stats = service.stats()
        assert stats["wal"]["fsync"] == "batch"
        assert stats["changefeed"]["durable"] is True
        assert stats["wal"]["checkpoints"][0]["generation"] == 0
        service.close()
        plain_atg, plain_db = build_registrar()
        plain = open_view(plain_atg, plain_db)
        assert plain.stats()["wal"] is None
        assert plain.stats()["changefeed"]["durable"] is False
