"""Edge-case tests for the DAG evaluator and update pipeline."""

import pytest

from repro.atg.publisher import publish_store, unfold_to_tree
from repro.core.dag_eval import DagXPathEvaluator
from repro.core.reachability import compute_reach
from repro.core.topo import TopoOrder
from repro.core.updater import SideEffectPolicy, XMLViewUpdater
from repro.workloads.registrar import build_registrar
from repro.xpath.parser import parse_xpath
from repro.xpath.tree_eval import evaluate_on_tree
from repro.ops import DeleteOp, InsertOp


@pytest.fixture
def env():
    atg, db = build_registrar()
    store = publish_store(atg, db)
    topo = TopoOrder.from_store(store)
    reach = compute_reach(store, topo)
    return store, DagXPathEvaluator(store, topo, reach)


def both(env, text):
    store, evaluator = env
    path = parse_xpath(text)
    dag = sorted(
        (store.type_of(t), store.sem_of(t))
        for t in evaluator.evaluate(path).targets
    )
    tree = sorted(
        {n.identity for n in evaluate_on_tree(path, unfold_to_tree(store))}
    )
    return dag, tree


class TestFilterShapes:
    @pytest.mark.parametrize(
        "text",
        [
            # self value filter on a leaf
            'course/cno[.="CS650"]',
            # nested filter inside a filter path
            "course[prereq/course[cno=CS240]]",
            # negation of a nested exists
            "course[not(prereq/course[cno=CS240])]",
            # disjunction mixing label test and value
            "*[label()=course or label()=student]",
            # descendant inside a filter
            "course[.//ssn=S02]",
            # conjunction of three filters via fused brackets
            "course[cno=CS320][prereq/course][takenBy/student]",
            # wildcard with value filter below
            "*/*[label()=prereq]",
            # filter on the descendant step result
            "//*[label()=course and takenBy/student/ssn=S01]",
            # value filter comparing a non-leaf (never matches)
            "course[prereq=CS240]",
            # deep chain
            "course/prereq/course/prereq/course",
            # // at the very end
            "course[cno=CS650]//",
        ],
    )
    def test_matches_tree_oracle(self, env, text):
        dag, tree = both(env, text)
        assert dag == tree, text

    def test_trailing_descendant_selects_descendants(self, env):
        store, evaluator = env
        result = evaluator.evaluate(parse_xpath("course[cno=CS240]//"))
        types = {store.type_of(t) for t in result.targets}
        assert "course" in types and "cno" in types

    def test_ep_for_trailing_descendant(self, env):
        store, evaluator = env
        result = evaluator.evaluate(
            parse_xpath("course[cno=CS650]//"), mode="delete"
        )
        # Every Ep parent must be inside the matched region.
        for u, v, _ in result.ep:
            assert store.has_edge(u, v)

    def test_filter_only_path_selects_root(self, env):
        store, evaluator = env
        result = evaluator.evaluate(parse_xpath(".[db]"))
        # root has no child named 'db' -> filter fails -> empty
        assert result.targets == []

    def test_repeated_evaluation_consistent(self, env):
        _, evaluator = env
        a = evaluator.evaluate(parse_xpath("//course")).targets
        b = evaluator.evaluate(parse_xpath("//course")).targets
        assert a == b


class TestMultiTargetInsert:
    def test_insert_under_two_parents_one_subtree(self):
        """One XML insert, two prereq parents -> two H-ish base rows."""
        atg, db = build_registrar()
        updater = XMLViewUpdater(
            atg, db, side_effect_policy=SideEffectPolicy.PROPAGATE
        )
        # CS650 and CS320 both get CS500 as a prerequisite.
        out = updater.apply_op(InsertOp(
            "course[cno=CS650 or cno=CS320]/prereq",
            "course",
            ("CS500", "Operating Systems"),
        ))
        assert out.accepted
        rows = sorted(op.row for op in out.delta_r)
        assert rows == [("CS320", "CS500"), ("CS650", "CS500")]
        assert updater.check_consistency() == []

    def test_group_insert_with_new_course_two_parents(self):
        atg, db = build_registrar()
        updater = XMLViewUpdater(
            atg, db, side_effect_policy=SideEffectPolicy.PROPAGATE
        )
        out = updater.apply_op(InsertOp(
            "course[cno=CS650 or cno=CS500]/prereq", "course", ("CS909", "X")
        ))
        assert out.accepted
        relations = sorted(op.relation for op in out.delta_r)
        assert relations == ["course", "prereq", "prereq"]
        assert updater.check_consistency() == []


class TestVerifyEachUpdate:
    def test_verification_passes_on_correct_updates(self):
        atg, db = build_registrar()
        updater = XMLViewUpdater(atg, db, verify_each_update=True)
        out = updater.apply_op(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
        assert out.accepted

    def test_verification_catches_corruption(self):
        from repro.errors import ReproError

        atg, db = build_registrar()
        updater = XMLViewUpdater(atg, db, verify_each_update=True)
        # Corrupt the base data behind the updater's back.
        db.insert("course", ("CS999", "Phantom", "CS"))
        with pytest.raises(ReproError, match="verification failed"):
            updater.apply_op(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
