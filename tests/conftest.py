"""Shared fixtures: the registrar example, a small synthetic dataset."""

from __future__ import annotations

import pytest

from repro.core.updater import SideEffectPolicy, XMLViewUpdater
from repro.workloads.bom import build_bom
from repro.workloads.registrar import build_registrar
from repro.workloads.synthetic import SyntheticConfig, build_synthetic


@pytest.fixture
def registrar():
    """(atg, db) for the paper's running example."""
    return build_registrar()


@pytest.fixture
def registrar_updater(registrar):
    atg, db = registrar
    return XMLViewUpdater(atg, db)


@pytest.fixture
def registrar_updater_propagate(registrar):
    atg, db = registrar
    return XMLViewUpdater(
        atg, db, side_effect_policy=SideEffectPolicy.PROPAGATE, strict=False
    )


@pytest.fixture(scope="session")
def small_synthetic():
    """A |C|=120 synthetic dataset (session-scoped: read-only tests)."""
    return build_synthetic(SyntheticConfig(n_c=120, seed=3))


@pytest.fixture
def synthetic_updater():
    """A fresh |C|=120 dataset + updater (function-scoped: mutating tests)."""
    dataset = build_synthetic(SyntheticConfig(n_c=120, seed=3))
    updater = XMLViewUpdater(
        dataset.atg,
        dataset.db,
        side_effect_policy=SideEffectPolicy.PROPAGATE,
        strict=False,
    )
    return updater, dataset


@pytest.fixture
def bom():
    return build_bom()
