"""Tests for the SAT substrate: CNF, DPLL, WalkSAT, finite-domain encoding."""

import itertools
import random

import pytest

from repro.sat.cnf import CNF
from repro.sat.dpll import dpll_solve
from repro.sat.encode import (
    FDVar,
    FFalse,
    FTrue,
    FdNot,
    VarConst,
    VarVar,
    encode_formula,
    fd_and,
    fd_not,
    fd_or,
)
from repro.sat.walksat import walksat_solve


def brute_force(cnf: CNF) -> bool:
    """Exhaustive satisfiability check (oracle for tiny instances)."""
    for bits in itertools.product([False, True], repeat=cnf.num_vars):
        assignment = {i + 1: bits[i] for i in range(cnf.num_vars)}
        if cnf.is_satisfied_by(assignment):
            return True
    return False


def make_cnf(clauses):
    cnf = CNF()
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


class TestCNF:
    def test_new_var(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2

    def test_add_clause_tracks_vars(self):
        cnf = make_cnf([(1, -3)])
        assert cnf.num_vars == 3
        assert len(cnf) == 1

    def test_zero_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_clause((0,))

    def test_exactly_one(self):
        cnf = CNF()
        a, b, c = cnf.new_var(), cnf.new_var(), cnf.new_var()
        cnf.add_exactly_one([a, b, c])
        assert cnf.is_satisfied_by({a: True, b: False, c: False})
        assert not cnf.is_satisfied_by({a: True, b: True, c: False})
        assert not cnf.is_satisfied_by({a: False, b: False, c: False})

    def test_dimacs(self):
        cnf = make_cnf([(1, -2)])
        text = cnf.to_dimacs()
        assert text.splitlines()[0] == "p cnf 2 1"
        assert "1 -2 0" in text


class TestDPLL:
    def test_trivial_sat(self):
        assert dpll_solve(make_cnf([(1,)])) == {1: True}

    def test_trivial_unsat(self):
        assert dpll_solve(make_cnf([(1,), (-1,)])) is None

    def test_empty_clause_unsat(self):
        cnf = CNF()
        cnf.add_clause(())
        assert dpll_solve(cnf) is None

    def test_empty_formula_sat(self):
        assert dpll_solve(CNF()) == {}

    def test_unit_propagation_chain(self):
        cnf = make_cnf([(1,), (-1, 2), (-2, 3)])
        model = dpll_solve(cnf)
        assert model[1] and model[2] and model[3]

    def test_model_is_verified(self):
        cnf = make_cnf([(1, 2), (-1, 3), (-2, -3), (2, 3)])
        model = dpll_solve(cnf)
        assert model is not None
        assert cnf.is_satisfied_by(model)

    def test_pigeonhole_unsat(self):
        # 3 pigeons in 2 holes: variables p_ij (pigeon i in hole j).
        cnf = CNF()
        var = {}
        for i in range(3):
            for j in range(2):
                var[(i, j)] = cnf.new_var()
        for i in range(3):
            cnf.add_clause([var[(i, j)] for j in range(2)])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    cnf.add_clause((-var[(i1, j)], -var[(i2, j)]))
        assert dpll_solve(cnf) is None

    @pytest.mark.parametrize("seed", range(8))
    def test_random_3sat_matches_bruteforce(self, seed):
        rng = random.Random(seed)
        n_vars, n_clauses = 6, 14
        cnf = CNF()
        for _ in range(n_clauses):
            clause = tuple(
                rng.choice([1, -1]) * rng.randint(1, n_vars)
                for _ in range(3)
            )
            cnf.add_clause(clause)
        cnf.num_vars = n_vars
        model = dpll_solve(cnf)
        assert (model is not None) == brute_force(cnf)
        if model is not None:
            assert cnf.is_satisfied_by(model)


class TestWalkSAT:
    def test_finds_easy_model(self):
        cnf = make_cnf([(1, 2), (-1, 3), (2, -3)])
        model = walksat_solve(cnf, rng=random.Random(0))
        assert model is not None
        assert cnf.is_satisfied_by(model)

    def test_empty_clause_gives_up(self):
        cnf = CNF()
        cnf.add_clause(())
        assert walksat_solve(cnf) is None

    def test_unsat_gives_up_without_crash(self):
        cnf = make_cnf([(1,), (-1,)])
        assert walksat_solve(cnf, max_flips=100, max_restarts=2) is None

    def test_empty_formula(self):
        assert walksat_solve(CNF()) == {}

    @pytest.mark.parametrize("seed", range(6))
    def test_random_satisfiable_instances(self, seed):
        # Plant a solution, generate clauses satisfied by it.
        rng = random.Random(seed)
        n_vars = 12
        planted = {v: rng.random() < 0.5 for v in range(1, n_vars + 1)}
        cnf = CNF()
        for _ in range(40):
            vs = rng.sample(range(1, n_vars + 1), 3)
            clause = []
            for v in vs:
                sign = 1 if rng.random() < 0.5 else -1
                clause.append(v * sign)
            # Ensure at least one literal agrees with the planted model.
            v = vs[0]
            clause[0] = v if planted[v] else -v
            cnf.add_clause(clause)
        model = walksat_solve(cnf, rng=random.Random(seed + 100))
        assert model is not None
        assert cnf.is_satisfied_by(model)


class TestFormulaSmartConstructors:
    def test_fd_and_simplifies(self):
        a = VarConst(FDVar("x"), 1)
        assert fd_and() is FTrue
        assert fd_and(a) is a
        assert fd_and(a, FTrue) is a
        assert fd_and(a, FFalse) is FFalse

    def test_fd_or_simplifies(self):
        a = VarConst(FDVar("x"), 1)
        assert fd_or() is FFalse
        assert fd_or(a) is a
        assert fd_or(a, FFalse) is a
        assert fd_or(a, FTrue) is FTrue

    def test_fd_not(self):
        a = VarConst(FDVar("x"), 1)
        assert fd_not(FTrue) is FFalse
        assert fd_not(FFalse) is FTrue
        assert fd_not(fd_not(a)) is a
        assert isinstance(fd_not(a), FdNot)


class TestEncoding:
    def _solve(self, formula, domains):
        enc = encode_formula(formula, domains)
        model = dpll_solve(enc.cnf)
        if model is None:
            return None
        return enc.decode(model)

    def test_var_const(self):
        x = FDVar("x")
        values = self._solve(VarConst(x, "b"), {x: ("a", "b")})
        assert values == {x: "b"}

    def test_var_const_outside_domain_unsat(self):
        x = FDVar("x")
        assert self._solve(VarConst(x, "z"), {x: ("a", "b")}) is None

    def test_negated_const(self):
        x = FDVar("x")
        values = self._solve(fd_not(VarConst(x, "a")), {x: ("a", "b")})
        assert values == {x: "b"}

    def test_var_var_equal(self):
        x, y = FDVar("x"), FDVar("y")
        values = self._solve(
            fd_and(VarVar(x, y), VarConst(x, "a")),
            {x: ("a", "b"), y: ("a", "b")},
        )
        assert values == {x: "a", y: "a"}

    def test_var_var_unequal(self):
        x, y = FDVar("x"), FDVar("y")
        values = self._solve(
            fd_and(fd_not(VarVar(x, y)), VarConst(x, "a")),
            {x: ("a",), y: ("a", "b")},
        )
        assert values == {x: "a", y: "b"}

    def test_var_var_disjoint_domains(self):
        x, y = FDVar("x"), FDVar("y")
        assert (
            self._solve(VarVar(x, y), {x: ("a",), y: ("b",)}) is None
        )

    def test_exactly_one_value_per_var(self):
        x = FDVar("x")
        enc = encode_formula(VarConst(x, "a"), {x: ("a", "b", "c")})
        model = dpll_solve(enc.cnf)
        selected = [
            i for i in range(3) if model[enc.selector[(x, i)]]
        ]
        assert selected == [0]

    def test_or_across_vars(self):
        x, y = FDVar("x"), FDVar("y")
        formula = fd_and(
            fd_or(VarConst(x, "a"), VarConst(y, "b")),
            fd_not(VarConst(x, "a")),
        )
        values = self._solve(formula, {x: ("a", "c"), y: ("a", "b")})
        assert values[y] == "b"

    def test_constant_formulas(self):
        x = FDVar("x")
        assert self._solve(FTrue, {x: ("a",)}) == {x: "a"}
        assert self._solve(FFalse, {x: ("a",)}) is None

    def test_empty_domain_rejected(self):
        x = FDVar("x")
        with pytest.raises(ValueError):
            encode_formula(FTrue, {x: ()})

    def test_transitivity_through_equalities(self):
        x, y, z = FDVar("x"), FDVar("y"), FDVar("z")
        formula = fd_and(
            VarVar(x, y), VarVar(y, z), VarConst(x, 1), fd_not(VarConst(z, 1))
        )
        domains = {v: (1, 2) for v in (x, y, z)}
        assert self._solve(formula, domains) is None
