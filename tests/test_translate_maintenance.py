"""Tests for Xinsert/Xdelete and the Δ(M,L) maintenance algorithms."""

import pytest

from repro.atg.publisher import publish_store, publish_subtree
from repro.baselines.recompute import recompute_structures
from repro.core.dag_eval import DagXPathEvaluator
from repro.core.maintenance import maintain_delete, maintain_insert
from repro.core.reachability import compute_reach
from repro.core.topo import TopoOrder
from repro.core.translate import xdelete, xinsert
from repro.workloads.registrar import build_registrar
from repro.xpath.parser import parse_xpath


@pytest.fixture
def env():
    atg, db = build_registrar()
    store = publish_store(atg, db)
    topo = TopoOrder.from_store(store)
    reach = compute_reach(store, topo)
    evaluator = DagXPathEvaluator(store, topo, reach)
    return atg, db, store, topo, reach, evaluator


def assert_structures_match_recompute(store, topo, reach):
    fresh = recompute_structures(store)
    assert reach.equals(fresh.reach), "M diverged from recomputation"
    for node in store.nodes():
        for child in store.children_of(node):
            assert topo.position(child) < topo.position(node)
    assert set(topo.as_list()) == set(store.nodes())


class TestXdelete:
    def test_single_edge(self, env):
        _, _, store, _, _, evaluator = env
        result = evaluator.evaluate(
            parse_xpath("course[cno=CS650]/prereq/course"), mode="delete"
        )
        delta = xdelete(store, result)
        assert len(delta) == 1
        op = delta.ops[0]
        assert op.kind == "delete"
        assert op.relation == "edge_prereq_course"

    def test_multiple_edges_for_shared_child(self, env):
        _, _, store, _, _, evaluator = env
        result = evaluator.evaluate(
            parse_xpath("//student[ssn=S02]"), mode="delete"
        )
        delta = xdelete(store, result)
        assert len(delta) == 2  # two takenBy parents

    def test_dedup(self, env):
        _, _, store, _, _, evaluator = env
        result = evaluator.evaluate(parse_xpath("//course"), mode="delete")
        delta = xdelete(store, result)
        keys = [(op.parent, op.child) for op in delta]
        assert len(keys) == len(set(keys))


class TestXinsert:
    def test_new_subtree_edges(self, env):
        atg, db, store, _, _, evaluator = env
        result = evaluator.evaluate(
            parse_xpath("course[cno=CS650]/prereq"), mode="insert"
        )
        subtree = publish_subtree(atg, db, store, "course", ("CS900", "New"))
        delta = xinsert(store, result.targets, subtree)
        kinds = {op.relation for op in delta}
        # internal edges (cno/title/prereq/takenBy) + connection edge
        assert "edge_course_cno" in kinds
        assert "edge_prereq_course" in kinds
        connection = [op for op in delta if op.child == subtree.root]
        assert len(connection) == 1

    def test_existing_subtree_only_connects(self, env):
        atg, db, store, _, _, evaluator = env
        result = evaluator.evaluate(
            parse_xpath("course[cno=CS650]/prereq"), mode="insert"
        )
        subtree = publish_subtree(
            atg, db, store, "course", ("CS500", "Operating Systems")
        )
        delta = xinsert(store, result.targets, subtree)
        assert len(delta) == 1  # just the connecting edge

    def test_set_semantics_existing_edge_skipped(self, env):
        atg, db, store, _, _, evaluator = env
        result = evaluator.evaluate(
            parse_xpath("course[cno=CS650]/prereq"), mode="insert"
        )
        subtree = publish_subtree(
            atg, db, store, "course", ("CS320", "Databases")
        )
        delta = xinsert(store, result.targets, subtree)
        assert len(delta) == 0  # edge already present


class TestMaintainInsert:
    def _do_insert(self, env, path_text, element, sem):
        atg, db, store, topo, reach, evaluator = env
        result = evaluator.evaluate(parse_xpath(path_text), mode="insert")
        subtree = publish_subtree(atg, db, store, element, sem)
        delta = xinsert(store, result.targets, subtree)
        store.apply(delta)
        maintain_insert(store, topo, reach, subtree, result.targets)
        return store, topo, reach

    def test_new_leafy_subtree(self, env):
        store, topo, reach = self._do_insert(
            env, "course[cno=CS650]/prereq", "course", ("CS900", "New")
        )
        assert_structures_match_recompute(store, topo, reach)

    def test_existing_shared_subtree(self, env):
        store, topo, reach = self._do_insert(
            env,
            "course[cno=CS650]/prereq",
            "course",
            ("CS500", "Operating Systems"),
        )
        assert_structures_match_recompute(store, topo, reach)
        cs500 = store.lookup("course", ("CS500", "Operating Systems"))
        cs650 = store.lookup("course", ("CS650", "Advanced Databases"))
        assert reach.is_ancestor(cs650, cs500)

    def test_insert_under_multiple_targets(self, env):
        store, topo, reach = self._do_insert(
            env, "//prereq", "course", ("CS901", "Everywhere")
        )
        assert_structures_match_recompute(store, topo, reach)

    def test_diamond_in_new_subtree(self, env):
        """A new subtree whose internal DAG has a diamond (two new parents
        share a new child): placement must be children-first regardless of
        creation order (regression for the mixed-sequence bug)."""
        atg, db, store, topo, reach, evaluator = env
        # CS910 -> {CS911, CS912} -> CS913 (shared): a diamond of new nodes.
        db.insert_all(
            "course",
            [
                ("CS910", "Top", "X"),
                ("CS911", "Mid1", "X"),
                ("CS912", "Mid2", "X"),
                ("CS913", "Shared", "X"),
            ],
        )
        db.insert_all(
            "prereq",
            [
                ("CS910", "CS911"),
                ("CS910", "CS912"),
                ("CS911", "CS913"),
                ("CS912", "CS913"),
            ],
        )
        result = evaluator.evaluate(
            parse_xpath("course[cno=CS650]/prereq"), mode="insert"
        )
        subtree = publish_subtree(atg, db, store, "course", ("CS910", "Top"))
        delta = xinsert(store, result.targets, subtree)
        store.apply(delta)
        maintain_insert(store, topo, reach, subtree, result.targets)
        assert_structures_match_recompute(store, topo, reach)

    def test_report_counts(self, env):
        atg, db, store, topo, reach, evaluator = env
        result = evaluator.evaluate(
            parse_xpath("course[cno=CS650]/prereq"), mode="insert"
        )
        subtree = publish_subtree(atg, db, store, "course", ("CS902", "N"))
        delta = xinsert(store, result.targets, subtree)
        store.apply(delta)
        report = maintain_insert(store, topo, reach, subtree, result.targets)
        assert report.placed_nodes == len(subtree.new_nodes)
        assert report.added_pairs > 0


class TestMaintainDelete:
    def _do_delete(self, env, path_text):
        atg, db, store, topo, reach, evaluator = env
        result = evaluator.evaluate(parse_xpath(path_text), mode="delete")
        delta = xdelete(store, result)
        store.apply(delta)
        report = maintain_delete(store, topo, reach, result)
        return store, topo, reach, report

    def test_delete_shared_child_keeps_subtree(self, env):
        store, topo, reach, report = self._do_delete(
            env, "course[cno=CS650]/prereq/course[cno=CS320]"
        )
        # CS320 remains (still a root course); no GC.
        assert store.lookup("course", ("CS320", "Databases")) is not None
        assert report.removed_nodes == []
        assert_structures_match_recompute(store, topo, reach)

    def test_delete_all_occurrences_triggers_gc(self, env):
        atg, db, store, topo, reach, evaluator = env
        # Remove student S03 from its only parent.
        result = evaluator.evaluate(
            parse_xpath("//student[ssn=S03]"), mode="delete"
        )
        delta = xdelete(store, result)
        store.apply(delta)
        report = maintain_delete(store, topo, reach, result)
        assert store.lookup("student", ("S03", "Edsger")) is None
        assert len(report.removed_nodes) == 3  # student + ssn + name
        assert_structures_match_recompute(store, topo, reach)

    def test_gc_preserves_shared_grandchildren(self, env):
        atg, db, store, topo, reach, evaluator = env
        # Delete CS320 from everywhere; its student S02 must survive
        # (still under CS500), its cno/title leaves must not.
        result = evaluator.evaluate(
            parse_xpath("//course[cno=CS320]"), mode="delete"
        )
        delta = xdelete(store, result)
        store.apply(delta)
        maintain_delete(store, topo, reach, result)
        assert store.lookup("course", ("CS320", "Databases")) is None
        assert store.lookup("student", ("S02", "Grace")) is not None
        assert store.lookup("cno", ("CS320",)) is None
        assert_structures_match_recompute(store, topo, reach)

    def test_example7_reachability_update(self, env):
        """Paper Example 7: after deleting S02 under CS320, the
        reachability from CS500's side to S02 must survive."""
        atg, db, store, topo, reach, evaluator = env
        result = evaluator.evaluate(
            parse_xpath("//course[cno=CS320]//student[ssn=S02]"),
            mode="delete",
        )
        delta = xdelete(store, result)
        store.apply(delta)
        maintain_delete(store, topo, reach, result)
        s02 = store.lookup("student", ("S02", "Grace"))
        taken_500 = store.lookup("takenBy", ("CS500",))
        taken_320 = store.lookup("takenBy", ("CS320",))
        assert reach.is_ancestor(taken_500, s02)
        assert not reach.is_ancestor(taken_320, s02)
        assert_structures_match_recompute(store, topo, reach)
