"""Unit tests for the topological order L and Algorithm Reach."""

import networkx as nx
import pytest

from repro.atg.publisher import publish_store
from repro.baselines.naive_reach import naive_reachability, squaring_reachability
from repro.core.reachability import ReachabilityMatrix, compute_reach
from repro.core.topo import TopoOrder
from repro.errors import ReproError
from repro.workloads.registrar import build_registrar
from repro.workloads.synthetic import SyntheticConfig, build_synthetic


@pytest.fixture
def store():
    atg, db = build_registrar()
    return publish_store(atg, db)


def assert_topo_valid(topo, store):
    """u precedes v ⇒ u is not an ancestor of v (children first)."""
    for node in store.nodes():
        for child in store.children_of(node):
            assert topo.position(child) < topo.position(node), (
                f"child {child} after parent {node}"
            )


class TestTopoOrder:
    def test_from_store_valid(self, store):
        topo = TopoOrder.from_store(store)
        assert len(topo) == store.num_nodes
        assert_topo_valid(topo, store)

    def test_root_last(self, store):
        topo = TopoOrder.from_store(store)
        assert topo.as_list()[-1] == store.root_id

    def test_deterministic(self, store):
        a = TopoOrder.from_store(store).as_list()
        b = TopoOrder.from_store(store).as_list()
        assert a == b

    def test_precedes(self, store):
        topo = TopoOrder.from_store(store)
        cs320 = store.lookup("course", ("CS320", "Databases"))
        assert topo.precedes(cs320, store.root_id)

    def test_backward_iteration(self, store):
        topo = TopoOrder.from_store(store)
        assert list(topo.backward())[0] == store.root_id

    def test_sort_nodes(self, store):
        topo = TopoOrder.from_store(store)
        nodes = list(store.nodes())[:5]
        ordered = topo.sort_nodes(nodes)
        positions = [topo.position(n) for n in ordered]
        assert positions == sorted(positions)

    def test_duplicate_rejected(self):
        with pytest.raises(ReproError):
            TopoOrder([1, 1])

    def test_append_and_remove(self):
        topo = TopoOrder([1, 2])
        topo.append(3)
        assert topo.as_list() == [1, 2, 3]
        topo.remove(2)
        assert topo.as_list() == [1, 3]
        assert topo.position(3) == 1

    def test_insert_front_and_at(self):
        topo = TopoOrder([1, 2])
        topo.insert_front(0)
        assert topo.as_list() == [0, 1, 2]
        topo.insert_at(9, 2)
        assert topo.as_list() == [0, 1, 9, 2]
        assert topo.position(2) == 3

    def test_insert_existing_rejected(self):
        topo = TopoOrder([1])
        with pytest.raises(ReproError):
            topo.append(1)

    def test_unknown_position_rejected(self):
        with pytest.raises(ReproError):
            TopoOrder([1]).position(9)

    def test_swap_moves_descendants(self):
        # L = [d, u, a, v]; edge (u, v) inserted; desc(v) = {d}.
        topo = TopoOrder([5, 1, 2, 3])  # u=1, v=3, d=5 not in segment
        moved = topo.swap(1, 3, {5})
        # segment [1,2,3]: moving = [3], staying = [1,2]
        assert moved == 1
        assert topo.as_list() == [5, 3, 1, 2]

    def test_swap_moves_in_segment_descendants(self):
        topo = TopoOrder([1, 7, 2, 3])  # u=1, v=3, desc(v)={7}
        moved = topo.swap(1, 3, {7})
        assert moved == 2
        assert topo.as_list() == [7, 3, 1, 2]

    def test_swap_noop_when_already_ordered(self):
        topo = TopoOrder([3, 1])
        assert topo.swap(1, 3, set()) == 0
        assert topo.as_list() == [3, 1]

    def test_is_valid_for(self, store):
        topo = TopoOrder.from_store(store)
        reach = compute_reach(store, topo)
        assert topo.is_valid_for(reach.is_ancestor)
        broken = TopoOrder(list(reversed(topo.as_list())))
        assert not broken.is_valid_for(reach.is_ancestor)


class TestReachabilityMatrix:
    def test_insert_remove(self):
        m = ReachabilityMatrix()
        assert m.insert(1, 2)
        assert not m.insert(1, 2)
        assert (1, 2) in m
        assert m.is_ancestor(1, 2)
        assert not m.is_ancestor(2, 1)
        assert len(m) == 1
        assert m.remove(1, 2)
        assert not m.remove(1, 2)
        assert len(m) == 0

    def test_both_directions(self):
        m = ReachabilityMatrix()
        m.insert(1, 2)
        m.insert(1, 3)
        m.insert(2, 3)
        assert m.desc(1) == {2, 3}
        assert m.anc(3) == {1, 2}

    def test_set_ancestors(self):
        m = ReachabilityMatrix()
        m.insert(1, 3)
        m.insert(2, 3)
        m.set_ancestors(3, {2, 4})
        assert m.anc(3) == {2, 4}
        assert m.desc(1) == set()
        assert m.desc(4) == {3}
        assert len(m) == 2

    def test_drop_node(self):
        m = ReachabilityMatrix()
        m.insert(1, 2)
        m.insert(2, 3)
        m.drop_node(2)
        assert len(m) == 0

    def test_set_helpers(self):
        m = ReachabilityMatrix()
        m.insert(1, 2)
        m.insert(3, 4)
        assert m.anc_of_set([2, 4]) == {1, 3}
        assert m.desc_of_set([1, 3]) == {2, 4}

    def test_copy_and_equals(self):
        m = ReachabilityMatrix()
        m.insert(1, 2)
        clone = m.copy()
        assert m.equals(clone)
        clone.insert(2, 3)
        assert not m.equals(clone)

    def test_pairs(self):
        m = ReachabilityMatrix()
        m.insert(1, 2)
        m.insert(1, 3)
        assert sorted(m.pairs()) == [(1, 2), (1, 3)]


class TestAlgorithmReach:
    def _oracle(self, store):
        graph = nx.DiGraph()
        graph.add_nodes_from(store.nodes())
        for node in store.nodes():
            for child in store.children_of(node):
                graph.add_edge(node, child)
        closure = nx.transitive_closure(graph)
        return set(closure.edges())

    def test_registrar_matches_networkx(self, store):
        topo = TopoOrder.from_store(store)
        reach = compute_reach(store, topo)
        assert set(reach.pairs()) == self._oracle(store)

    def test_synthetic_matches_networkx(self):
        dataset = build_synthetic(SyntheticConfig(n_c=80, seed=9))
        store = publish_store(dataset.atg, dataset.db)
        topo = TopoOrder.from_store(store)
        reach = compute_reach(store, topo)
        assert set(reach.pairs()) == self._oracle(store)

    def test_baselines_agree(self, store):
        topo = TopoOrder.from_store(store)
        reach = compute_reach(store, topo)
        assert reach.equals(naive_reachability(store))
        assert reach.equals(squaring_reachability(store))

    def test_root_reaches_everything(self, store):
        topo = TopoOrder.from_store(store)
        reach = compute_reach(store, topo)
        assert reach.desc(store.root_id) == set(store.nodes()) - {store.root_id}
