"""Tests for the explain module."""

from repro.core.explain import explain_outcome, explain_state, explain_views
from repro.core.updater import SideEffectPolicy, XMLViewUpdater
from repro.ops import DeleteOp, InsertOp


class TestExplainOutcome:
    def test_accepted_delete(self, registrar_updater):
        out = registrar_updater.apply_op(DeleteOp(
            "course[cno=CS650]/prereq/course[cno=CS320]"
        ))
        text = explain_outcome(out, registrar_updater.store)
        assert "DELETE — ACCEPTED" in text
        assert "ΔR: 1 base operation(s)" in text
        assert "prereq('CS650', 'CS320')" in text
        assert "timings" in text
        assert "xpath" in text

    def test_rejected_update(self, registrar):
        atg, db = registrar
        updater = XMLViewUpdater(atg, db, strict=False)
        out = updater.apply_op(DeleteOp("course[cno=NOPE]"))
        text = explain_outcome(out, updater.store)
        assert "REJECTED" in text
        assert "reason:" in text

    def test_side_effects_rendered(self, registrar):
        atg, db = registrar
        updater = XMLViewUpdater(
            atg, db, side_effect_policy=SideEffectPolicy.PROPAGATE
        )
        out = updater.apply_op(InsertOp(
            "course[cno=CS650]//course[cno=CS320]/prereq",
            "course",
            ("CS500", "Operating Systems"),
        ))
        text = explain_outcome(out, updater.store)
        assert "side effects via" in text

    def test_sat_stats_rendered(self, registrar_updater):
        out = registrar_updater.apply_op(InsertOp(
            "//course[cno=CS240]/prereq", "course", ("CS101", "Intro")
        ))
        text = explain_outcome(out, registrar_updater.store)
        assert "sat_vars=" in text

    def test_node_rendering_without_store(self, registrar_updater):
        out = registrar_updater.apply_op(DeleteOp(
            "course[cno=CS650]/prereq/course[cno=CS320]"
        ))
        text = explain_outcome(out)  # no store: raw ids
        assert "#" in text


class TestExplainViews:
    def test_all_views_listed(self, registrar_updater):
        text = explain_views(registrar_updater.registry)
        assert "edge_db_course" in text
        assert "edge_prereq_course" in text
        assert "edge_takenBy_student" in text
        assert "SELECT DISTINCT" in text
        assert "key ('cno1', 'cno2')" in text


class TestExplainState:
    def test_summary(self, registrar_updater):
        text = explain_state(registrar_updater)
        assert "nodes" in text and "|M|" in text and "relations" in text
