"""Unit tests for the XPath parser and normal form."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    DescendantStep,
    ExistsPath,
    FAnd,
    FNot,
    FOr,
    FilterStep,
    LabelStep,
    LabelTest,
    ValueEq,
    WildcardStep,
    XPath,
)
from repro.xpath.parser import parse_xpath


class TestBasicPaths:
    def test_single_label(self):
        path = parse_xpath("course")
        assert path.steps == (LabelStep("course"),)

    def test_child_chain(self):
        path = parse_xpath("course/prereq/course")
        assert path.steps == (
            LabelStep("course"),
            LabelStep("prereq"),
            LabelStep("course"),
        )

    def test_leading_slash_optional(self):
        assert parse_xpath("/course") == parse_xpath("course")

    def test_leading_descendant(self):
        path = parse_xpath("//student")
        assert path.steps == (DescendantStep(), LabelStep("student"))

    def test_inner_descendant(self):
        path = parse_xpath("course//student")
        assert path.steps == (
            LabelStep("course"),
            DescendantStep(),
            LabelStep("student"),
        )

    def test_wildcard(self):
        path = parse_xpath("course/*")
        assert path.steps == (LabelStep("course"), WildcardStep())

    def test_self_dot_is_identity(self):
        assert parse_xpath(".").steps == ()

    def test_consecutive_descendants_collapse(self):
        from repro.xpath.ast import normalize_steps

        steps = normalize_steps(
            [LabelStep("a"), DescendantStep(), DescendantStep(), LabelStep("b")]
        )
        assert steps == parse_xpath("a//b").steps

    def test_whitespace_tolerated(self):
        assert parse_xpath(" course / prereq ") == parse_xpath("course/prereq")

    def test_trailing_descendant_abbreviation(self):
        """The paper abbreviates p1/ // as p1// (Section 2.1)."""
        path = parse_xpath("course//")
        assert path.steps == (LabelStep("course"), DescendantStep())

    def test_bare_descendant(self):
        assert parse_xpath("//").steps == (DescendantStep(),)


class TestFilters:
    def test_value_filter_bare_constant(self):
        path = parse_xpath("course[cno=CS650]")
        label, filt = path.steps
        assert label == LabelStep("course")
        assert isinstance(filt, FilterStep)
        assert filt.filter == ValueEq(XPath((LabelStep("cno"),)), "CS650")

    def test_value_filter_quoted(self):
        path = parse_xpath('student[ssn="S02"]')
        filt = path.steps[1].filter
        assert filt == ValueEq(XPath((LabelStep("ssn"),)), "S02")
        assert parse_xpath("student[ssn='S02']") == path

    def test_numeric_constant(self):
        path = parse_xpath("cnode[key=42]")
        assert path.steps[1].filter == ValueEq(
            XPath((LabelStep("key"),)), "42"
        )

    def test_existential_path_filter(self):
        path = parse_xpath("course[prereq/course]")
        filt = path.steps[1].filter
        assert filt == ExistsPath(
            XPath((LabelStep("prereq"), LabelStep("course")))
        )

    def test_label_test(self):
        path = parse_xpath("*[label()=course]")
        assert path.steps[1].filter == LabelTest("course")

    def test_and_or_not(self):
        path = parse_xpath("a[b and not(c) or d]")
        filt = path.steps[1].filter
        assert isinstance(filt, FOr)
        left, right = filt.parts
        assert isinstance(left, FAnd)
        assert isinstance(left.parts[1], FNot)
        assert isinstance(right, ExistsPath)

    def test_parenthesized_filter(self):
        path = parse_xpath("a[(b or c) and d]")
        filt = path.steps[1].filter
        assert isinstance(filt, FAnd)
        assert isinstance(filt.parts[0], FOr)

    def test_multiple_filters_fused(self):
        # p[q1][q2] ≡ p[q1 ∧ q2]
        path = parse_xpath("a[b][c]")
        filt = path.steps[1].filter
        assert isinstance(filt, FAnd)
        assert len(filt.parts) == 2

    def test_filter_with_descendant_path(self):
        path = parse_xpath("a[//b]")
        filt = path.steps[1].filter
        assert filt == ExistsPath(
            XPath((DescendantStep(), LabelStep("b")))
        )

    def test_self_value_filter(self):
        path = parse_xpath('a[.="x"]')
        assert path.steps[1].filter == ValueEq(XPath(()), "x")

    def test_nested_filters(self):
        path = parse_xpath("a[b[c=1]/d]")
        outer = path.steps[1].filter
        assert isinstance(outer, ExistsPath)
        inner_steps = outer.path.steps
        assert inner_steps[0] == LabelStep("b")
        assert isinstance(inner_steps[1], FilterStep)
        assert inner_steps[2] == LabelStep("d")

    def test_filter_on_wildcard(self):
        path = parse_xpath("*[label()=course and cno=CS1]")
        assert isinstance(path.steps[0], WildcardStep)
        assert isinstance(path.steps[1].filter, FAnd)


class TestQuotedLiterals:
    """Regression: ``_parse_constant`` stripped the outer quote pair with
    no escape handling, so constants containing quotes (or the empty
    string round-tripped through ``str()``) were unrepresentable."""

    def test_double_quoted_may_contain_single_quote(self):
        path = parse_xpath('student[name="O\'Brien"]')
        assert path.steps[1].filter.value == "O'Brien"

    def test_single_quoted_may_contain_double_quote(self):
        path = parse_xpath("student[name='say \"hi\"']")
        assert path.steps[1].filter.value == 'say "hi"'

    def test_doubled_quote_escapes(self):
        assert (
            parse_xpath('a[x="he said ""hi"""]').steps[1].filter.value
            == 'he said "hi"'
        )
        assert parse_xpath("a[x='it''s']").steps[1].filter.value == "it's"

    def test_empty_string_constant(self):
        assert parse_xpath('a[x=""]').steps[1].filter.value == ""
        assert parse_xpath("a[x='']").steps[1].filter.value == ""

    def test_adjacent_strings_stay_separate_tokens(self):
        # Greedy matching must not swallow two literals into one.
        path = parse_xpath('a[x="1" and y="2"]')
        filters = path.steps[1].filter.parts
        assert [f.value for f in filters] == ["1", "2"]

    @pytest.mark.parametrize(
        "value",
        [
            "plain",
            "",
            "it's",
            'say "hi"',
            "both 'and' \"q\"",
            'only ""doubles""',
        ],
    )
    def test_value_eq_serialization_round_trips(self, value):
        original = XPath(
            (LabelStep("a"), FilterStep(ValueEq(XPath(()), value)))
        )
        assert parse_xpath(str(original)) == original

    def test_unterminated_string_is_a_syntax_error(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath('a[x="oops]')


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "a[",
            "a]",
            "a[]",
            "a[=5]",
            "a/",
            "a[b=]",
            "a b",
            "a[label(=x]",
            "$x",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(bad)


class TestRendering:
    @pytest.mark.parametrize(
        "text",
        [
            "course",
            "course/prereq/course",
            "//student",
            "course[cno=CS650]//course[cno=CS320]/prereq",
            "a[b and c]",
            "*[label()=course]",
        ],
    )
    def test_str_reparses_to_same_ast(self, text):
        path = parse_xpath(text)
        assert parse_xpath(str(path)) == path

    def test_size(self):
        small = parse_xpath("a")
        big = parse_xpath("a[b=1 and c]/d//e")
        assert big.size() > small.size()

    def test_last_child_step_index(self):
        path = parse_xpath("a/b[c=1]")
        # steps: Label(a), Label(b), Filter -> last child step at index 1
        assert path.last_child_step_index == 1
        assert parse_xpath(".").last_child_step_index is None
