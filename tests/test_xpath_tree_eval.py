"""Unit tests for the reference tree evaluator."""

import pytest

from repro.xmltree.tree import XMLNode
from repro.xpath.parser import parse_xpath
from repro.xpath.tree_eval import evaluate_on_tree, evaluate_on_tree_with_parents


def leaf(tag, text):
    return XMLNode(tag, (text,), text=text)


@pytest.fixture
def tree():
    """db -> a(x=1), a(x=2) -> b(y=1); second a nests another a(x=1)."""
    a1 = XMLNode("a", ("1",), [leaf("x", "1")])
    b = XMLNode("b", ("1",), [leaf("y", "1")])
    a_inner = XMLNode("a", ("1i",), [leaf("x", "1")])
    a2 = XMLNode("a", ("2",), [leaf("x", "2"), b, a_inner])
    return XMLNode("db", (), [a1, a2])


def tags(nodes):
    return [n.tag for n in nodes]


class TestSteps:
    def test_child_step(self, tree):
        assert tags(evaluate_on_tree(parse_xpath("a"), tree)) == ["a", "a"]

    def test_chained_child_steps(self, tree):
        assert tags(evaluate_on_tree(parse_xpath("a/b"), tree)) == ["b"]

    def test_wildcard(self, tree):
        assert tags(evaluate_on_tree(parse_xpath("a/*"), tree)) == [
            "x", "x", "b", "a",
        ]

    def test_descendant_includes_self(self, tree):
        nodes = evaluate_on_tree(parse_xpath("//a"), tree)
        assert len(nodes) == 3  # a1, a2 and the nested a

    def test_descendant_from_middle(self, tree):
        nodes = evaluate_on_tree(parse_xpath("a//x"), tree)
        assert len(nodes) == 3

    def test_empty_path_selects_root(self, tree):
        assert evaluate_on_tree(parse_xpath("."), tree) == [tree]

    def test_no_match(self, tree):
        assert evaluate_on_tree(parse_xpath("zzz"), tree) == []


class TestFilters:
    def test_value_filter(self, tree):
        nodes = evaluate_on_tree(parse_xpath("a[x=2]"), tree)
        assert len(nodes) == 1 and nodes[0].sem == ("2",)

    def test_value_filter_no_match(self, tree):
        assert evaluate_on_tree(parse_xpath("a[x=99]"), tree) == []

    def test_exists_filter(self, tree):
        nodes = evaluate_on_tree(parse_xpath("a[b]"), tree)
        assert len(nodes) == 1 and nodes[0].sem == ("2",)

    def test_not_filter(self, tree):
        nodes = evaluate_on_tree(parse_xpath("a[not(b)]"), tree)
        assert len(nodes) == 1 and nodes[0].sem == ("1",)

    def test_and_filter(self, tree):
        nodes = evaluate_on_tree(parse_xpath("a[b and x=2]"), tree)
        assert len(nodes) == 1

    def test_or_filter(self, tree):
        nodes = evaluate_on_tree(parse_xpath("a[x=1 or x=2]"), tree)
        assert len(nodes) == 2

    def test_label_test(self, tree):
        nodes = evaluate_on_tree(parse_xpath("*[label()=a]"), tree)
        assert tags(nodes) == ["a", "a"]

    def test_filter_with_descendant(self, tree):
        nodes = evaluate_on_tree(parse_xpath("a[//x=1]"), tree)
        # a2 contains the nested a whose x=1
        assert len(nodes) == 2

    def test_self_value_filter(self, tree):
        nodes = evaluate_on_tree(parse_xpath('a/x[.="2"]'), tree)
        assert len(nodes) == 1


class TestParents:
    def test_parent_edges(self, tree):
        nodes, edges = evaluate_on_tree_with_parents(parse_xpath("a/b"), tree)
        assert len(edges) == 1
        parent, child = edges[0]
        assert parent.sem == ("2",) and child.tag == "b"

    def test_root_has_no_parent(self, tree):
        _, edges = evaluate_on_tree_with_parents(parse_xpath("."), tree)
        assert edges == [(None, tree)]

    def test_descendant_parents(self, tree):
        nodes, edges = evaluate_on_tree_with_parents(
            parse_xpath("//x"), tree
        )
        assert len(nodes) == 3
        assert all(parent is not None for parent, _ in edges)
