"""Unit tests for the XML tree substrate and serialization."""

from repro.xmltree.serialize import to_xml_string
from repro.xmltree.tree import (
    XMLNode,
    subtree_signature,
    tree_equal,
    tree_size,
)


def build():
    return XMLNode(
        "db",
        (),
        [
            XMLNode("a", ("1",), [XMLNode("x", ("1",), text="1")]),
            XMLNode("a", ("2",), []),
        ],
    )


class TestTree:
    def test_identity(self):
        node = XMLNode("a", ("1", "t"))
        assert node.identity == ("a", ("1", "t"))

    def test_value_only_for_text_nodes(self):
        assert XMLNode("x", ("1",), text="1").value() == "1"
        assert XMLNode("a", ("1",)).value() is None

    def test_iter_preorder(self):
        tree = build()
        assert [n.tag for n in tree.iter()] == ["db", "a", "x", "a"]

    def test_tree_size(self):
        assert tree_size(build()) == 4

    def test_find_all(self):
        tree = build()
        assert len(tree.find_all(lambda n: n.tag == "a")) == 2

    def test_child_by_tag(self):
        tree = build()
        assert tree.child_by_tag("a").sem == ("1",)
        assert tree.child_by_tag("zzz") is None

    def test_tree_equal(self):
        assert tree_equal(build(), build())
        other = build()
        other.children[0].children[0].text = "CHANGED"
        assert not tree_equal(build(), other)

    def test_tree_equal_child_order_matters(self):
        a, b = build(), build()
        b.children.reverse()
        assert not tree_equal(a, b)

    def test_signature_equality(self):
        assert subtree_signature(build()) == subtree_signature(build())

    def test_signature_hashable(self):
        assert {subtree_signature(build())}


class TestSerialize:
    def test_text_leaf(self):
        assert to_xml_string(XMLNode("x", ("1",), text="1")) == "<x>1</x>"

    def test_empty_element(self):
        assert to_xml_string(XMLNode("a", ("1",))) == "<a/>"

    def test_nesting_and_indent(self):
        text = to_xml_string(build())
        assert "<db>" in text and "</db>" in text
        assert "  <a>" in text  # indentation

    def test_escaping(self):
        node = XMLNode("x", (), text="a<b&c>d")
        assert to_xml_string(node) == "<x>a&lt;b&amp;c&gt;d</x>"
