"""Tests for the replication subsystem (``repro.replica``).

The contract under test (normative doc: ``docs/replication.md``):

- ``service.snapshot()`` produces a generation-stamped, schema-versioned
  artifact whose save/load round-trip is lossless and whose loader
  rejects mismatched schema versions and view definitions with typed
  errors;
- a :class:`ReplicaView` bootstrapped from a snapshot and folding the
  changefeed converges to a store *byte-identical* to the writer's at
  every generation it reaches, including replicas that attach mid-stream
  (the Hypothesis acceptance property);
- reads are fenced (``wait_for``), strict (divergence raises), and
  recover from staleness (coarse events, replay gaps) by
  re-bootstrapping — using ``ReplayGapError.oldest_available``;
- the socket transport carries snapshots, events and typed errors
  end-to-end.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import __version__
from repro.errors import (
    ReplicaDivergedError,
    ReplicaError,
    ReplicaStaleError,
    ReplayGapError,
    ReproError,
    SnapshotError,
    SnapshotMismatchError,
    SnapshotSchemaError,
)
from repro.ops import BaseUpdateOp, DeleteOp, InsertOp, ReplaceOp
from repro.replica import (
    SNAPSHOT_SCHEMA_VERSION,
    InProcessTransport,
    ReplicaView,
    ReplicationServer,
    Snapshot,
    SocketTransport,
    atg_fingerprint,
)
from repro.service import ViewConfig, open_view
from repro.subscribe import NodeRecord, ViewEvent, coalesce
from repro.subscribe.delta import EdgeRecord
from repro.views.store import ViewStore
from repro.workloads import REGISTRAR_QUERIES
from repro.workloads.bom import build_bom
from repro.workloads.registrar import build_registrar


def registrar_service(**config):
    atg, db = build_registrar()
    config.setdefault("side_effects", "propagate")
    config.setdefault("strict", False)
    return open_view(atg, db, config=ViewConfig(**config))


OPS = [
    DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"),
    InsertOp(
        "course[cno=CS650]/prereq", "course", ("CS500", "Operating Systems")
    ),
    ReplaceOp(
        "course[cno=CS650]/prereq/course[cno=CS500]",
        "course",
        ("CS700", "Theory"),
    ),
]


def assert_converged(service, replica):
    assert replica.generation == service.stats()["generation"]
    assert replica.export_state() == service.store.export_state()
    assert replica.digest() == service.store.digest()
    for query in REGISTRAR_QUERIES:
        assert sorted(replica.xpath(query).targets) == sorted(
            service.xpath(query).targets
        ), f"replica xpath drifted for {query!r}"


# ---------------------------------------------------------------------------
# The snapshot artifact
# ---------------------------------------------------------------------------


class TestSnapshotArtifact:
    def test_capture_embeds_generation_and_provenance(self):
        service = registrar_service()
        service.apply(OPS[0])
        snapshot = service.snapshot()
        assert snapshot.generation == service.stats()["generation"] == 1
        assert snapshot.schema_version == SNAPSHOT_SCHEMA_VERSION
        prov = snapshot.provenance
        assert prov["library_version"] == __version__
        assert prov["atg_fingerprint"] == atg_fingerprint(service.atg)
        assert prov["nodes"] == service.store.num_nodes
        assert prov["edges"] == service.store.num_edges
        assert "created_at" in prov
        # The embedded config decodes back to the writer's exact config.
        assert ViewConfig.from_dict(snapshot.config) == service.config

    def test_save_load_round_trip_is_lossless(self, tmp_path):
        service = registrar_service()
        service.apply(OPS[0])
        snapshot = service.snapshot()
        path = tmp_path / "view.pkl.gz"
        snapshot.save(path)
        assert Snapshot.load(path) == snapshot

    def test_json_round_trip(self):
        snapshot = registrar_service().snapshot()
        assert Snapshot.from_json(snapshot.to_json()) == snapshot

    def test_restore_store_is_byte_identical(self):
        service = registrar_service()
        for op in OPS:
            service.apply(op)
        snapshot = service.snapshot()
        store = snapshot.restore_store(service.atg)
        assert store.export_state() == service.store.export_state()
        assert store.digest() == service.store.digest()

    def test_mismatched_schema_version_raises_typed_error(self, tmp_path):
        snapshot = registrar_service().snapshot()
        payload = snapshot.to_dict()
        payload["schema_version"] = SNAPSHOT_SCHEMA_VERSION + 1
        with pytest.raises(SnapshotSchemaError) as info:
            Snapshot.from_dict(payload)
        assert info.value.found == SNAPSHOT_SCHEMA_VERSION + 1
        assert info.value.expected == SNAPSHOT_SCHEMA_VERSION

    def test_foreign_or_corrupt_artifacts_raise(self, tmp_path):
        with pytest.raises(SnapshotError):
            Snapshot.from_dict({"format": "something-else"})
        with pytest.raises(SnapshotError):
            Snapshot.from_dict({"format": "repro-snapshot"})  # no version
        path = tmp_path / "garbage.pkl.gz"
        path.write_bytes(b"not gzip at all")
        with pytest.raises(SnapshotError):
            Snapshot.load(path)

    def test_wrong_view_definition_raises_mismatch(self):
        snapshot = registrar_service().snapshot()
        bom_atg, _ = build_bom()
        with pytest.raises(SnapshotMismatchError):
            snapshot.restore_store(bom_atg)
        # Fingerprints are deterministic across ATG constructions.
        atg1, _ = build_registrar()
        atg2, _ = build_registrar()
        assert atg_fingerprint(atg1) == atg_fingerprint(atg2)


# ---------------------------------------------------------------------------
# The node-interning side channel (wire format)
# ---------------------------------------------------------------------------


class TestNodeRecordWire:
    def test_round_trip(self):
        record = NodeRecord(node=4, element="course", sem=("CS650", "AI"))
        assert NodeRecord.from_dict(record.to_dict()) == record

    def test_event_nodes_key_is_optional(self):
        # Producers that predate the key still decode (additive change,
        # not a schema bump — docs/event-schema.md compatibility rules).
        event = ViewEvent(generation=3, reason="delete")
        payload = event.to_dict()
        assert payload["nodes"] == []
        del payload["nodes"]
        assert ViewEvent.from_dict(payload).nodes == []

    def test_insert_events_carry_interning_records(self):
        service = registrar_service()
        feed = service.changefeed()
        service.apply(OPS[0])
        assert feed.events()[0].nodes == []  # pure delete: no new nodes
        service.apply(OPS[1])
        event = feed.events()[0]
        by_id = {rec.node: rec for rec in event.nodes}
        inserted = {
            rec.child for rec in event.edges if rec.kind == "insert"
        } | {rec.parent for rec in event.edges if rec.kind == "insert"}
        assert set(by_id) == inserted
        for rec in event.nodes:
            assert rec.element == service.store.node_type[rec.node]
            assert rec.sem == service.store.node_sem[rec.node]

    def test_coalesce_merges_nodes_deduplicated(self):
        a = ViewEvent(
            generation=1,
            nodes=[NodeRecord(1, "course", ("CS1",))],
        )
        b = ViewEvent(
            generation=2,
            nodes=[
                NodeRecord(1, "course", ("CS1",)),
                NodeRecord(2, "cno", ("CS1",)),
            ],
        )
        merged = coalesce([a, b])
        assert [rec.node for rec in merged.nodes] == [1, 2]


# ---------------------------------------------------------------------------
# Store export/import and ensure_node (unit level)
# ---------------------------------------------------------------------------


class TestStoreExportImport:
    def test_ensure_node_mirrors_and_guards(self):
        atg, db = build_registrar()
        store = ViewStore(atg)
        assert store.ensure_node(5, "course", ("CS1", "T")) is True
        assert store.ensure_node(5, "course", ("CS1", "T")) is False
        assert store._next_id == 6  # allocator advanced past the id
        with pytest.raises(ReproError):
            store.ensure_node(9, "course", ("CS1", "T"))  # same data, new id
        with pytest.raises(ReproError):
            store.ensure_node(5, "course", ("CS2", "U"))  # same id, new data

    def test_from_state_rejects_malformed_payloads(self):
        atg, _ = build_registrar()
        with pytest.raises(ReproError):
            ViewStore.from_state(atg, {"nodes": [[0, "course"]]})


# ---------------------------------------------------------------------------
# Bootstrap + fold
# ---------------------------------------------------------------------------


class TestReplicaFold:
    def test_bootstrap_then_fold_converges(self):
        service = registrar_service()
        replica = ReplicaView(service.atg, InProcessTransport(service))
        assert replica.bootstrap() == 0
        for op in OPS:
            service.apply(op)
        assert replica.pump() == len(OPS)
        assert_converged(service, replica)
        assert replica.lag() == 0

    def test_batches_undo_and_base_updates_fold(self):
        service = registrar_service()
        replica = ReplicaView(service.atg, InProcessTransport(service))
        replica.bootstrap()
        with service.batch() as batch:
            batch.apply(OPS[0])
            batch.apply(OPS[1])
        outcome = service.apply(
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS500]")
        )
        service.undo(outcome)
        service.apply(BaseUpdateOp(ops=(
            ("insert", "course", ("CS901", "Seminar", "CS")),
        )))
        replica.pump()
        assert_converged(service, replica)

    def test_mid_stream_bootstrap_converges(self):
        service = registrar_service()
        service.changefeed().close()  # retain from generation 0
        service.apply(OPS[0])
        service.apply(OPS[1])
        replica = ReplicaView(service.atg, InProcessTransport(service))
        started = replica.bootstrap()
        assert started == service.stats()["generation"]
        service.apply(OPS[2])
        replica.pump()
        assert_converged(service, replica)

    def test_replay_overlap_is_ignored(self):
        service = registrar_service()
        replica = ReplicaView(service.atg, InProcessTransport(service))
        replica.bootstrap()
        service.apply(OPS[0])
        event = replica._feed.next_event(timeout=1.0)
        assert replica.apply_event(event) is True
        assert replica.apply_event(event) is False  # duplicate delivery
        assert replica.events_folded == 1

    def test_coarse_event_raises_stale(self):
        service = registrar_service()
        replica = ReplicaView(
            service.atg, InProcessTransport(service), auto_rebootstrap=False
        )
        replica.bootstrap()
        with pytest.raises(ReplicaStaleError):
            replica.apply_event(
                ViewEvent(generation=99, coarse=True, reason="rebuild")
            )

    def test_unknown_endpoint_raises_diverged(self):
        service = registrar_service()
        replica = ReplicaView(service.atg, InProcessTransport(service))
        replica.bootstrap()
        rogue = ViewEvent(
            generation=99,
            edges=[EdgeRecord("insert", "prereq", "course", 7, 12345)],
        )
        with pytest.raises(ReplicaDivergedError):
            replica.apply_event(rogue)

    def test_reads_require_bootstrap(self):
        service = registrar_service()
        replica = ReplicaView(service.atg, InProcessTransport(service))
        with pytest.raises(ReplicaError):
            replica.xpath("course")
        with pytest.raises(ReplicaError):
            replica.digest()
        with pytest.raises(ReplicaError):
            replica.pump()

    def test_offline_replica_from_saved_artifact(self, tmp_path):
        service = registrar_service()
        for op in OPS:
            service.apply(op)
        path = tmp_path / "view.pkl.gz"
        service.snapshot().save(path)
        replica = ReplicaView.from_snapshot(
            service.atg, Snapshot.load(path)
        )
        assert replica.generation == service.stats()["generation"]
        for query in REGISTRAR_QUERIES:
            assert sorted(replica.xpath(query).targets) == sorted(
                service.xpath(query).targets
            )

    def test_wait_for_fences_background_folding(self):
        service = registrar_service()
        replica = ReplicaView(service.atg, InProcessTransport(service))
        replica.start()  # bootstraps and folds on a daemon thread
        for op in OPS:
            service.apply(op)
        generation = service.stats()["generation"]
        assert replica.wait_for(generation, timeout=10.0) >= generation
        assert_converged(service, replica)
        with pytest.raises(TimeoutError):
            replica.wait_for(generation + 50, timeout=0.05)
        replica.close()
        assert replica.error is None

    def test_stats_shape(self):
        service = registrar_service()
        replica = ReplicaView(service.atg, InProcessTransport(service))
        replica.bootstrap()
        stats = replica.stats()
        assert stats["generation"] == 0
        assert stats["snapshots_loaded"] == 1
        assert stats["running"] is False


# ---------------------------------------------------------------------------
# Staleness recovery (re-bootstrap)
# ---------------------------------------------------------------------------


class _StaleSnapshotTransport(InProcessTransport):
    """Serves one pre-captured (stale) snapshot before going live."""

    def __init__(self, service, stale):
        super().__init__(service)
        self._stale = stale
        self.snapshots_served = 0

    def snapshot(self):
        self.snapshots_served += 1
        if self._stale is not None:
            stale, self._stale = self._stale, None
            return stale
        return super().snapshot()


class TestRebootstrap:
    def test_gap_retry_uses_oldest_available(self):
        service = registrar_service(changefeed_retention=2)
        service.changefeed().close()
        stale = service.snapshot()  # generation 0
        for _ in range(4):  # overflow the 2-event replay buffer
            service.apply(OPS[0])
            service.apply(OPS[1])
        transport = _StaleSnapshotTransport(service, stale)
        replica = ReplicaView(service.atg, transport)
        replica.bootstrap()
        # First attempt hit the gap; the retry demanded a snapshot at or
        # past ReplayGapError.oldest_available and succeeded.
        assert transport.snapshots_served == 2
        assert replica.snapshots_loaded == 1
        replica.pump()
        assert_converged(service, replica)

    def test_bootstrap_gives_up_with_typed_error(self):
        service = registrar_service(changefeed_retention=2)
        service.changefeed().close()
        stale = service.snapshot()
        for _ in range(4):
            service.apply(OPS[0])
            service.apply(OPS[1])

        class AlwaysStale(InProcessTransport):
            def snapshot(self):
                return stale

        replica = ReplicaView(
            service.atg, AlwaysStale(service), max_bootstrap_attempts=3
        )
        with pytest.raises(ReplicaStaleError):
            replica.bootstrap()

    def test_coarse_event_triggers_auto_rebootstrap(self):
        service = registrar_service()
        replica = ReplicaView(service.atg, InProcessTransport(service))
        replica.bootstrap()
        service.apply(OPS[0])
        with service._lock.write():
            service.updater.rebuild_structures_only()  # publishes coarse
        service.apply(OPS[1])
        replica.pump()
        assert replica.snapshots_loaded == 2
        assert_converged(service, replica)


# ---------------------------------------------------------------------------
# The socket transport
# ---------------------------------------------------------------------------


class TestSocketTransport:
    def test_snapshot_head_subscribe_and_typed_gap(self):
        service = registrar_service(changefeed_retention=2)
        service.changefeed().close()
        with ReplicationServer(service) as server:
            transport = SocketTransport(*server.address)
            assert transport.head() == 0
            snapshot = transport.snapshot()
            local = service.snapshot()
            assert snapshot.generation == local.generation
            assert snapshot.store_state == local.store_state
            assert snapshot.config == local.config
            replica = ReplicaView(service.atg, transport)
            replica.start()
            for op in OPS:
                service.apply(op)
            generation = service.stats()["generation"]
            assert replica.wait_for(generation, timeout=10.0) >= generation
            assert_converged(service, replica)
            assert replica.lag() == 0
            # Overflow retention: the gap crosses the wire typed, with
            # oldest_available intact.
            for _ in range(4):
                service.apply(OPS[0])
                service.apply(OPS[1])
            with pytest.raises(ReplayGapError) as info:
                transport.subscribe(0)
            assert info.value.oldest_available == info.value.floor > 0
            replica.close()

    def test_socket_replica_rebootstraps_over_the_wire(self):
        service = registrar_service(changefeed_retention=2)
        service.changefeed().close()
        with ReplicationServer(service) as server:
            stale = service.snapshot()
            for _ in range(4):
                service.apply(OPS[0])
                service.apply(OPS[1])

            class StaleOnce(SocketTransport):
                def __init__(self):
                    super().__init__(*server.address)
                    self._stale = stale

                def snapshot(self):
                    if self._stale is not None:
                        snap, self._stale = self._stale, None
                        return snap
                    return super().snapshot()

            replica = ReplicaView(service.atg, StaleOnce())
            replica.bootstrap()
            replica.pump(timeout=0.3)
            assert_converged(service, replica)
            replica.close()


# ---------------------------------------------------------------------------
# The acceptance property: byte-identical convergence for arbitrary streams
# ---------------------------------------------------------------------------


@st.composite
def registrar_streams(draw):
    courses = ("CS650", "CS320", "CS240", "CS700", "CS800")
    ops = []
    for position in range(draw(st.integers(min_value=1, max_value=6))):
        kind = draw(st.sampled_from(
            ("insert", "delete", "replace", "base", "batch", "abort")
        ))
        cno = draw(st.sampled_from(courses))
        other = draw(st.sampled_from(courses))
        insert = InsertOp(
            f"//course[cno={cno}]/prereq", "course",
            (other, f"Title {other}"),
        )
        delete = DeleteOp(f"//course[cno={cno}]/prereq/course")
        if kind == "insert":
            ops.append(insert)
        elif kind == "delete":
            ops.append(delete)
        elif kind == "replace":
            ops.append(ReplaceOp(
                f"//course[cno={cno}]/prereq/course", "course",
                (other, f"Title {other}"),
            ))
        elif kind == "base":
            ops.append(BaseUpdateOp(ops=(
                ("insert", "course", (f"X{cno}{position}", "Fresh", "CS")),
            )))
        elif kind == "batch":
            ops.append([insert, delete])
        else:
            ops.append(("abort", insert))
    return ops


@given(registrar_streams())
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_replicas_converge_byte_identically(stream):
    """ISSUE 7 acceptance: for any op stream over the full mutating
    surface (insert/delete/replace/base/batch/abort), a replica attached
    at generation 0 AND a replica bootstrapped mid-stream from a fresh
    snapshot both reach a store byte-identical to the writer's at the
    final generation, and their local xpath() answers match the writer's
    for the whole query panel."""
    service = registrar_service()
    replica_0 = ReplicaView(service.atg, InProcessTransport(service))
    replica_0.bootstrap()
    replica_mid = None

    midpoint = len(stream) // 2
    for position, item in enumerate(stream):
        if position == midpoint:
            replica_mid = ReplicaView(
                service.atg, InProcessTransport(service)
            )
            replica_mid.bootstrap()
        if isinstance(item, tuple) and item[0] == "abort":
            plan = service.plan(item[1])
            if plan.accepted:
                plan.abort()
        else:
            service.apply(item)
    if replica_mid is None:  # single-op streams have no midpoint
        replica_mid = ReplicaView(service.atg, InProcessTransport(service))
        replica_mid.bootstrap()

    replica_0.pump()
    replica_mid.pump()
    assert_converged(service, replica_0)
    assert_converged(service, replica_mid)
    assert service.check_consistency() == []
