"""Unit tests for ATG validation and schema-directed publishing."""

import pytest

from repro.atg.model import ATG, ProjectionRule, QueryRule
from repro.atg.publisher import (
    publish_store,
    publish_subtree,
    publish_tree,
    unfold_to_tree,
)
from repro.dtd.parser import parse_dtd
from repro.errors import ATGError, CycleError
from repro.relational.conditions import Col
from repro.relational.query import SPJQuery
from repro.workloads.registrar import build_registrar
from repro.xmltree.tree import tree_equal, tree_size


class TestATGValidation:
    def test_registrar_atg_valid(self):
        atg, _ = build_registrar()
        assert atg.root == "db"
        assert len(atg.query_rules()) == 3

    def test_missing_rule_rejected(self):
        dtd = parse_dtd("<!ELEMENT a (b*)>")
        with pytest.raises(ATGError):
            ATG(dtd, {"a": (), "b": ("x",)}, [])

    def test_missing_signature_rejected(self):
        dtd = parse_dtd("<!ELEMENT a (b*)>")
        query = SPJQuery("q", [("t", "t")], [("x", Col("t", "x"))])
        with pytest.raises(ATGError):
            ATG(dtd, {"a": ()}, [QueryRule("a", "b", query)])

    def test_star_child_needs_query_rule(self):
        dtd = parse_dtd("<!ELEMENT a (b*)>")
        with pytest.raises(ATGError):
            ATG(
                dtd,
                {"a": ("x",), "b": ("x",)},
                [ProjectionRule("a", "b", ("x",))],
            )

    def test_sequence_child_needs_projection_rule(self):
        dtd = parse_dtd("<!ELEMENT a (b)>")
        query = SPJQuery("q", [("t", "t")], [("x", Col("t", "x"))])
        with pytest.raises(ATGError):
            ATG(
                dtd,
                {"a": ("x",), "b": ("x",)},
                [QueryRule("a", "b", query)],
            )

    def test_projection_arity_mismatch_rejected(self):
        dtd = parse_dtd("<!ELEMENT a (b)>")
        with pytest.raises(ATGError):
            ATG(
                dtd,
                {"a": ("x",), "b": ("x", "y")},
                [ProjectionRule("a", "b", ("x",))],
            )

    def test_duplicate_rule_rejected(self):
        dtd = parse_dtd("<!ELEMENT a (b)>")
        with pytest.raises(ATGError):
            ATG(
                dtd,
                {"a": ("x",), "b": ("x",)},
                [
                    ProjectionRule("a", "b", ("x",)),
                    ProjectionRule("a", "b", ("x",)),
                ],
            )

    def test_rule_for_unknown_edge_rejected(self):
        dtd = parse_dtd("<!ELEMENT a (b)>")
        with pytest.raises(ATGError):
            ATG(
                dtd,
                {"a": ("x",), "b": ("x",)},
                [
                    ProjectionRule("a", "b", ("x",)),
                    ProjectionRule("b", "a", ("x",)),
                ],
            )


class TestPublishStore:
    def test_registrar_counts(self):
        atg, db = build_registrar()
        store = publish_store(atg, db)
        cnos = {
            store.sem_of(n)[0]
            for n in store.nodes()
            if store.type_of(n) == "course"
        }
        assert cnos == {"CS650", "CS500", "CS320", "CS240"}  # no MA100

    def test_shared_subtree_stored_once(self):
        atg, db = build_registrar()
        store = publish_store(atg, db)
        # Student S02 enrolled in two courses: one node, two parents.
        node = store.lookup("student", ("S02", "Grace"))
        assert node is not None
        assert store.in_degree(node) == 2

    def test_course_appears_at_root_and_under_prereq(self):
        atg, db = build_registrar()
        store = publish_store(atg, db)
        cs320 = store.lookup("course", ("CS320", "Databases"))
        parents = {store.type_of(p) for p in store.parents_of(cs320)}
        assert parents == {"db", "prereq"}

    def test_children_in_production_order(self):
        atg, db = build_registrar()
        store = publish_store(atg, db)
        cs650 = store.lookup("course", ("CS650", "Advanced Databases"))
        child_types = [store.type_of(c) for c in store.children_of(cs650)]
        assert child_types == ["cno", "title", "prereq", "takenBy"]

    def test_deterministic(self):
        atg1, db1 = build_registrar()
        atg2, db2 = build_registrar()
        s1 = publish_store(atg1, db1)
        s2 = publish_store(atg2, db2)
        assert {
            (s1.type_of(n), s1.sem_of(n)) for n in s1.nodes()
        } == {(s2.type_of(n), s2.sem_of(n)) for n in s2.nodes()}

    def test_empty_database(self):
        atg, db = build_registrar(populate=False)
        store = publish_store(atg, db)
        assert store.num_nodes == 1  # just the root
        assert store.num_edges == 0


class TestPublishTree:
    def test_tree_matches_unfolded_store(self):
        atg, db = build_registrar()
        tree = publish_tree(atg, db)
        unfolded = unfold_to_tree(publish_store(atg, db))
        assert tree_equal(tree, unfolded)

    def test_tree_larger_than_dag(self):
        atg, db = build_registrar()
        store = publish_store(atg, db)
        tree = publish_tree(atg, db)
        assert tree_size(tree) > store.num_nodes

    def test_cycle_detected(self):
        atg, db = build_registrar()
        db.insert("prereq", ("CS240", "CS650"))  # CS650 -> CS320 -> CS240 -> CS650
        with pytest.raises(CycleError):
            publish_tree(atg, db)

    def test_max_nodes_budget(self):
        atg, db = build_registrar()
        with pytest.raises(ATGError):
            publish_tree(atg, db, max_nodes=3)

    def test_pcdata_leaves_have_text(self):
        atg, db = build_registrar()
        tree = publish_tree(atg, db)
        course = tree.children[0]
        assert course.children[0].tag == "cno"
        assert course.children[0].text == course.sem[0]


class TestPublishSubtree:
    def test_existing_subtree_reused(self):
        atg, db = build_registrar()
        store = publish_store(atg, db)
        result = publish_subtree(
            atg, db, store, "course", ("CS240", "Data Structures")
        )
        assert result.root == store.lookup(
            "course", ("CS240", "Data Structures")
        )
        assert result.new_nodes == []
        assert result.edges == []
        assert result.node_count > 1

    def test_new_subtree_interned_without_edges(self):
        atg, db = build_registrar()
        store = publish_store(atg, db)
        before = store.num_edges
        result = publish_subtree(atg, db, store, "course", ("CS999", "New"))
        assert store.num_edges == before  # no edges added to the store
        assert len(result.new_nodes) >= 1
        assert store.lookup("course", ("CS999", "New")) == result.root

    def test_new_subtree_shares_existing_children(self):
        atg, db = build_registrar()
        store = publish_store(atg, db)
        # CS999 has CS240 as prereq: subtree reuses CS240's existing node.
        db.insert("prereq", ("CS999", "CS240"))
        result = publish_subtree(atg, db, store, "course", ("CS999", "New"))
        cs240 = store.lookup("course", ("CS240", "Data Structures"))
        assert any(child == cs240 for *_, child in result.edges)
        assert cs240 not in result.new_nodes

    def test_rollback_removes_new_nodes(self):
        atg, db = build_registrar()
        store = publish_store(atg, db)
        before = store.num_nodes
        result = publish_subtree(atg, db, store, "course", ("CS999", "New"))
        assert store.num_nodes > before
        result.rollback(store)
        assert store.num_nodes == before
        assert store.lookup("course", ("CS999", "New")) is None

    def test_all_nodes_closed_under_descendants(self):
        atg, db = build_registrar()
        store = publish_store(atg, db)
        db.insert("prereq", ("CS999", "CS240"))
        result = publish_subtree(atg, db, store, "course", ("CS999", "New"))
        # CS240's whole stored subtree is inside all_nodes.
        cs240 = store.lookup("course", ("CS240", "Data Structures"))
        stack = [cs240]
        while stack:
            node = stack.pop()
            assert node in result.all_nodes
            stack.extend(store.children_of(node))
