"""Tests for the plan/commit ``ViewService`` façade and ``ViewConfig``.

The acceptance contract of the service layer:

- for every op kind, ``service.plan(op).commit()`` yields ΔV/ΔR equal to
  ``service.apply(op)`` on an identically built fresh view;
- an aborted plan leaves store, ``M`` and ``L`` byte-identical;
- the plan protocol is enforced (one outstanding plan, no double
  commit, staleness detection);
- concurrent readers are safe while updates and their background
  maintenance run under the write lock.
"""

import threading
import time

import pytest

from repro.core.updater import PlanState
from repro.errors import PlanError, ReproError, StalePlanError
from repro.ops import BaseUpdateOp, DeleteOp, InsertOp, ReplaceOp
from repro.relview.insert import reset_fresh_counter
from repro.service import ViewConfig, ViewService, open_view
from repro.workloads.queries import make_workload
from repro.workloads.registrar import build_registrar
from repro.workloads.synthetic import SyntheticConfig, build_synthetic


def registrar_service(**config) -> ViewService:
    atg, db = build_registrar()
    return open_view(atg, db, config=ViewConfig(**config))


def synthetic_service(**config) -> tuple[ViewService, object]:
    dataset = build_synthetic(SyntheticConfig(n_c=120, seed=3))
    service = open_view(
        dataset.atg, dataset.db, config=ViewConfig(**config)
    )
    return service, dataset


REGISTRAR_OPS = [
    DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"),
    InsertOp("course[cno=CS650]/prereq", "course", ("CS500", "Operating Systems")),
    ReplaceOp(
        "course[cno=CS650]/prereq/course[cno=CS320]",
        "course",
        ("CS500", "Operating Systems"),
    ),
    BaseUpdateOp(
        ops=(
            ("insert", "course", ("CS777", "Compilers", "CS")),
            ("insert", "prereq", ("CS650", "CS777")),
        )
    ),
]


def synthetic_ops(dataset) -> list:
    """One op per kind against the synthetic dataset."""
    delete_op = make_workload(dataset, "delete", "W2", count=1)[0]
    insert_op = make_workload(
        dataset, "insert", "W2", count=1, new_key_fraction=0.0
    )[0]
    replace_op = make_workload(
        dataset, "replace", "W2", count=1, new_key_fraction=0.0
    )[0]
    return [delete_op, insert_op, replace_op]


def delta_rows(delta):
    if delta is None:
        return None
    return [
        (op.kind, op.parent_type, op.child_type, op.parent, op.child)
        if hasattr(op, "parent_type")
        else (op.kind, op.relation, op.row)
        for op in delta
    ]


def assert_equivalent(out_apply, out_commit, svc_apply, svc_commit):
    assert out_apply.accepted and out_commit.accepted
    assert delta_rows(out_apply.delta_v) == delta_rows(out_commit.delta_v)
    assert delta_rows(out_apply.delta_r) == delta_rows(out_commit.delta_r)
    assert out_apply.targets == out_commit.targets
    assert out_apply.side_effects == out_commit.side_effects
    assert svc_apply.reach.equals(svc_commit.reach)
    assert svc_apply.check_consistency() == []
    assert svc_commit.check_consistency() == []


class TestPlanCommitEquivalence:
    @pytest.mark.parametrize("index", range(len(REGISTRAR_OPS)))
    def test_registrar(self, index):
        op = REGISTRAR_OPS[index]
        reset_fresh_counter()
        a = registrar_service()
        out_apply = a.apply(op)
        reset_fresh_counter()
        b = registrar_service()
        plan = b.plan(op)
        assert plan.state is PlanState.PLANNED
        out_commit = plan.commit()
        assert plan.state is PlanState.COMMITTED
        assert_equivalent(out_apply, out_commit, a, b)

    @pytest.mark.parametrize("index", range(3))
    def test_synthetic(self, index):
        reset_fresh_counter()
        a, dataset_a = synthetic_service(side_effects="propagate")
        op = synthetic_ops(dataset_a)[index]
        out_apply = a.apply(op)
        reset_fresh_counter()
        b, _ = synthetic_service(side_effects="propagate")
        out_commit = b.plan(op).commit()
        assert_equivalent(out_apply, out_commit, a, b)

    def test_replace_node_with_itself_is_a_noop(self):
        """Regression: self-replacement used to delete the base rows
        while the view edge survived, leaving base and view inconsistent
        (the insertion translation runs on the pre-delete snapshot)."""
        service = registrar_service()
        rows_before = sorted(service.db.rows("prereq"))
        out = service.apply(
            ReplaceOp(
                "course[cno=CS650]/prereq/course[cno=CS320]",
                "course",
                ("CS320", "Databases"),
            )
        )
        assert out.accepted
        assert sorted(service.db.rows("prereq")) == rows_before
        assert service.check_consistency() == []

    def test_replace_self_among_others(self):
        """Replacing {CS240, CS500} with CS240: only CS500's edge moves."""
        service = registrar_service(side_effects="propagate")
        service.apply(
            InsertOp("//course[cno=CS320]/prereq", "course",
                     ("CS500", "Operating Systems"))
        )
        out = service.apply(
            ReplaceOp("//course[cno=CS320]/prereq/course", "course",
                      ("CS240", "Data Structures"))
        )
        assert out.accepted
        assert sorted(service.db.rows("prereq")) == sorted(
            [("CS650", "CS320"), ("CS320", "CS240")]
        )
        assert service.check_consistency() == []

    def test_synthetic_base_update(self):
        # ΔR harvested from a view update, then replayed as a base update.
        scratch, dataset = synthetic_service(side_effects="propagate")
        delete_op = make_workload(dataset, "delete", "W2", count=1)[0]
        delta = scratch.apply(delete_op).delta_r
        op = BaseUpdateOp.from_delta(delta)

        a, _ = synthetic_service(side_effects="propagate")
        out_apply = a.apply(op)
        b, _ = synthetic_service(side_effects="propagate")
        out_commit = b.plan(op).commit()
        assert_equivalent(out_apply, out_commit, a, b)


class TestPlanPreview:
    def test_foreground_phases_exposed_before_mutation(self):
        service = registrar_service()
        rows_before = len(service.db.table("prereq"))
        plan = service.plan(REGISTRAR_OPS[0])
        # Foreground phases ran...
        assert plan.targets
        assert plan.delta_v is not None and len(plan.delta_v) == 1
        assert plan.delta_r is not None and len(plan.delta_r) == 1
        for phase in ("validate", "xpath", "translate_v", "translate_r"):
            assert phase in plan.timings
        # ...but nothing was applied or maintained yet.
        assert "apply" not in plan.timings and "maintain" not in plan.timings
        assert len(service.db.table("prereq")) == rows_before
        payload = plan.to_dict()
        assert payload["state"] == "planned"
        assert payload["op"] == REGISTRAR_OPS[0].to_dict()
        plan.abort()

    def test_rejected_plan_carries_reason(self):
        service = registrar_service(strict=False)
        plan = service.plan(DeleteOp("course[cno=NOPE]"))
        assert plan.state is PlanState.REJECTED
        assert not plan.accepted
        assert "selects no node" in plan.outcome.reason
        with pytest.raises(PlanError, match="rejected"):
            plan.commit()

    def test_strict_rejection_raises_at_plan_time(self):
        service = registrar_service()
        from repro.errors import UpdateRejectedError

        with pytest.raises(UpdateRejectedError):
            service.plan(DeleteOp("course[cno=NOPE]"))


class TestAbort:
    @pytest.mark.parametrize(
        "op",
        [
            REGISTRAR_OPS[0],
            REGISTRAR_OPS[1],
            REGISTRAR_OPS[2],
            InsertOp(".", "course", ("CS901", "Brand New")),
        ],
    )
    def test_abort_leaves_state_byte_identical(self, op):
        reset_fresh_counter()
        planned = registrar_service()
        untouched = registrar_service()
        plan = planned.plan(op)
        plan.abort()
        assert plan.state is PlanState.ABORTED
        sa, sb = planned.store, untouched.store
        assert sa._intern == sb._intern
        assert sa._next_id == sb._next_id
        assert sa.node_type == sb.node_type
        assert sa.node_sem == sb.node_sem
        assert sa.edges == sb.edges
        assert sa.children == sb.children
        assert sa.parents == sb.parents
        assert list(planned.topo) == list(untouched.topo)
        assert planned.reach.equals(untouched.reach)
        assert planned.check_consistency() == []

    def test_abort_then_apply_matches_fresh_state(self):
        op = InsertOp(".", "course", ("CS700", "Theory"))
        planned = registrar_service()
        planned.plan(op).abort()
        out = planned.apply(op)
        fresh = registrar_service()
        out_fresh = fresh.apply(op)
        assert delta_rows(out.delta_v) == delta_rows(out_fresh.delta_v)
        assert planned.reach.equals(fresh.reach)


class TestPlanProtocol:
    def test_only_one_outstanding_plan(self):
        service = registrar_service()
        plan = service.plan(REGISTRAR_OPS[0])
        with pytest.raises(PlanError, match="outstanding"):
            service.plan(REGISTRAR_OPS[1])
        with pytest.raises(PlanError, match="outstanding"):
            service.apply(REGISTRAR_OPS[1])  # apply plans internally too
        plan.abort()
        assert service.apply(REGISTRAR_OPS[1]).accepted

    def test_double_commit_rejected(self):
        service = registrar_service()
        plan = service.plan(REGISTRAR_OPS[0])
        plan.commit()
        with pytest.raises(PlanError, match="committed"):
            plan.commit()
        with pytest.raises(PlanError, match="committed"):
            plan.abort()

    def test_abort_is_idempotent(self):
        service = registrar_service()
        plan = service.plan(REGISTRAR_OPS[0])
        plan.abort()
        plan.abort()  # no-op
        with pytest.raises(PlanError):
            plan.commit()

    def test_intervening_session_flush_staleness(self):
        service = registrar_service(side_effects="propagate")
        plan = service.plan(REGISTRAR_OPS[0])
        plan.abort()
        # A flushed batch session bumps the version...
        service.apply([InsertOp(".", "course", ("CS888", "Logic"))])
        # ...so a plan prepared before it must refuse to commit.
        stale = service.plan(REGISTRAR_OPS[1])
        service.updater._version += 1  # simulate any later mutation
        with pytest.raises(StalePlanError):
            stale.commit()

    def test_base_update_blocked_while_plan_outstanding(self):
        """Regression: propagation used to trip over the plan's
        pre-interned edge-less nodes and corrupt the store."""
        service = registrar_service()
        plan = service.plan(InsertOp(".", "course", ("CS900", "X")))
        from repro.relational.database import RelationalDelta

        delta = RelationalDelta()
        delta.insert("course", ("CS900", "X", "CS"))
        with pytest.raises(PlanError, match="outstanding"):
            service.updater.apply_base_update(delta)
        # The store is untouched and the plan still commits cleanly.
        assert service.check_consistency() == []
        assert plan.commit().accepted
        assert service.check_consistency() == []

    def test_commit_failure_does_not_wedge_the_updater(self):
        """Regression: a commit-time error used to leave the internal
        plan outstanding forever, blocking every subsequent write."""
        service = registrar_service(side_effects="propagate")
        with pytest.raises(ReproError):
            with service.batch() as batch:
                batch.apply(DeleteOp(
                    "course[cno=CS650]/prereq/course[cno=CS320]"
                ))  # session now has pending maintenance...
                batch.apply(REGISTRAR_OPS[3])  # ...so a base update fails
        # The updater is not wedged: planning and applying still work.
        out = service.apply(InsertOp(".", "course", ("CS700", "Theory")))
        assert out.accepted
        assert service.check_consistency() == []

    def test_failed_plan_cannot_be_aborted(self):
        service = registrar_service(side_effects="propagate")
        with service.batch() as batch:
            batch.apply(DeleteOp(
                "course[cno=CS650]/prereq/course[cno=CS320]"
            ))  # make the session's maintenance pending
            plan = service.updater.plan(REGISTRAR_OPS[3])
            with pytest.raises(ReproError):
                plan.commit()  # base update with session pending: fails
            assert plan.state is PlanState.FAILED
            with pytest.raises(PlanError, match="failed"):
                plan.abort()
            batch.apply(InsertOp(".", "course", ("CS700", "Theory")))
        assert service.check_consistency() == []

    def test_abort_on_rejected_plan_keeps_the_rejection(self):
        """Regression: generic cleanup (try/finally plan.abort()) used to
        flip a rejected plan to 'aborted', reporting accepted=True."""
        service = registrar_service(strict=False)
        plan = service.plan(DeleteOp("course[cno=NOPE]"))
        plan.abort()  # no-op on a rejected plan
        assert plan.state is PlanState.REJECTED
        assert plan.accepted is False
        assert plan.to_dict()["accepted"] is False
        assert plan.to_dict()["state"] == "rejected"

    def test_nested_service_calls_inside_batch_do_not_deadlock(self):
        """The write lock is reentrant for its owner: service calls made
        inside `with service.batch():` nest instead of hanging."""
        service = registrar_service(side_effects="propagate")
        with service.batch():
            out = service.apply(
                DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
            )
            assert out.accepted
            assert len(service.xpath("//course").targets) == 4
            plan = service.plan(InsertOp(".", "course", ("CS700", "Theory")))
            assert plan.commit().accepted
        assert service.check_consistency() == []

    def test_strict_batch_failure_carries_partial_outcomes(self):
        from repro.errors import UpdateRejectedError

        service = registrar_service(side_effects="propagate")
        ops = [
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"),
            DeleteOp("course[cno=NOPE]"),  # rejected -> raises (strict)
            InsertOp(".", "course", ("CS700", "Theory")),
        ]
        with pytest.raises(UpdateRejectedError) as excinfo:
            service.apply(ops)
        done = excinfo.value.batch_outcomes
        assert len(done) == 1 and done[0].accepted
        # The committed prefix is undoable from the carried outcomes.
        service.undo(done[0])
        assert service.check_consistency() == []

    def test_batched_base_update_rejected_upfront(self):
        service = registrar_service()
        with pytest.raises(PlanError, match="batched apply"):
            service.apply([REGISTRAR_OPS[0], REGISTRAR_OPS[3]])
        # Nothing was applied: the first op is still available.
        assert service.apply(REGISTRAR_OPS[0]).accepted


class TestApply:
    def test_apply_accepts_wire_dicts(self):
        service = registrar_service()
        out = service.apply(
            {"op": "delete",
             "path": "course[cno=CS650]/prereq/course[cno=CS320]"}
        )
        assert out.accepted
        assert service.check_consistency() == []

    def test_apply_list_routes_through_one_batch(self):
        service = registrar_service(side_effects="propagate")
        runs_before = service.maintenance_runs
        outcomes = service.apply(
            [
                DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"),
                InsertOp(".", "course", ("CS700", "Theory")),
                {"op": "delete",
                 "path": "//course[cno=CS320]/prereq/course[cno=CS240]"},
            ]
        )
        assert [o.accepted for o in outcomes] == [True, True, True]
        assert service.maintenance_runs - runs_before == 1  # one flush
        assert service.check_consistency() == []

    def test_batch_context_manager(self):
        service = registrar_service(side_effects="propagate")
        runs_before = service.maintenance_runs
        with service.batch() as batch:
            out1 = batch.apply(
                DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
            )
            out2 = batch.apply(InsertOp(".", "course", ("CS700", "Theory")))
        assert out1.accepted and out2.accepted
        assert service.maintenance_runs - runs_before == 1
        assert service.check_consistency() == []

    def test_reads(self):
        service = registrar_service()
        assert len(service.xpath("//course").targets) == 4
        tree = service.xml_tree()
        assert tree.tag == "db"
        stats = service.stats()
        assert stats["nodes"] == service.store.num_nodes
        assert stats["config"]["side_effects"] == "abort"

    def test_undo(self):
        service = registrar_service()
        before = service.xml_tree()
        out = service.apply(REGISTRAR_OPS[0])
        service.undo(out)
        from repro.xmltree.tree import tree_equal

        assert tree_equal(service.xml_tree(), before)
        assert service.check_consistency() == []


class TestViewConfig:
    def test_round_trip(self):
        config = ViewConfig(
            index_backend="sets", side_effects="propagate", strict=False,
            seed=7,
        )
        assert ViewConfig.from_dict(config.to_dict()) == config

    def test_invalid_values_rejected(self):
        with pytest.raises(ReproError):
            ViewConfig(side_effects="maybe")
        with pytest.raises(ReproError):
            ViewConfig(index_backend="quantum")
        with pytest.raises(ReproError):
            ViewConfig(sat_solver="magic")
        with pytest.raises(ReproError, match="unknown ViewConfig"):
            ViewConfig.from_dict({"nope": 1})

    def test_policy_mapping(self):
        from repro.core.updater import SideEffectPolicy

        assert ViewConfig().policy is SideEffectPolicy.ABORT
        assert (
            ViewConfig(side_effects="propagate").policy
            is SideEffectPolicy.PROPAGATE
        )

    def test_config_reaches_the_updater(self):
        service = registrar_service(
            index_backend="sets", strict=False, verify_each_update=True
        )
        assert service.updater.index_backend == "sets"
        assert service.updater.strict is False
        assert service.updater.verify_each_update is True


class TestLegacyShims:
    def test_insert_shim_warns_and_works(self):
        service = registrar_service()
        with pytest.deprecated_call():
            out = service.updater.insert(
                "course[cno=CS650]/prereq", "course",
                ("CS500", "Operating Systems"),
            )
        assert out.accepted
        assert service.check_consistency() == []

    def test_delete_shim_warns_and_works(self):
        service = registrar_service()
        with pytest.deprecated_call():
            out = service.updater.delete(
                "course[cno=CS650]/prereq/course[cno=CS320]"
            )
        assert out.accepted

    def test_shim_accepts_parsed_paths(self):
        from repro.xpath.parser import parse_xpath

        service = registrar_service()
        parsed = parse_xpath("course[cno=CS650]/prereq/course[cno=CS320]")
        with pytest.deprecated_call():
            out = service.updater.delete(parsed)
        assert out.accepted

    def test_repro_internal_callers_fail_the_build(self):
        """The CI gate: a shim call *from inside repro* is an error.

        The filterwarnings config escalates DeprecationWarning to an
        error when the warning originates in a ``repro.*`` module.
        Simulate an unmigrated internal caller by executing the shim
        call under a ``repro.``-named module.
        """
        service = registrar_service()
        code = compile(
            "service.updater.delete("
            "'course[cno=CS650]/prereq/course[cno=CS320]')",
            "<repro-internal>",
            "exec",
        )
        with pytest.raises(DeprecationWarning):
            exec(
                code,
                {"__name__": "repro._unmigrated_caller", "service": service},
            )


class TestReadWriteUpgrade:
    """Regression: a reader calling a write API used to deadlock forever
    in ``acquire_write`` (the writer waits for readers — including the
    upgrading thread itself — to drain).  The lock now detects the
    upgrade attempt and raises."""

    def test_raw_lock_upgrade_raises(self):
        from repro.service.rwlock import RWLock

        lock = RWLock()
        lock.acquire_read()
        try:
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()
        finally:
            lock.release_read()
        # The failed upgrade leaves the lock fully usable.
        lock.acquire_write()
        lock.release_write()
        lock.acquire_read()
        lock.release_read()

    def test_apply_inside_read_raises_instead_of_hanging(self):
        service = registrar_service()
        with service._lock.read():
            with pytest.raises(RuntimeError, match="read→write upgrade"):
                service.apply(REGISTRAR_OPS[0])
        # ...and the write path works once the read lock is released.
        assert service.apply(REGISTRAR_OPS[0]).accepted

    def test_plan_inside_read_raises(self):
        service = registrar_service()
        with service._lock.read():
            with pytest.raises(RuntimeError, match="upgrade"):
                service.plan(REGISTRAR_OPS[1])

    def test_upgrade_error_from_reader_thread(self):
        """The deadlock scenario end to end: a reader thread that turns
        around and writes gets an exception, not a hang."""
        service = registrar_service()
        failures: list[BaseException] = []

        def reader_turned_writer():
            try:
                with service._lock.read():
                    service.apply(REGISTRAR_OPS[0])
            except RuntimeError as exc:
                failures.append(exc)

        t = threading.Thread(target=reader_turned_writer)
        t.start()
        t.join(timeout=10)
        assert not t.is_alive(), "reader thread deadlocked"
        assert len(failures) == 1 and "upgrade" in str(failures[0])

    def test_nested_read_does_not_deadlock_behind_waiting_writer(self):
        """Regression: a thread re-entering the read side while a writer
        queued used to deadlock silently (the writer waits on readers,
        the nested read waits on the writer)."""
        from repro.service.rwlock import RWLock

        lock = RWLock()
        lock.acquire_read()
        writer_started = threading.Event()

        def writer():
            writer_started.set()
            lock.acquire_write()
            lock.release_write()

        t = threading.Thread(target=writer)
        t.start()
        writer_started.wait()
        time.sleep(0.05)  # let the writer block in acquire_write
        lock.acquire_read()  # nested read: must be granted immediately
        lock.release_read()
        lock.release_read()
        t.join(timeout=10)
        assert not t.is_alive(), "writer never acquired after reads drained"

    def test_writer_may_still_read_reentrantly(self):
        service = registrar_service(side_effects="propagate")
        expected = len(service.xpath("//course").targets)
        with service.batch():
            assert len(service.xpath("//course").targets) == expected


class TestConcurrency:
    def test_readers_safe_during_updates(self):
        service, dataset = synthetic_service(
            side_effects="propagate", strict=False
        )
        ops = make_workload(dataset, "delete", "W2", count=8)
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    service.xpath("//cnode")
                    service.xml_tree()
                except BaseException as exc:  # noqa: BLE001 - test harness
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        try:
            for op in ops:
                service.apply(op)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert errors == []
        assert service.check_consistency() == []

    def test_plan_commit_from_another_thread(self):
        service = registrar_service()
        plan = service.plan(REGISTRAR_OPS[0])
        result: list = []

        def committer():
            result.append(plan.commit())

        t = threading.Thread(target=committer)
        t.start()
        t.join(timeout=10)
        assert result and result[0].accepted
        assert service.check_consistency() == []
