"""Tests for the public changefeed (``service.changefeed``).

The contract under test (normative spec: ``docs/event-schema.md``):

- one JSON-round-trip :class:`ViewEvent` per committed generation
  observable at rest (batches coalesce to the flush generation; aborted
  plans and rejected ops publish nothing);
- ``changefeed(since=g)`` replays exactly the retained events after
  ``g``, gaplessly, then goes live; a resume point older than retention
  raises :class:`ReplayGapError`, one ahead of the feed raises
  :class:`ChangefeedError`;
- a consumer resuming from *any* retained generation reconstructs the
  same final subscription results and ``(added, removed)`` deltas as a
  consumer attached from generation 0 (the acceptance property).
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.changefeed import ReplayBuffer
from repro.errors import ChangefeedError, EventDecodeError, ReplayGapError
from repro.ops import BaseUpdateOp, DeleteOp, InsertOp, ReplaceOp
from repro.service import ViewConfig, open_view
from repro.subscribe import SCHEMA_VERSION, EdgeRecord, ViewEvent
from repro.workloads import REGISTRAR_QUERIES
from repro.workloads.registrar import build_registrar


def registrar_service(**config):
    atg, db = build_registrar()
    config.setdefault("side_effects", "propagate")
    config.setdefault("strict", False)
    return open_view(atg, db, config=ViewConfig(**config))


def summarize(events):
    return [(e.generation, e.coarse, e.reason) for e in events]


# ---------------------------------------------------------------------------
# The replay buffer (unit level)
# ---------------------------------------------------------------------------


class TestReplayBuffer:
    def _event(self, gen):
        return ViewEvent(generation=gen, reason=f"g{gen}")

    def test_since_returns_suffix_in_order(self):
        buf = ReplayBuffer(capacity=10)
        for gen in (1, 2, 5, 6):  # generations need not be dense
            buf.append(self._event(gen))
        assert [e.generation for e in buf.since(0)] == [1, 2, 5, 6]
        assert [e.generation for e in buf.since(2)] == [5, 6]
        assert [e.generation for e in buf.since(3)] == [5, 6]
        assert buf.since(6) == []

    def test_eviction_raises_floor(self):
        buf = ReplayBuffer(capacity=2)
        for gen in (1, 2, 3):
            buf.append(self._event(gen))
        assert buf.floor == 1
        assert [e.generation for e in buf.since(1)] == [2, 3]
        with pytest.raises(ReplayGapError) as info:
            buf.since(0)
        assert info.value.since == 0
        assert info.value.floor == 1

    def test_initial_floor_is_attach_generation(self):
        buf = ReplayBuffer(capacity=4, floor=7)
        with pytest.raises(ReplayGapError):
            buf.since(6)
        assert buf.since(7) == []
        assert buf.latest == 7

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0)


# ---------------------------------------------------------------------------
# The frozen event wire format
# ---------------------------------------------------------------------------


class TestEventWireFormat:
    def test_fine_event_round_trips(self):
        event = ViewEvent(
            generation=7,
            edges=[
                EdgeRecord("insert", "prereq", "course", 4, 9, None),
                EdgeRecord("delete", "course", "cno", 9, 11, "CS320"),
            ],
            reason="replace",
        )
        assert ViewEvent.from_json(event.to_json()) == event
        payload = event.to_dict()
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["edges"][1]["child_value"] == "CS320"

    def test_coarse_event_round_trips(self):
        event = ViewEvent(generation=3, coarse=True, reason="rebuild")
        assert ViewEvent.from_dict(event.to_dict()) == event

    def test_deferred_flag_never_serialized(self):
        # Published events are batch-coalesced; the wire format has no
        # 'deferred' key, and decoding always yields deferred=False.
        event = ViewEvent(generation=2, deferred=True, reason="insert")
        payload = event.to_dict()
        assert "deferred" not in payload
        assert ViewEvent.from_dict(payload).deferred is False

    @pytest.mark.parametrize("mutate", [
        lambda p: p.pop("schema"),
        lambda p: p.update(schema=SCHEMA_VERSION + 1),
        lambda p: p.update(generation="7"),
        lambda p: p.update(generation=True),
        lambda p: p.update(coarse="no"),
        lambda p: p.pop("edges"),
        lambda p: p.update(edges=[{"kind": "upsert"}]),
        lambda p: p.update(edges=[{"kind": "insert"}]),
    ])
    def test_malformed_payloads_raise(self, mutate):
        payload = ViewEvent(
            generation=7,
            edges=[EdgeRecord("insert", "a", "b", 1, 2)],
        ).to_dict()
        mutate(payload)
        with pytest.raises(EventDecodeError):
            ViewEvent.from_dict(payload)

    def test_bad_json_text_raises(self):
        with pytest.raises(EventDecodeError):
            ViewEvent.from_json("{not json")
        with pytest.raises(EventDecodeError):
            ViewEvent.from_json('"a string"')


# ---------------------------------------------------------------------------
# Consumer protocol over a live service
# ---------------------------------------------------------------------------


class TestConsumerProtocol:
    def test_pull_consumer_sees_each_commit(self):
        service = registrar_service()
        feed = service.changefeed()
        assert feed.generation == 0
        service.apply(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
        service.apply(InsertOp(
            "course[cno=CS650]/prereq", "course", ("CS320", "Databases")
        ))
        events = feed.events()
        assert [e.generation for e in events] == [1, 2]
        assert events[0].reason == "delete" and events[1].reason == "insert"
        assert all(not e.coarse for e in events)
        assert feed.generation == 2
        assert feed.pending == 0

    def test_rejections_and_aborts_publish_nothing(self):
        service = registrar_service()
        feed = service.changefeed()
        service.apply(DeleteOp("course[cno=NOPE]/prereq"))  # rejected
        plan = service.plan(InsertOp(
            "course[cno=CS650]/prereq", "course", ("CS320", "Databases")
        ))
        plan.abort()
        assert feed.events() == []
        assert service.changefeeds.stats()["events_published"] == 0

    def test_batch_coalesces_to_one_event_at_flush_generation(self):
        service = registrar_service()
        feed = service.changefeed()
        service.apply([
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"),
            InsertOp("course[cno=CS650]/prereq", "course",
                     ("CS320", "Databases")),
        ])
        events = feed.events()
        assert len(events) == 1
        assert events[0].generation == service.updater._version
        assert events[0].reason == "batch_flush"

    def test_callback_runs_after_subscription_maintenance(self):
        service = registrar_service()
        sub = service.subscribe("course[cno=CS650]/prereq/course")
        seen = []

        def on_event(event):
            # The registry is pinned ahead of the hub: the subscription
            # already reflects this event's generation.
            assert sub.generation == event.generation
            seen.append((event.generation, sub.delta()))

        service.changefeed(on_event=on_event)
        before = sub.result()
        service.apply(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
        assert len(seen) == 1
        generation, (added, removed) = seen[0]
        assert generation == 1
        assert added == ()
        assert set(before) - set(sub.result()) == set(removed)

    def test_callback_consumer_cannot_pull(self):
        service = registrar_service()
        feed = service.changefeed(on_event=lambda e: None)
        with pytest.raises(ChangefeedError):
            feed.next_event(timeout=0)
        with pytest.raises(ChangefeedError):
            feed.events()
        with pytest.raises(ChangefeedError):
            iter(feed).__next__()

    def test_close_detaches_and_unblocks(self):
        service = registrar_service()
        feed = service.changefeed()
        collected = []
        thread = threading.Thread(
            target=lambda: collected.extend(feed)
        )
        thread.start()
        service.apply(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
        feed.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert [e.generation for e in collected] == [1]
        assert feed.closed
        assert len(service.changefeeds) == 0
        # Closing twice is fine; next_event on a drained closed feed is None.
        feed.close()
        assert feed.next_event(timeout=0) is None

    def test_context_manager_closes(self):
        service = registrar_service()
        with service.changefeed() as feed:
            service.apply(
                DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
            )
            assert feed.next_event(timeout=1).generation == 1
        assert feed.closed

    def test_stats_surface(self):
        service = registrar_service()
        stats = service.stats()["changefeed"]
        assert stats["attached"] is False
        service.changefeed()
        service.apply(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
        stats = service.stats()["changefeed"]
        assert stats == {
            "attached": True,
            "consumers": 1,
            "events_published": 1,
            "callback_errors": 0,
            "overflows": 0,
            "drops": 0,
            "parks": 0,
            "retention": 256,
            "retained": 1,
            "floor": 0,
            "durable": False,
        }

    def test_callback_write_back_is_rejected(self):
        # The write lock is reentrant for its owner, so without a guard
        # a callback could start a nested commit and publish events out
        # of order mid-delivery.  The updater refuses instead.
        from repro.errors import PlanError

        service = registrar_service()
        feed = service.changefeed(on_event=lambda event: service.apply(
            InsertOp(".", "course", ("CS999", "Nested"))
        ))
        outcome = service.apply(
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
        )
        assert outcome.accepted  # the outer commit is unharmed
        assert feed.closed and isinstance(feed.error, PlanError)
        # No nested event was ever published.
        assert service.changefeeds.stats()["events_published"] == 1
        assert service.check_consistency() == []

    def test_lagging_pull_consumer_detached_at_queue_bound(self):
        service = registrar_service(changefeed_retention=2)
        # Pull, never drained; bound = 4.  A short block_timeout keeps
        # the block_writer grace period from slowing the test down.
        feed = service.changefeed(block_timeout=0.05)
        ops = [
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"),
            InsertOp("course[cno=CS650]/prereq", "course",
                     ("CS320", "Databases")),
        ]
        for _ in range(3):
            for op in ops:
                service.apply(op)
        assert feed.closed
        assert isinstance(feed.error, ChangefeedError)
        assert service.changefeeds.stats()["overflows"] == 1
        assert len(service.changefeeds) == 0
        # The backlog (up to the bound) stays drainable, and the
        # consumer can reattach from its last generation via replay.
        backlog = feed.events()
        assert len(backlog) == 4
        resumed = service.changefeed(since=backlog[-1].generation)
        assert [e.generation for e in resumed.events()] == [5, 6]

    def test_raising_callback_detaches_instead_of_failing_commit(self):
        service = registrar_service()
        healthy_seen = []

        def broken(event):
            raise RuntimeError("consumer bug")

        bad = service.changefeed(on_event=broken)
        good = service.changefeed(on_event=healthy_seen.append)
        # The commit itself must succeed — the consumer is the buggy
        # party, not the writer.
        outcome = service.apply(
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
        )
        assert outcome.accepted
        assert bad.closed
        assert isinstance(bad.error, RuntimeError)
        assert len(healthy_seen) == 1  # later consumers still served
        assert service.changefeeds.stats()["callback_errors"] == 1


# ---------------------------------------------------------------------------
# Replay: resume semantics and edge cases
# ---------------------------------------------------------------------------


class TestReplay:
    def _ops(self):
        # All four kinds; every op is accepted against the seed data
        # applied in this order.
        return [
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"),
            InsertOp("course[cno=CS650]/prereq", "course",
                     ("CS320", "Databases")),
            ReplaceOp("course[cno=CS650]/prereq/course[cno=CS320]",
                      "course", ("CS500", "Operating Systems")),
            BaseUpdateOp(ops=(
                ("insert", "course", ("CS901", "Seminar", "CS")),
            )),
        ]

    def test_resume_from_tail_replays_everything(self):
        service = registrar_service()
        # Attach at generation 0: retention covers the whole history.
        full = service.changefeed()
        for op in self._ops():
            service.apply(op)
        published = full.events()
        assert len(published) == len(self._ops())
        feed = service.changefeed(since=0)
        assert summarize(feed.events()) == summarize(published)
        # Replay precedes live delivery; new commits then flow.  (The
        # replace above left CS500 as the CS650 prerequisite.)
        service.apply(DeleteOp("course[cno=CS650]/prereq/course[cno=CS500]"))
        assert [e.reason for e in feed.events()] == ["delete"]

    def test_resume_from_head_replays_nothing(self):
        service = registrar_service()
        service.changefeed()
        for op in self._ops():
            service.apply(op)
        head = service.updater._version
        feed = service.changefeed(since=head)
        assert feed.events() == []

    def test_base_update_generations_are_increasing_not_dense(self):
        # A plan-committed base update burns two generations (the
        # propagation's own bump plus the commit's); the spec promises
        # strictly increasing generations, not dense ones.
        service = registrar_service()
        feed = service.changefeed()
        for op in self._ops():
            service.apply(op)
        generations = [e.generation for e in feed.events()]
        assert generations == sorted(set(generations))
        assert generations[-1] == service.updater._version

    def test_resume_mid_stream_gets_exact_suffix(self):
        service = registrar_service()
        full = service.changefeed()
        for op in self._ops():
            service.apply(op)
        all_events = full.events()
        for position, event in enumerate(all_events):
            feed = service.changefeed(since=event.generation)
            assert summarize(feed.events()) == summarize(
                all_events[position + 1:]
            )
            feed.close()

    def test_since_ahead_of_feed_raises(self):
        service = registrar_service()
        service.changefeed()
        with pytest.raises(ChangefeedError):
            service.changefeed(since=99)

    def test_failed_changefeed_call_leaves_no_side_effects(self):
        # A rejected since= must not switch on per-commit event
        # construction (hub attach + registry pin) for the service's
        # lifetime.
        service = registrar_service()
        with pytest.raises(ChangefeedError):
            service.changefeed(since=99)
        service.apply(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
        with pytest.raises(ReplayGapError):
            service.changefeed(since=0)  # floor is already 1: unattached
        assert service.updater._observers == []
        assert service.stats()["changefeed"]["attached"] is False
        # A successful call is what attaches.
        service.changefeed()
        assert service.stats()["changefeed"]["attached"] is True
        assert len(service.updater._observers) == 2  # registry pin + hub

    def test_rebuild_from_callback_is_rejected(self):
        from repro.errors import PlanError

        service = registrar_service()
        feed = service.changefeed(
            on_event=lambda event: service.updater.rebuild()
        )
        outcome = service.apply(
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
        )
        assert outcome.accepted
        assert feed.closed and isinstance(feed.error, PlanError)
        assert service.check_consistency() == []

    def test_since_older_than_retention_raises_gap(self):
        service = registrar_service(changefeed_retention=2)
        full = service.changefeed()
        for op in self._ops():
            service.apply(op)
        generations = [e.generation for e in full.events()]
        with pytest.raises(ReplayGapError) as info:
            service.changefeed(since=0)
        # The floor is the newest evicted generation...
        assert info.value.floor == generations[-3]
        assert info.value.since == 0
        # ...and is itself still resumable: exactly the retained 2 events.
        feed = service.changefeed(since=info.value.floor)
        assert [e.generation for e in feed.events()] == generations[-2:]

    def test_gap_at_exact_compaction_boundary(self):
        # Satellite of ISSUE 7: walk the resume point across the wrap
        # boundary of the bounded replay buffer one generation at a
        # time, and pin down the error payload a replica needs for
        # re-bootstrap (``oldest_available``).
        service = registrar_service(changefeed_retention=3)
        full = service.changefeed()
        cycle = [
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"),
            InsertOp("course[cno=CS650]/prereq", "course",
                     ("CS320", "Databases")),
        ]
        for op in cycle * 3:  # 6 commits >> retention of 3
            assert service.apply(op).accepted
        generations = [e.generation for e in full.events()]
        assert len(generations) == 6
        floor = generations[-4]  # newest evicted generation
        # One before the boundary: gap, typed, with the resume floor.
        with pytest.raises(ReplayGapError) as info:
            service.changefeed(since=floor - 1)
        assert info.value.since == floor - 1
        assert info.value.floor == floor
        assert info.value.oldest_available == floor
        # At the boundary: attaches gaplessly with the retained suffix.
        feed = service.changefeed(since=floor)
        assert [e.generation for e in feed.events()] == generations[-3:]
        # The hub agrees about what is retained.
        stats = service.stats()["changefeed"]
        assert stats["retained"] == 3
        assert stats["floor"] == floor

    def test_events_before_first_changefeed_are_not_retained(self):
        service = registrar_service()
        service.apply(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
        with pytest.raises(ReplayGapError):
            service.changefeed(since=0)
        assert service.changefeed(since=1).events() == []

    def test_replay_spans_batches_and_aborts(self):
        service = registrar_service()
        service.changefeed()
        service.apply(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
        plan = service.plan(InsertOp(
            "course[cno=CS650]/prereq", "course", ("CS320", "Databases")
        ))
        plan.abort()  # publishes nothing, burns no generation
        service.apply([  # coalesces to one event
            InsertOp("course[cno=CS650]/prereq", "course",
                     ("CS320", "Databases")),
            DeleteOp("course[cno=CS240]/prereq/course[cno=CS120]"),
        ])
        service.apply(DeleteOp("course[cno=NOPE]"))  # rejected: nothing
        flush_generation = service.updater._version
        feed = service.changefeed(since=0)
        assert [(e.generation, e.reason) for e in feed.events()] == [
            (1, "delete"),
            (flush_generation, "batch_flush"),
        ]

    def test_undo_publishes_like_any_base_update(self):
        service = registrar_service()
        feed = service.changefeed()
        outcome = service.apply(
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
        )
        service.undo(outcome)
        events = feed.events()
        assert [e.reason for e in events] == ["delete", "base_update"]
        assert all(not e.coarse for e in events)


# ---------------------------------------------------------------------------
# The acceptance property: resume-from-anywhere reconstructs everything
# ---------------------------------------------------------------------------


@st.composite
def registrar_streams(draw):
    courses = ("CS650", "CS320", "CS240", "CS700", "CS800")
    ops = []
    for position in range(draw(st.integers(min_value=1, max_value=6))):
        kind = draw(st.sampled_from(
            ("insert", "delete", "replace", "base", "batch", "abort")
        ))
        cno = draw(st.sampled_from(courses))
        other = draw(st.sampled_from(courses))
        insert = InsertOp(
            f"//course[cno={cno}]/prereq", "course",
            (other, f"Title {other}"),
        )
        delete = DeleteOp(f"//course[cno={cno}]/prereq/course")
        if kind == "insert":
            ops.append(insert)
        elif kind == "delete":
            ops.append(delete)
        elif kind == "replace":
            ops.append(ReplaceOp(
                f"//course[cno={cno}]/prereq/course", "course",
                (other, f"Title {other}"),
            ))
        elif kind == "base":
            ops.append(BaseUpdateOp(ops=(
                ("insert", "course", (f"X{cno}{position}", "Fresh", "CS")),
            )))
        elif kind == "batch":
            ops.append([insert, delete])
        else:
            ops.append(("abort", insert))
    return ops


@given(registrar_streams())
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_resume_from_every_generation_reconstructs_results(stream):
    """ISSUE 5 acceptance: for any op stream, a consumer resuming from
    every retained generation sees the exact missing event suffix, and
    folding the per-generation subscription deltas from its resume
    snapshot reconstructs the same final results as the gen-0 consumer."""
    service = registrar_service()
    subs = [service.subscribe(q) for q in REGISTRAR_QUERIES]

    results_at = {0: {s.id: s.result() for s in subs}}
    deltas_at = {}
    event_log = []

    def on_event(event):
        event_log.append(event)
        results_at[event.generation] = {s.id: s.result() for s in subs}
        deltas_at[event.generation] = {s.id: s.delta() for s in subs}

    service.changefeed(on_event=on_event)

    for item in stream:
        if isinstance(item, tuple) and item[0] == "abort":
            plan = service.plan(item[1])
            if plan.accepted:
                plan.abort()
        else:
            service.apply(item)

    final = {s.id: s.result() for s in subs}
    for sub in subs:
        fresh = tuple(sorted(service.xpath(sub.path).targets))
        assert final[sub.id] == fresh

    generations = [e.generation for e in event_log]
    for start, snapshot_gen in enumerate([0] + generations):
        feed = service.changefeed(since=snapshot_gen)
        replayed = feed.events()
        # Exactly the missing suffix, in order.
        assert summarize(replayed) == summarize(event_log[start:])
        # Folding the recorded deltas from the resume snapshot lands on
        # the gen-0 consumer's final state for every subscription.
        state = {
            sid: set(nodes)
            for sid, nodes in results_at[snapshot_gen].items()
        }
        for event in replayed:
            for sid, (added, removed) in deltas_at[event.generation].items():
                state[sid] -= set(removed)
                state[sid] |= set(added)
        for sub in subs:
            assert tuple(sorted(state[sub.id])) == final[sub.id], (
                f"resume from {snapshot_gen} drifted for {sub.path!r}"
            )
        feed.close()
    assert service.check_consistency() == []
