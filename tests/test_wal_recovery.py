"""Crash-point recovery tests for the durable changefeed log.

The acceptance property, stated once and tested three ways:

    For ANY prefix of the file-system operation history a durable
    writer produces — i.e. for a crash at any operation boundary, plus
    any partial final write — recovering the directory yields exactly
    the state of some committed prefix of the op stream: never torn,
    never inconsistent, never an error.

1. :class:`TestCrashPointSweep` enumerates *every* boundary of a
   200-op commit stream (the writer runs once under a
   :class:`~faults.RecordingFS`; each boundary is materialized into a
   fresh directory — no writer re-runs).
2. ``test_recovery_property`` lets Hypothesis pick both the op stream
   (insert/delete/replace/base/batch/abort) and the crash point.
3. :class:`TestKillNine` crashes a real subprocess writer with SIGKILL
   mid-stream and recovers in this process.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from faults import (
    CrashInjected,
    CrashPointFS,
    RecordingFS,
    kill_after_progress,
    materialize,
    spawn_writer,
)
from repro.errors import WalError
from repro.ops import BaseUpdateOp, DeleteOp, InsertOp, ReplaceOp
from repro.replica.fold import fold_event
from repro.service import ViewConfig, open_view
from repro.subscribe.delta import ViewEvent
from repro.wal import WriteAheadLog, decode_delta
from repro.workloads.registrar import build_registrar

WAL_CONFIG = dict(
    strict=False,
    side_effects="propagate",
    wal_segment_bytes=1024,      # force rotations inside the stream
    wal_checkpoint_every=10,     # force checkpoints + compaction too
    wal_fsync="batch",
)

COURSES = ("CS650", "CS320", "CS240", "CS700", "CS800")


def commit_stream(n: int) -> list:
    """A deterministic n-op mix touching every op kind.

    Entries are ops, lists of ops (batched apply), or ``("abort", op)``
    tuples (planned then aborted — must publish nothing).
    """
    stream = []
    for i in range(n):
        cno = COURSES[i % len(COURSES)]
        other = COURSES[(i + 1) % len(COURSES)]
        kind = i % 7
        if kind in (0, 3):
            stream.append(
                InsertOp(
                    f"//course[cno={cno}]/prereq",
                    "course",
                    (other, f"Title {other}"),
                )
            )
        elif kind in (1, 4):
            stream.append(DeleteOp(f"//course[cno={cno}]/prereq/course"))
        elif kind == 2:
            stream.append(
                ReplaceOp(
                    f"//course[cno={cno}]/prereq/course",
                    "course",
                    (other, f"Title {other}"),
                )
            )
        elif kind == 5:
            stream.append(
                BaseUpdateOp(
                    ops=(("insert", "course", (f"X{i}", "Fresh", "CS")),)
                )
            )
        else:
            stream.append(
                [
                    InsertOp(
                        f"//course[cno={cno}]/prereq",
                        "course",
                        (other, f"Title {other}"),
                    ),
                    DeleteOp(f"//course[cno={cno}]/prereq/course"),
                ]
            )
    return stream


def db_fingerprint(db) -> dict:
    """Row multisets per table (order-independent comparison)."""
    return {
        name: sorted(db.rows(name)) for name in db.table_names()
    }


def run_writer(stream, wal_dir, fs=None, committed=None) -> dict:
    """Apply ``stream`` to a durable registrar service.

    Populates and returns ``{generation: (digest, db_fingerprint)}`` —
    the at-rest state after boot and after *every logged event* (a
    batched apply logs one record per op, so mid-batch crash points are
    real boundaries too); recovery from any crash point must land
    exactly on one of these.  The per-generation states come from a
    shadow fold of the live changefeed — the same fold recovery itself
    replays.  Pass ``committed={}`` to keep the partial map when an
    injected crash aborts the run: every event staged before the crash
    is folded before the exception propagates.  (Same-run comparison
    also sidesteps the process-global fresh-value counter, which makes
    synthesized db values differ *between* runs.)
    """
    committed = {} if committed is None else committed
    # The boot state, computed without touching wal_dir: a crash during
    # the durable service's own boot recovers to exactly this.
    shadow_atg, shadow_db = build_registrar()
    plain = open_view(
        shadow_atg, shadow_db,
        config=ViewConfig(strict=False, side_effects="propagate"),
    )
    shadow = plain.store
    committed[0] = (shadow.digest(), db_fingerprint(shadow_db))

    atg, db = build_registrar()
    service = open_view(
        atg, db,
        config=ViewConfig(wal_dir=str(wal_dir), **WAL_CONFIG),
        wal_fs=fs,
    )
    feed = service.changefeed()

    def fold_pending():
        for event in feed.events():
            fold_event(shadow, event)
            if event.delta_r is not None:
                shadow_db.apply(event.delta_r)
            committed[event.generation] = (
                shadow.digest(), db_fingerprint(shadow_db),
            )

    def fold_tail_from_disk():
        # A crash inside the commit pipeline can leave records durable
        # in the log that never reached the fan-out phase (delivery to
        # consumers happens off the write lock), so the feed alone
        # under-covers the recoverable generations: fold the log tail.
        try:
            wal = WriteAheadLog(str(wal_dir), readonly=True)
        except WalError:
            return  # crashed before the directory became a log
        try:
            for generation, payload in wal.records_since(max(committed)):
                fold_event(shadow, ViewEvent.from_dict(payload["event"]))
                delta = decode_delta(payload.get("delta_r"))
                if delta is not None:
                    shadow_db.apply(delta)
                committed[generation] = (
                    shadow.digest(), db_fingerprint(shadow_db),
                )
        finally:
            wal.close()

    try:
        for entry in stream:
            if isinstance(entry, tuple) and entry[0] == "abort":
                plan = service.plan(entry[1])
                if plan.accepted:
                    plan.abort()
                continue
            service.apply(entry)
            fold_pending()
    except BaseException:
        fold_tail_from_disk()
        raise
    assert service.check_consistency() == []
    assert shadow.digest() == service.store.digest()
    feed.close()
    service.close()
    return committed


def assert_recovers_to_commit(wal_dir, committed) -> int:
    """Recover ``wal_dir`` and assert it equals some committed state."""
    atg, db = build_registrar()
    service = open_view(
        atg, db, config=ViewConfig(wal_dir=str(wal_dir), **WAL_CONFIG)
    )
    generation = service.stats()["generation"]
    assert generation in committed, (
        f"recovered to generation {generation}, which was never an "
        f"at-rest commit (have {sorted(committed)})"
    )
    digest, rows = committed[generation]
    assert service.store.digest() == digest
    assert db_fingerprint(service.db) == rows
    assert service.check_consistency() == []
    service.close()
    return generation


# ---------------------------------------------------------------------------
# The exhaustive boundary sweep
# ---------------------------------------------------------------------------


class TestCrashPointSweep:
    def test_every_boundary_of_a_200_op_stream(self, tmp_path):
        """One writer run; every fs-op boundary materialized + recovered.

        Also covers the torn-write variants: for each append boundary,
        the final write is additionally cut short at first/middle/last
        byte (a crash mid-``write(2)``).
        """
        stream = commit_stream(200)
        fs = RecordingFS(str(tmp_path / "writer"))
        committed = run_writer(stream, tmp_path / "writer", fs=fs)
        ops = fs.ops
        assert len(ops) > 200, "stream too small to be a real sweep"
        recovered_gens = set()
        scratch = tmp_path / "scratch"
        for boundary in range(len(ops) + 1):
            target = str(scratch / f"b{boundary}")
            materialize(ops[:boundary], target)
            recovered_gens.add(assert_recovers_to_commit(target, committed))
        # Torn final writes: only append/write_bytes can tear.
        for boundary in range(len(ops)):
            kind = ops[boundary][0]
            if kind not in ("append", "write_bytes"):
                continue
            data = ops[boundary][2]
            cuts = {1, len(data) // 2, max(1, len(data) - 1)}
            for cut in sorted(cuts):
                if cut >= len(data):
                    continue
                target = str(scratch / f"b{boundary}p{cut}")
                materialize(
                    ops[: boundary + 1], target, partial_tail=cut
                )
                recovered_gens.add(
                    assert_recovers_to_commit(target, committed)
                )
        # The sweep is meaningful: recovery landed on many different
        # generations (not always the same checkpoint), including the
        # final one (the complete-history boundary).
        assert len(recovered_gens) > 10
        assert max(committed) in recovered_gens

    def test_crash_point_fs_raises_and_directory_recovers(self, tmp_path):
        """The in-process injector: die AT an op, then recover the dir.

        Complements the sweep (which reproduces the state *before* an
        op): here the writer actually raises mid-commit, exercising the
        service's unwind path, and the directory left behind must still
        recover.  A handful of probe points across the run suffice —
        the sweep owns exhaustiveness.
        """
        stream = commit_stream(60)
        counter = CrashPointFS(str(tmp_path / "count"))
        run_writer(stream, tmp_path / "count", fs=counter)
        total = len(counter.ops_seen)
        probes = sorted({1, 2, total // 4, total // 2, total - 1, total})
        for n in probes:
            wal_dir = tmp_path / f"crash{n}"
            fs = CrashPointFS(str(wal_dir), crash_at=n)
            committed: dict = {}
            with pytest.raises(CrashInjected):
                run_writer(stream, wal_dir, fs=fs, committed=committed)
            assert_recovers_to_commit(wal_dir, committed)


# ---------------------------------------------------------------------------
# The Hypothesis property
# ---------------------------------------------------------------------------


@st.composite
def crash_scenarios(draw):
    """An arbitrary op stream plus an arbitrary crash fraction."""
    n_ops = draw(st.integers(min_value=1, max_value=8))
    entries = []
    for index in range(n_ops):
        cno = draw(st.sampled_from(COURSES))
        other = draw(st.sampled_from(COURSES))
        kind = draw(
            st.sampled_from(
                ("insert", "delete", "replace", "base", "batch", "abort")
            )
        )
        insert = InsertOp(
            f"//course[cno={cno}]/prereq", "course", (other, f"Title {other}")
        )
        if kind == "insert":
            entries.append(insert)
        elif kind == "delete":
            entries.append(DeleteOp(f"//course[cno={cno}]/prereq/course"))
        elif kind == "replace":
            entries.append(
                ReplaceOp(
                    f"//course[cno={cno}]/prereq/course",
                    "course",
                    (other, f"Title {other}"),
                )
            )
        elif kind == "base":
            entries.append(
                BaseUpdateOp(
                    ops=(
                        ("insert", "course", (f"X{cno}{index}", "Fresh", "CS")),
                    )
                )
            )
        elif kind == "batch":
            entries.append(
                [insert, DeleteOp(f"//course[cno={cno}]/prereq/course")]
            )
        else:
            entries.append(("abort", insert))
    fraction = draw(st.floats(min_value=0.0, max_value=1.0))
    return entries, fraction


@given(crash_scenarios())
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_recovery_property(tmp_path_factory, scenario):
    """Arbitrary stream × arbitrary crash point → some committed state."""
    stream, fraction = scenario
    base = tmp_path_factory.mktemp("walprop")
    fs = RecordingFS(str(base / "writer"))
    committed = run_writer(stream, base / "writer", fs=fs)
    boundary = round(fraction * len(fs.ops))
    target = str(base / "crash")
    materialize(fs.ops[:boundary], target)
    assert_recovers_to_commit(target, committed)


# ---------------------------------------------------------------------------
# SIGKILL, for real
# ---------------------------------------------------------------------------


class TestKillNine:
    @pytest.mark.parametrize("fsync", ["batch", "always"])
    def test_subprocess_writer_killed_mid_stream(self, tmp_path, fsync):
        wal_dir = str(tmp_path / "wal")
        proc = spawn_writer(wal_dir, fsync=fsync)
        try:
            acked = kill_after_progress(proc, commits=20)
        finally:
            if proc.poll() is None:  # pragma: no cover - defensive
                proc.kill()
                proc.wait(timeout=30)
        # 20 applies were acknowledged; the generation they reached is
        # lower (the writer's delete-by-path ops are sometimes rejected
        # under the abort policy), but progress must be real.
        assert acked > 0, proc.stderr.read()
        # A *process* crash loses nothing that reached write(2): the
        # page cache survives, so recovery must reach every
        # acknowledged commit regardless of fsync policy.
        atg, db = build_registrar()
        service = open_view(
            atg, db,
            config=ViewConfig(
                strict=False, wal_dir=wal_dir, wal_checkpoint_every=16
            ),
        )
        assert service.stats()["generation"] >= acked
        assert service.check_consistency() == []
        # The recovered service is a fully functional writer.
        out = service.apply(
            InsertOp("//course[cno=CS650]/prereq", "course", ("CS901", "N"))
        )
        assert out.accepted
        assert service.check_consistency() == []
        service.close()
        # Recovery is idempotent: a second recovery sees the new commit.
        atg2, db2 = build_registrar()
        again = open_view(
            atg2, db2,
            config=ViewConfig(
                strict=False, wal_dir=wal_dir, wal_checkpoint_every=16
            ),
        )
        assert again.stats()["generation"] == service.stats()["generation"]
        assert again.store.digest() == service.store.digest()
        again.close()
