"""End-to-end tests for the XMLViewUpdater framework (paper Fig. 3)."""

import pytest

from repro.atg.publisher import publish_tree
from repro.core.updater import SideEffectPolicy, XMLViewUpdater
from repro.errors import (
    SideEffectError,
    UpdateRejectedError,
    ValidationError,
)
from repro.xmltree.tree import tree_equal
from repro.ops import DeleteOp, InsertOp


def assert_view_equals_republish(updater):
    """The fundamental invariant: ΔX(T) = σ(ΔR(I))."""
    problems = updater.check_consistency()
    assert problems == [], problems


class TestDeletion:
    def test_delete_prereq_edge(self, registrar_updater):
        u = registrar_updater
        out = u.apply_op(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
        assert out.accepted
        assert [op.row for op in out.delta_r] == [("CS650", "CS320")]
        assert_view_equals_republish(u)
        tree = u.xml_tree()
        cs650 = [
            n for n in tree.children if n.sem[0] == "CS650"
        ][0]
        prereq = cs650.child_by_tag("prereq")
        assert prereq.children == []

    def test_delete_updates_xml_everywhere(self, registrar_updater_propagate):
        """Deleting CS240 under CS320 affects every CS320 occurrence."""
        u = registrar_updater_propagate
        out = u.apply_op(DeleteOp("//course[cno=CS320]/prereq/course[cno=CS240]"))
        assert out.accepted
        tree = u.xml_tree()
        for node in tree.iter():
            if node.tag == "course" and node.sem[0] == "CS320":
                assert node.child_by_tag("prereq").children == []
        assert_view_equals_republish(u)

    def test_delete_student_from_one_course(self, registrar_updater):
        u = registrar_updater
        out = u.apply_op(DeleteOp("//course[cno=CS320]//student[ssn=S02]"))
        assert out.accepted
        # Base deletion removes the enrollment, not the student.
        assert [op.relation for op in out.delta_r] == ["enroll"]
        assert u.db.table("student").get(("S02",)) is not None
        assert_view_equals_republish(u)

    def test_delete_side_effect_aborts(self, registrar_updater):
        with pytest.raises(SideEffectError):
            registrar_updater.apply_op(DeleteOp(
                "course[cno=CS320]/prereq/course[cno=CS240]"
            ))

    def test_delete_side_effect_propagates(self, registrar_updater_propagate):
        u = registrar_updater_propagate
        out = u.apply_op(DeleteOp("course[cno=CS320]/prereq/course[cno=CS240]"))
        assert out.accepted
        assert out.side_effects
        assert_view_equals_republish(u)

    def test_delete_nonexistent_rejected(self, registrar_updater):
        with pytest.raises(UpdateRejectedError):
            registrar_updater.apply_op(DeleteOp("course[cno=NOPE]"))

    def test_delete_invalid_target_rejected(self, registrar_updater):
        with pytest.raises(ValidationError):
            registrar_updater.apply_op(DeleteOp("course/cno"))

    def test_delete_timings_recorded(self, registrar_updater):
        out = registrar_updater.apply_op(DeleteOp(
            "course[cno=CS650]/prereq/course[cno=CS320]"
        ))
        for phase in ("validate", "xpath", "translate_v", "translate_r",
                      "apply", "maintain"):
            assert phase in out.timings
        assert out.total_time > 0
        assert out.foreground_time <= out.total_time


class TestInsertion:
    def test_insert_existing_course(self, registrar_updater):
        u = registrar_updater
        out = u.apply_op(InsertOp(
            "course[cno=CS650]/prereq", "course",
            ("CS500", "Operating Systems"),
        ))
        assert out.accepted
        assert [op.row for op in out.delta_r] == [("CS650", "CS500")]
        assert_view_equals_republish(u)

    def test_insert_new_course_avoids_root_side_effect(self, registrar_updater):
        u = registrar_updater
        out = u.apply_op(InsertOp("//course[cno=CS240]/prereq", "course", ("CS101", "Intro")))
        assert out.accepted
        course_row = u.db.table("course").get(("CS101",))
        assert course_row is not None
        assert course_row[2] != "CS"  # dept forced away from 'CS'
        assert_view_equals_republish(u)

    def test_insert_at_root_derives_dept(self, registrar_updater):
        u = registrar_updater
        out = u.apply_op(InsertOp(".", "course", ("CS700", "Theory")))
        assert out.accepted
        assert u.db.table("course").get(("CS700",)) == ("CS700", "Theory", "CS")
        assert_view_equals_republish(u)

    def test_insert_rightmost_child(self, registrar_updater):
        u = registrar_updater
        u.apply_op(InsertOp(".", "course", ("CS700", "Theory")))
        tree = u.xml_tree()
        assert tree.children[-1].sem == ("CS700", "Theory")

    def test_insert_side_effect_aborts(self, registrar_updater):
        with pytest.raises(SideEffectError):
            registrar_updater.apply_op(InsertOp(
                "course[cno=CS650]//course[cno=CS320]/prereq",
                "course",
                ("CS500", "Operating Systems"),
            ))

    def test_insert_side_effect_propagates_everywhere(
        self, registrar_updater_propagate
    ):
        u = registrar_updater_propagate
        out = u.apply_op(InsertOp(
            "course[cno=CS650]//course[cno=CS320]/prereq",
            "course",
            ("CS500", "Operating Systems"),
        ))
        assert out.accepted
        tree = u.xml_tree()
        for node in tree.iter():
            if node.tag == "course" and node.sem[0] == "CS320":
                prereq_children = {
                    c.sem[0] for c in node.child_by_tag("prereq").children
                }
                assert "CS500" in prereq_children
        assert_view_equals_republish(u)

    def test_insert_cycle_rejected(self, registrar):
        """CS320 into the prereq of its own prerequisite CS240."""
        atg, db = registrar
        u = XMLViewUpdater(
            atg, db, side_effect_policy=SideEffectPolicy.PROPAGATE
        )
        with pytest.raises(UpdateRejectedError, match="cycle"):
            u.apply_op(InsertOp(
                "//course[cno=CS240]/prereq",
                "course",
                ("CS320", "Databases"),
            ))
        assert_view_equals_republish(u)

    def test_insert_invalid_type_rejected(self, registrar_updater):
        with pytest.raises(ValidationError):
            registrar_updater.apply_op(InsertOp(
                "course[cno=CS650]/prereq", "student", ("S09", "X")
            ))

    def test_insert_selects_nothing_rejected(self, registrar_updater):
        with pytest.raises(UpdateRejectedError):
            registrar_updater.apply_op(InsertOp(
                "course[cno=NOPE]/prereq", "course", ("CS1", "x")
            ))

    def test_insert_conflicting_existing_row_rejected(self, registrar_updater):
        """Inserting (CS240, WRONG-TITLE): the course table already binds
        CS240 to a different title, so the target is not derivable."""
        with pytest.raises(UpdateRejectedError):
            registrar_updater.apply_op(InsertOp(
                "course[cno=CS650]/prereq", "course", ("CS240", "WRONG")
            ))

    def test_insert_set_semantics_noop(self, registrar_updater):
        u = registrar_updater
        out = u.apply_op(InsertOp(
            "//course[cno=CS320]/prereq", "course",
            ("CS240", "Data Structures"),
        ))
        assert out.accepted
        assert len(out.delta_r) == 0  # edge already exists
        assert_view_equals_republish(u)

    def test_insert_student(self, registrar_updater):
        u = registrar_updater
        out = u.apply_op(InsertOp(
            "course[cno=CS650]/takenBy", "student", ("S09", "Barbara")
        ))
        assert out.accepted
        relations = sorted(op.relation for op in out.delta_r)
        assert relations == ["enroll", "student"]
        assert_view_equals_republish(u)

    def test_insert_existing_student_only_enrolls(self, registrar_updater):
        u = registrar_updater
        out = u.apply_op(InsertOp(
            "course[cno=CS650]/takenBy", "student", ("S03", "Edsger")
        ))
        assert out.accepted
        assert [op.relation for op in out.delta_r] == ["enroll"]
        assert_view_equals_republish(u)


class TestSequences:
    def test_insert_then_delete_roundtrip(self, registrar_updater):
        u = registrar_updater
        before = u.xml_tree()
        u.apply_op(InsertOp("course[cno=CS650]/prereq", "course", ("CS500", "Operating Systems")))
        u.apply_op(DeleteOp("course[cno=CS650]/prereq/course[cno=CS500]"))
        assert tree_equal(u.xml_tree(), before)
        assert_view_equals_republish(u)

    def test_many_sequential_updates(self, registrar_updater_propagate):
        u = registrar_updater_propagate
        u.apply_op(InsertOp(".", "course", ("CS700", "Theory")))
        u.apply_op(InsertOp("course[cno=CS700]/prereq", "course", ("CS240", "Data Structures")))
        u.apply_op(InsertOp("course[cno=CS700]/takenBy", "student", ("S02", "Grace")))
        u.apply_op(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
        u.apply_op(DeleteOp("//student[ssn=S01]"))
        assert_view_equals_republish(u)

    def test_xml_matches_tree_publishing_after_updates(
        self, registrar_updater_propagate
    ):
        u = registrar_updater_propagate
        u.apply_op(InsertOp(".", "course", ("CS700", "Theory")))
        u.apply_op(DeleteOp("//course[cno=CS240]"))
        direct = publish_tree(u.atg, u.db)
        assert tree_equal(u.xml_tree(), direct)


class TestEvaluateOnly:
    def test_evaluate_xpath_does_not_mutate(self, registrar_updater):
        u = registrar_updater
        before = u.store.num_nodes
        result = u.evaluate_xpath("//course")
        assert len(result.targets) == 4
        assert u.store.num_nodes == before

    def test_rebuild(self, registrar_updater):
        u = registrar_updater
        u.apply_op(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
        u.rebuild()
        assert_view_equals_republish(u)


class TestBOMDomain:
    def test_publish_and_query(self, bom):
        atg, db = bom
        updater = XMLViewUpdater(atg, db)
        result = updater.evaluate_xpath("//part")
        assert len(result.targets) > 5
        assert updater.check_consistency() == []

    def test_component_shared(self, bom):
        atg, db = bom
        updater = XMLViewUpdater(atg, db)
        assert updater.store.sharing_rate() > 0

    def test_update_cycle(self, bom):
        atg, db = bom
        updater = XMLViewUpdater(
            atg, db, side_effect_policy=SideEffectPolicy.PROPAGATE
        )
        part = next(
            n for n in updater.store.nodes()
            if updater.store.type_of(n) == "part"
        )
        pid = updater.store.sem_of(part)[0]
        out = updater.apply_op(InsertOp(
            f"//part[pid={pid}]/components", "part", ("P9999", "new-part")
        ))
        assert out.accepted
        assert updater.check_consistency() == []
        out2 = updater.apply_op(DeleteOp(f"//part[pid={pid}]/components/part[pid=P9999]"))
        assert out2.accepted
        assert updater.check_consistency() == []
