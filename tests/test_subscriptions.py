"""Tests for the ΔV-driven subscription engine (``service.subscribe``).

The acceptance contract: after *every* committed operation — single
ops of every kind, batched lists, batch context managers, aborted
plans, rejected ops, undo — every active subscription's ``result()``
equals a fresh ``service.xpath()`` evaluation of the same path, while
the per-step dependency analysis provably skips (or suffix-restarts)
maintenance for unaffected queries.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ops import BaseUpdateOp, DeleteOp, InsertOp, ReplaceOp
from repro.service import ViewConfig, open_view
from repro.subscribe import (
    EdgeRecord,
    ViewEvent,
    first_affected_step,
    profile_query,
)
from repro.subscribe.deps import ANY_EDGE
from repro.workloads import REGISTRAR_QUERIES, make_query_set, make_workload
from repro.workloads.registrar import build_registrar
from repro.workloads.synthetic import SyntheticConfig, build_synthetic
from repro.xpath.parser import parse_xpath


def registrar_service(**config):
    atg, db = build_registrar()
    config.setdefault("side_effects", "propagate")
    config.setdefault("strict", False)
    return open_view(atg, db, config=ViewConfig(**config))


def synthetic_service(n_c=90, seed=5, **config):
    dataset = build_synthetic(SyntheticConfig(n_c=n_c, seed=seed))
    config.setdefault("side_effects", "propagate")
    config.setdefault("strict", False)
    service = open_view(dataset.atg, dataset.db, config=ViewConfig(**config))
    return service, dataset


def assert_current(service, subs, tag=""):
    """Every subscription equals a fresh evaluation, right now."""
    for sub in subs:
        fresh = tuple(sorted(service.xpath(sub.path).targets))
        assert sub.result() == fresh, (
            f"{tag}: subscription {sub.path!r} drifted: "
            f"{sub.result()} != fresh {fresh}"
        )


# ---------------------------------------------------------------------------
# Dependency extraction and event pruning (unit level)
# ---------------------------------------------------------------------------


class TestDependencyAnalysis:
    def test_anchored_child_path_is_prunable(self):
        profile = profile_query(
            parse_xpath("course[cno=CS650]/prereq/course"), "db"
        )
        assert profile.prunable
        # Step 0 only feels (db -> course) edges.
        assert {(p.parent, p.child) for p in profile.per_step[0]} == {
            ("db", "course")
        }
        # The value filter feels (course -> cno) edges with value CS650.
        [pattern] = profile.per_step[1]
        assert pattern.child == "cno"
        assert pattern.values == frozenset({"CS650"})

    def test_descendant_steps_depend_on_their_region(self):
        # ``//`` steps match any edge type, but only through a parent
        # the cached region already contains.
        profile = profile_query(parse_xpath("course//student"), "db")
        [pattern] = profile.per_step[1]
        assert pattern.parent is None and pattern.child is None
        assert pattern.in_region

    def test_wildcard_steps_depend_on_their_context(self):
        profile = profile_query(parse_xpath("*/prereq"), "db")
        [pattern] = profile.per_step[0]
        assert pattern.child is None and pattern.in_context

    def test_filter_path_wildcards_are_never_prunable(self):
        profile = profile_query(parse_xpath("course[.//project]"), "db")
        assert not profile.prunable
        assert any(ANY_EDGE in deps for deps in profile.per_step)

    def test_label_test_and_own_value_never_invalidate(self):
        # label() and the context node's own value are immutable.
        profile = profile_query(
            parse_xpath("course[label()=course]"), "db"
        )
        assert profile.per_step[1] == ()

    def _event(self, *edges):
        return ViewEvent(generation=1, edges=[
            EdgeRecord("delete", p, c, 0, 1, child_value=v)
            for p, c, v in edges
        ])

    def test_unrelated_edge_is_skipped(self):
        profile = profile_query(
            parse_xpath("course[cno=CS650]/prereq/course"), "db"
        )
        event = self._event(("takenBy", "student", None))
        assert first_affected_step(profile, event) is None

    def test_value_anchor_prunes_other_values(self):
        profile = profile_query(
            parse_xpath("course[cno=CS650]/prereq/course"), "db"
        )
        other = self._event(("course", "cno", "CS240"))
        assert first_affected_step(profile, other) is None
        hit = self._event(("course", "cno", "CS650"))
        assert first_affected_step(profile, hit) == 1
        unknown = self._event(("course", "cno", None))
        assert first_affected_step(profile, unknown) == 1  # conservative

    def test_suffix_restart_index(self):
        profile = profile_query(
            parse_xpath("course[cno=CS650]/prereq/course"), "db"
        )
        # A (prereq -> course) change only affects the last step: the
        # cached contexts up to the prereq level stay valid.
        event = self._event(("prereq", "course", None))
        assert first_affected_step(profile, event) == 3

    def test_coarse_event_invalidates_everything(self):
        profile = profile_query(parse_xpath("course"), "db")
        event = ViewEvent(generation=1, coarse=True)
        assert first_affected_step(profile, event) == 0

    def test_empty_event_touches_nothing(self):
        profile = profile_query(parse_xpath("//course"), "db")
        assert first_affected_step(profile, ViewEvent(generation=1)) is None


# ---------------------------------------------------------------------------
# Registrar: every op kind, plans, batches, undo
# ---------------------------------------------------------------------------


class TestRegistrarEquivalence:
    def test_mixed_stream_keeps_every_subscription_current(self):
        service = registrar_service()
        subs = [service.subscribe(q) for q in REGISTRAR_QUERIES]
        assert_current(service, subs, "eager initial evaluation")
        stream = [
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"),
            InsertOp("course[cno=CS650]/prereq", "course",
                     ("CS500", "Operating Systems")),
            ReplaceOp("course[cno=CS650]/prereq/course[cno=CS500]",
                      "course", ("CS320", "Databases")),
            DeleteOp("course[cno=NOPE]"),  # rejected: no event
            BaseUpdateOp(ops=(
                ("insert", "course", ("CS777", "Compilers", "CS")),
            )),
            InsertOp(".", "course", ("CS700", "Theory")),
            DeleteOp("//course[cno=CS240]/project"),  # rejected by DTD? no: selects none
        ]
        undoable = []
        for op in stream:
            outcome = service.apply(op)
            if outcome.accepted:
                undoable.append(outcome)
            assert_current(service, subs, f"after {op.kind}")
        for outcome in reversed(undoable):
            if outcome.delta_r is None or not len(outcome.delta_r.ops):
                continue
            service.undo(outcome)
            assert_current(service, subs, "after undo")
        assert service.check_consistency() == []

    def test_batched_list_and_context_manager(self):
        service = registrar_service()
        subs = [service.subscribe(q) for q in REGISTRAR_QUERIES]
        service.apply([
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"),
            InsertOp(".", "course", ("CS700", "Theory")),
        ])
        assert_current(service, subs, "after batched list")
        with service.batch() as batch:
            batch.apply(InsertOp(".", "course", ("CS800", "Quantum")))
            # Mid-batch reads fall back to a full re-evaluation (the
            # generation tag mismatches while maintenance is pending).
            assert_current(service, subs, "mid-batch")
            batch.apply(DeleteOp("course[cno=CS800]"))
        assert_current(service, subs, "after batch flush")
        assert service.check_consistency() == []

    def test_aborted_and_rejected_plans_change_nothing(self):
        service = registrar_service()
        subs = [service.subscribe(q) for q in REGISTRAR_QUERIES]
        before = [sub.result() for sub in subs]
        generations = [sub.generation for sub in subs]
        service.plan(InsertOp(".", "course", ("CS900", "X"))).abort()
        plan = service.plan(DeleteOp("course[cno=NOPE]"))
        assert not plan.accepted
        assert [sub.result() for sub in subs] == before
        assert [sub.generation for sub in subs] == generations
        assert_current(service, subs, "after abort")

    def test_plan_commit_notifies(self):
        service = registrar_service()
        subs = [service.subscribe(q) for q in REGISTRAR_QUERIES]
        plan = service.plan(
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
        )
        plan.commit()
        assert_current(service, subs, "after plan commit")

    def test_unrelated_ops_are_skipped_not_reevaluated(self):
        service = registrar_service()
        sub = service.subscribe("course[cno=CS240]/takenBy/student")
        service.apply(
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
        )
        assert sub.stats["skips"] == 1
        assert sub.stats["full_refreshes"] == 0
        assert sub.stats["suffix_refreshes"] == 0
        # ...and the skip was sound:
        assert_current(service, [sub], "after skipped op")

    def test_suffix_restart_used_for_downstream_changes(self):
        service = registrar_service()
        sub = service.subscribe("course[cno=CS650]/prereq/course")
        service.apply(
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
        )
        assert sub.stats["suffix_refreshes"] == 1
        assert sub.stats["full_refreshes"] == 0
        assert_current(service, [sub], "after suffix refresh")

    def test_close_stops_maintenance(self):
        service = registrar_service()
        sub = service.subscribe("//course")
        sub.close()
        assert not sub.active
        assert len(service.subscriptions) == 0
        service.apply(
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
        )
        assert sub.stats["full_refreshes"] == 0
        sub.close()  # idempotent

    def test_observer_hooked_lazily_and_unhooked_on_last_close(self):
        """Services that never subscribe (or no longer have subscribers)
        must not pay the commit-event construction cost."""
        service = registrar_service()
        assert service.updater._observers == []
        first = service.subscribe("//course")
        second = service.subscribe("course[cno=CS240]")
        assert len(service.updater._observers) == 1  # one registry hook
        first.close()
        assert len(service.updater._observers) == 1
        second.close()
        assert service.updater._observers == []
        # Re-subscribing re-hooks and stays correct.
        again = service.subscribe("//course")
        service.apply(
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
        )
        assert again.result() == tuple(
            sorted(service.xpath(again.path).targets)
        )

    def test_stats_surface(self):
        service = registrar_service()
        service.subscribe("//course")
        service.apply(
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
        )
        stats = service.stats()["subscriptions"]
        assert stats["subscriptions"] == 1
        assert stats["events_processed"] == 1
        # Leading-// queries consume the closure pair-delta now, so a
        # structural delete no longer costs a full re-eval; this event
        # also touches the course label step, so it lands in the
        # suffix branch of the patch path.
        assert stats["full_refreshes"] == 0
        assert stats["suffix_refreshes"] == 1

    def test_closure_consumer_counting(self):
        """Only leading-``//`` subscriptions turn on auto pair capture."""
        service = registrar_service()
        updater = service.updater
        assert updater.closure_consumers == 0
        anchored = service.subscribe("course[cno=CS240]")
        assert updater.closure_consumers == 0
        assert not updater._capturing_pairs()
        rooted = service.subscribe("//student")
        assert updater.closure_consumers == 1
        assert updater._capturing_pairs()
        rooted.close()
        assert updater.closure_consumers == 0
        assert not updater._capturing_pairs()
        anchored.close()

    def test_unmatched_insert_is_patched_not_reevaluated(self):
        """A structural insert that cannot produce result nodes is
        absorbed by the closure pair-delta: no re-evaluation at all.
        (Before closure patches, every structural op forced a full
        re-eval of leading-``//`` queries — their region depends on
        every edge under the root.)"""
        service = registrar_service()
        sub = service.subscribe("//student")
        baseline = sub.result()
        service.apply(InsertOp(".", "course", ("CS700", "Theory")))
        assert sub.stats["closure_patches"] == 1
        assert sub.stats["full_refreshes"] == 0
        assert sub.stats["suffix_refreshes"] == 0
        assert sub.result() == baseline
        assert_current(service, [sub], "after non-student insert")

    def test_gc_delete_is_patched_not_reevaluated(self):
        """Garbage-collected nodes are shed from the cached contexts
        straight from the closure delta's removed pairs."""
        service = registrar_service()
        service.apply(InsertOp(".", "course", ("CS700", "Theory")))
        sub = service.subscribe("//student")
        service.apply(DeleteOp("course[cno=CS700]"))
        assert sub.stats["closure_patches"] == 1
        assert sub.stats["full_refreshes"] == 0
        assert_current(service, [sub], "after GC delete")

    def test_structural_stream_never_fully_reevaluates(self):
        """Re-evaluation count over a mixed structural stream: every
        event is either skipped, patched from the closure delta, or at
        worst suffix-refreshed — never a from-the-root re-eval."""
        service = registrar_service()
        sub = service.subscribe("//student")
        stream = [
            InsertOp(".", "course", ("CS700", "Theory")),
            InsertOp("course[cno=CS650]/prereq", "course",
                     ("CS500", "Operating Systems")),
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS500]"),
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"),
            DeleteOp("course[cno=CS700]"),
        ]
        for op in stream:
            outcome = service.apply(op)
            assert outcome.accepted
            assert_current(service, [sub], f"after {op.kind}")
        assert sub.stats["full_refreshes"] == 0
        assert sub.stats["closure_patches"] >= 2
        handled = (
            sub.stats["skips"]
            + sub.stats["closure_patches"]
            + sub.stats["suffix_refreshes"]
        )
        assert handled == len(stream)
        assert service.stats()["subscriptions"]["events_processed"] == len(
            stream
        )

    def test_student_insert_stays_current(self):
        """Ops that add result nodes via a matching deeper step leave
        the patch path (the new nodes' own edges hit step >= 1) and
        fall back to a sound full re-eval."""
        service = registrar_service()
        sub = service.subscribe("//student")
        before = sub.result()
        service.apply(
            InsertOp("course[cno=CS240]/takenBy", "student", ("999", "Zed"))
        )
        assert sub.result() != before
        assert sub.stats["full_refreshes"] == 1
        assert_current(service, [sub], "after student insert")

    def test_stats_stay_monotonic_after_close(self):
        """Regression: closing a subscription used to subtract its
        tallies from the registry totals, making deltas go negative."""
        service = registrar_service()
        sub = service.subscribe("//course")
        service.apply(
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
        )
        before = service.subscriptions.stats()["suffix_refreshes"]
        assert before == 1
        sub.close()
        assert service.subscriptions.stats()["suffix_refreshes"] == before


# ---------------------------------------------------------------------------
# Synthetic DAG: workload streams of every kind, both backends
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["bitset", "sets"])
def test_synthetic_workload_stream_equivalence(backend):
    service, dataset = synthetic_service(index_backend=backend)
    subs = [service.subscribe(q) for q in make_query_set(dataset, count=10)]
    assert_current(service, subs, "initial")
    ops = []
    for cls in ("W1", "W2", "W3"):
        ops.extend(make_workload(dataset, "delete", cls, count=2))
        ops.extend(make_workload(
            dataset, "insert", cls, count=2, new_key_fraction=0.0
        ))
    ops.extend(make_workload(
        dataset, "replace", "W2", count=2, new_key_fraction=0.0
    ))
    undoable = []
    for op in ops:
        outcome = service.apply(op)
        if outcome.accepted:
            undoable.append(outcome)
        assert_current(service, subs, f"after {op.kind} {op.path}")
    assert undoable, "stream should commit at least one op"
    service.undo(undoable[-1])
    assert_current(service, subs, "after undo")
    assert service.check_consistency() == []
    # The anchored queries must actually have skipped unrelated ops —
    # otherwise the engine degrades to evaluate-per-op silently.
    stats = service.subscriptions.stats()
    assert stats["skips"] > 0


def test_synthetic_batched_sessions_equivalence():
    service, dataset = synthetic_service()
    subs = [service.subscribe(q) for q in make_query_set(dataset, count=8)]
    deletes = make_workload(dataset, "delete", "W2", count=3)
    inserts = make_workload(
        dataset, "insert", "W2", count=3, new_key_fraction=0.0
    )
    # Interleave inside one session: one flush, one coalesced event.
    runs_before = service.maintenance_runs
    with service.batch() as batch:
        for delete_op, insert_op in zip(deletes, inserts):
            batch.apply(delete_op)
            batch.apply(insert_op)
    assert service.maintenance_runs - runs_before == 1
    assert_current(service, subs, "after interleaved batch")
    assert service.check_consistency() == []


# ---------------------------------------------------------------------------
# Property-based: random op streams never desynchronize a subscription
# ---------------------------------------------------------------------------


@st.composite
def registrar_streams(draw):
    courses = ("CS650", "CS320", "CS240", "CS700", "CS800")
    ops = []
    for position in range(draw(st.integers(min_value=1, max_value=6))):
        kind = draw(st.sampled_from(("insert", "delete", "replace", "base")))
        cno = draw(st.sampled_from(courses))
        other = draw(st.sampled_from(courses))
        if kind == "insert":
            ops.append(InsertOp(
                f"//course[cno={cno}]/prereq", "course",
                (other, f"Title {other}"),
            ))
        elif kind == "delete":
            ops.append(DeleteOp(f"//course[cno={cno}]/prereq/course"))
        elif kind == "replace":
            ops.append(ReplaceOp(
                f"//course[cno={cno}]/prereq/course", "course",
                (other, f"Title {other}"),
            ))
        else:
            ops.append(BaseUpdateOp(ops=(
                ("insert", "course", (f"X{cno}{position}", "Fresh", "CS")),
            )))
    return ops


@given(registrar_streams(), st.booleans())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_streams_keep_subscriptions_current(stream, batched):
    service = registrar_service()
    subs = [service.subscribe(q) for q in REGISTRAR_QUERIES]
    batchable = [op for op in stream if not isinstance(op, BaseUpdateOp)]
    if batched and len(batchable) >= 2:
        try:
            service.apply(batchable)
        except Exception:
            pass  # rejected mid-batch under strict=False cannot raise,
            # but keep the property total
        assert_current(service, subs, "after random batch")
    else:
        for op in stream:
            service.apply(op)
            assert_current(service, subs, "after random op")
    assert service.check_consistency() == []


# ---------------------------------------------------------------------------
# Result deltas: (added, removed) per commit
# ---------------------------------------------------------------------------


def assert_deltas_compose(service, subs, previous, tag=""):
    """After one apply: every subscription's delta turns its previous
    result into its current one, and matches a fresh-evaluation diff."""
    for sub in subs:
        before = previous[sub.id]
        added, removed = sub.delta()
        now = set(sub.result())
        fresh = set(service.xpath(sub.path).targets)
        assert now == fresh, f"{tag}: {sub.path!r} drifted"
        if sub.generation == previous["generation"]:
            # No commit reached this subscription: nothing changed.
            assert now == before, f"{tag}: {sub.path!r} moved without event"
        else:
            assert set(removed) <= before, f"{tag}: {sub.path!r} bad removed"
            assert not (set(added) & before), f"{tag}: {sub.path!r} bad added"
            assert (before - set(removed)) | set(added) == now, (
                f"{tag}: {sub.path!r} delta does not compose: "
                f"{before} -{removed} +{added} != {now}"
            )
        previous[sub.id] = now
    previous["generation"] = max(sub.generation for sub in subs)


class TestResultDeltas:
    def test_initial_delta_is_empty(self):
        service = registrar_service()
        sub = service.subscribe("//course")
        assert sub.delta() == ((), ())

    def test_skip_yields_empty_delta(self):
        service = registrar_service()
        sub = service.subscribe("course[cno=CS240]/takenBy/student")
        before = sub.result()
        service.apply(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
        assert sub.stats["skips"] == 1
        assert sub.delta() == ((), ())
        assert sub.result() == before

    def test_delete_and_insert_deltas(self):
        service = registrar_service()
        sub = service.subscribe("course[cno=CS650]/prereq/course")
        before = sub.result()
        service.apply(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
        added, removed = sub.delta()
        assert added == ()
        assert set(removed) == set(before) - set(sub.result())
        service.apply(InsertOp(
            "course[cno=CS650]/prereq", "course", ("CS240", "Data Structures")
        ))
        added, removed = sub.delta()
        assert removed == ()
        assert len(added) == 1
        assert set(sub.result()) == set(added)

    def test_mixed_stream_deltas_compose(self):
        service = registrar_service()
        subs = [service.subscribe(q) for q in REGISTRAR_QUERIES]
        previous = {sub.id: set(sub.result()) for sub in subs}
        previous["generation"] = max(sub.generation for sub in subs)
        stream = [
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"),
            InsertOp("course[cno=CS650]/prereq", "course",
                     ("CS500", "Operating Systems")),
            ReplaceOp("course[cno=CS650]/prereq/course[cno=CS500]",
                      "course", ("CS320", "Databases")),
            DeleteOp("course[cno=NOPE]"),  # rejected: no commit, no delta
            BaseUpdateOp(ops=(
                ("insert", "course", ("CS777", "Compilers", "CS")),
            )),
            InsertOp(".", "course", ("CS700", "Theory")),
        ]
        for op in stream:
            service.apply(op)
            assert_deltas_compose(service, subs, previous, f"after {op.kind}")

    def test_batch_delta_spans_the_whole_session(self):
        service = registrar_service()
        sub = service.subscribe("course[cno=CS650]/prereq/course")
        before = set(sub.result())
        service.apply([
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"),
            InsertOp("course[cno=CS650]/prereq", "course",
                     ("CS500", "Operating Systems")),
        ])
        added, removed = sub.delta()
        assert (before - set(removed)) | set(added) == set(sub.result())

    def test_fallback_read_delta_spans_missed_generations(self):
        # Reading mid-batch takes the fallback path; the delta then
        # spans everything since the subscription's last refresh.
        service = registrar_service()
        sub = service.subscribe("course[cno=CS650]/prereq/course")
        before = set(sub.result())
        with service.batch() as batch:
            batch.apply(
                DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
            )
            added, removed = sub.delta()  # mid-batch: fallback refresh
            assert sub.stats["fallback_refreshes"] == 1
            assert (before - set(removed)) | set(added) == set(sub.result())


@given(registrar_streams(), st.booleans())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_stream_deltas_compose(stream, batched):
    service = registrar_service()
    subs = [service.subscribe(q) for q in REGISTRAR_QUERIES]
    previous = {sub.id: set(sub.result()) for sub in subs}
    previous["generation"] = max(sub.generation for sub in subs)
    batchable = [op for op in stream if not isinstance(op, BaseUpdateOp)]
    if batched and len(batchable) >= 2:
        service.apply(batchable)
        assert_deltas_compose(service, subs, previous, "after random batch")
    else:
        for op in stream:
            service.apply(op)
            assert_deltas_compose(service, subs, previous, "after random op")
    assert service.check_consistency() == []


# ---------------------------------------------------------------------------
# Fine-grained base-update events (the reverse pipeline prunes too)
# ---------------------------------------------------------------------------


class TestFineGrainedBaseEvents:
    def test_unrelated_base_update_is_skipped(self):
        service = registrar_service()
        sub = service.subscribe("course[cno=CS650]/prereq/course")
        # Enrollment changes touch takenBy subtrees only: the prereq
        # subscription must skip, not re-evaluate.
        service.apply(BaseUpdateOp(ops=(
            ("insert", "enroll", ("S03", "CS650")),
        )))
        assert sub.stats["skips"] == 1
        assert sub.stats["full_refreshes"] == 0
        assert_current(service, [sub], "after unrelated base update")

    def test_relevant_base_update_updates_result(self):
        service = registrar_service()
        sub = service.subscribe("//course[cno=CS901]")
        assert sub.result() == ()
        service.apply(BaseUpdateOp(ops=(
            ("insert", "course", ("CS901", "Seminar", "CS")),
        )))
        assert len(sub.result()) == 1
        added, removed = sub.delta()
        assert removed == () and len(added) == 1
        assert_current(service, [sub], "after relevant base update")

    def test_direct_apply_base_update_also_fine_grained(self):
        # The unlocked-core path (no plan/commit) emits the same event.
        service = registrar_service()
        sub = service.subscribe("course[cno=CS650]/prereq/course")
        events = []
        service.updater.add_observer(events.append)
        from repro.relational.database import RelationalDelta

        delta = RelationalDelta()
        delta.insert("enroll", ("S01", "CS320"))
        service.updater.apply_base_update(delta)
        assert len(events) == 1
        assert not events[0].coarse
        assert all(rec.kind == "insert" for rec in events[0].edges)
        assert sub.result() == tuple(
            sorted(service.xpath(sub.path).targets)
        )

    def test_base_update_losses_and_gains_are_typed(self):
        service = registrar_service()
        events = []
        service.changefeed(on_event=events.append)
        service.apply(BaseUpdateOp(ops=(
            ("delete", "prereq", ("CS650", "CS320")),
            ("insert", "prereq", ("CS650", "CS240")),
        )))
        [event] = events
        assert not event.coarse
        kinds = {(rec.kind, rec.parent_type, rec.child_type)
                 for rec in event.edges}
        assert ("delete", "prereq", "course") in kinds
        assert ("insert", "prereq", "course") in kinds

    def test_rebuild_stays_coarse(self):
        service = registrar_service()
        events = []
        service.changefeed(on_event=events.append)
        sub = service.subscribe("//course")
        service.updater.rebuild()
        assert events and events[-1].coarse
        assert events[-1].reason == "rebuild"
        assert_current(service, [sub], "after rebuild")


# ---------------------------------------------------------------------------
# Cost-based coarse fallback
# ---------------------------------------------------------------------------


class TestCoarseFallback:
    def test_threshold_zero_coarsens_every_fine_event(self):
        service = registrar_service(coarse_event_threshold=0)
        subs = [service.subscribe(q) for q in REGISTRAR_QUERIES]
        service.apply(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
        stats = service.subscriptions.stats()
        assert stats["coarse_fallbacks"] == len(subs)
        assert stats["skips"] == 0
        assert stats["full_refreshes"] == len(subs)
        assert_current(service, subs, "after coarsened event")

    def test_default_threshold_leaves_small_events_fine(self):
        service = registrar_service()
        service.subscribe("course[cno=CS240]/takenBy/student")
        service.apply(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
        stats = service.subscriptions.stats()
        assert stats["coarse_fallbacks"] == 0
        assert stats["skips"] == 1

    def test_threshold_surfaces_in_stats_and_config(self):
        service = registrar_service(coarse_event_threshold=7)
        assert service.subscriptions.stats()["coarse_threshold"] == 7
        from repro.subscribe.engine import DEFAULT_COARSE_THRESHOLD

        default = registrar_service()
        assert default.subscriptions.stats()["coarse_threshold"] == (
            DEFAULT_COARSE_THRESHOLD
        )

    def test_equivalence_preserved_under_tiny_threshold(self):
        service = registrar_service(coarse_event_threshold=1)
        subs = [service.subscribe(q) for q in REGISTRAR_QUERIES]
        for op in (
            DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"),
            InsertOp(".", "course", ("CS700", "Theory")),
            BaseUpdateOp(ops=(
                ("insert", "course", ("CS777", "Compilers", "CS")),
            )),
        ):
            service.apply(op)
            assert_current(service, subs, "tiny threshold")
        assert service.check_consistency() == []
