"""Property-based differential test of the reachability-index backends.

Hypothesis drives random streams of the full mutating ABC surface —
``insert`` / ``remove`` / ``set_ancestors`` / ``extend_ancestors`` /
``add_cross_pairs`` / ``add_anc_closure_pairs`` / ``retain_ancestors``
/ ``drop_node`` — against every registered backend in lockstep, with
the reference ``sets`` backend as the oracle.  After every operation
each backend must return the same value as the oracle and answer every
query the same way; ``copy``/``diff`` snapshots taken mid-stream must
produce identical pair-deltas at the end.

The registry is iterated as-is: with NumPy installed this differentials
``sets`` vs ``bitset`` vs ``matrix``; without it, ``sets`` vs
``bitset`` (the no-NumPy CI leg still exercises the lockstep).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import BACKENDS, make_index

ALL_BACKENDS = sorted(BACKENDS)

#: Node-id universe: small and non-contiguous, so dense-row backends
#: must handle gaps and capacity growth past their initial allocation.
NODES = tuple(range(9)) + (40, 73, 130)

node = st.sampled_from(NODES)
nodes = st.lists(node, max_size=4)


def _pairs(index):
    return sorted(index.pairs())


ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), node, node),
        st.tuples(st.just("remove"), node, node),
        st.tuples(st.just("set_ancestors"), node, nodes),
        st.tuples(st.just("extend_ancestors"), node, nodes),
        st.tuples(st.just("add_cross_pairs"), nodes, nodes),
        st.tuples(st.just("add_anc_closure_pairs"), nodes, nodes),
        st.tuples(st.just("retain_ancestors"), node, nodes),
        st.tuples(st.just("drop_node"), node),
    ),
    max_size=30,
)


def _apply(index, op):
    kind, *rest = op
    if kind == "insert":
        a, d = rest
        return index.insert(a, d) if a != d else None
    if kind == "remove":
        return index.remove(*rest)
    if kind == "set_ancestors":
        n, ancs = rest
        index.set_ancestors(n, {a for a in ancs if a != n})
        return None
    if kind == "extend_ancestors":
        n, parents = rest
        return index.extend_ancestors(n, [p for p in parents if p != n])
    if kind == "add_cross_pairs":
        upper, lower = rest
        return index.add_cross_pairs(upper, set(lower) - set(upper))
    if kind == "add_anc_closure_pairs":
        targets, lower = rest
        # Keep the closure loop-free: lower must not reach back into
        # the upper closure (mirrors real Δ(M,L)insert subtrees).
        upper = set(targets) | index.anc_of_set(targets)
        return index.add_anc_closure_pairs(targets, set(lower) - upper)
    if kind == "retain_ancestors":
        n, parents = rest
        return index.retain_ancestors(n, [p for p in parents if p != n])
    if kind == "drop_node":
        index.drop_node(rest[0])
        return None
    raise AssertionError(f"unknown op {op!r}")  # pragma: no cover


@settings(max_examples=60, deadline=None)
@given(ops=ops, probe=nodes)
def test_backends_agree_on_random_op_streams(ops, probe):
    oracle = make_index("sets")
    others = {b: make_index(b) for b in ALL_BACKENDS if b != "sets"}
    snapshots = None

    for i, op in enumerate(ops):
        if snapshots is None and i >= len(ops) // 2:
            # Mid-stream snapshot: diff() must reconstruct the exact
            # (added, removed) tail of the stream on every backend.
            snapshots = {"sets": oracle.copy()} | {
                b: idx.copy() for b, idx in others.items()
            }
        expected = _apply(oracle, op)
        for backend, index in others.items():
            got = _apply(index, op)
            assert got == expected, (backend, op, got, expected)

    for backend, index in others.items():
        assert index.equals(oracle), (backend, _pairs(index), _pairs(oracle))
        assert len(index) == len(oracle)
        assert index.check_invariants() == []
        for n in NODES:
            assert index.anc(n) == oracle.anc(n), (backend, n)
            assert index.desc(n) == oracle.desc(n), (backend, n)
        assert index.anc_of_set(probe) == oracle.anc_of_set(probe)
        assert index.desc_of_set(probe) == oracle.desc_of_set(probe)
        for a in probe:
            for d in NODES:
                assert index.is_ancestor(a, d) == oracle.is_ancestor(a, d)

    if snapshots is not None:
        expected_delta = oracle.diff(snapshots["sets"])
        for backend, index in others.items():
            assert index.diff(snapshots[backend]) == expected_delta, backend
            # The snapshot was a deep copy: the live index moved on
            # without disturbing it.
            assert snapshots[backend].equals(snapshots["sets"]), backend


@settings(max_examples=25, deadline=None)
@given(ops=ops)
def test_copy_round_trips_across_backends(ops):
    oracle = make_index("sets")
    for op in ops:
        _apply(oracle, op)
    for backend in ALL_BACKENDS:
        index = make_index(backend)
        for op in ops:
            _apply(index, op)
        clone = index.copy()
        assert type(clone) is type(index)
        assert clone.equals(index)
        assert clone.diff(index) == ([], [])
        # Mutating the clone leaves the original untouched.
        clone.insert(NODES[0], NODES[-1])
        clone.drop_node(NODES[1])
        assert index.equals(oracle)
