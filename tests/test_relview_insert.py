"""Tests for Algorithm insert: templates, side-effect sweep, SAT, ΔR."""

import pytest

from repro.atg.publisher import publish_store, publish_subtree
from repro.core.dag_eval import DagXPathEvaluator
from repro.core.reachability import compute_reach
from repro.core.topo import TopoOrder
from repro.core.translate import xinsert
from repro.errors import UpdateRejectedError
from repro.relview.insert import translate_insertions
from repro.views.registry import build_registry
from repro.views.store import ViewDelta
from repro.workloads.registrar import build_registrar
from repro.xpath.parser import parse_xpath


@pytest.fixture
def env():
    atg, db = build_registrar()
    registry = build_registry(atg, db)
    store = publish_store(atg, db)
    topo = TopoOrder.from_store(store)
    reach = compute_reach(store, topo)
    evaluator = DagXPathEvaluator(store, topo, reach)
    return atg, db, registry, store, evaluator


def delta_for_insert(env, path_text, element, sem):
    atg, db, registry, store, evaluator = env
    result = evaluator.evaluate(parse_xpath(path_text), mode="insert")
    subtree = publish_subtree(atg, db, store, element, sem)
    return xinsert(store, result.targets, subtree)


def gained_rows(registry, db, delta_r):
    before = {v.name: set(v.evaluate(db).rows) for v in registry.views()}
    db.apply(delta_r)
    after = {v.name: set(v.evaluate(db).rows) for v in registry.views()}
    gains = {
        name: after[name] - before[name] for name in before
    }
    losses = {name: before[name] - after[name] for name in before}
    return gains, losses


class TestExistingSubtree:
    def test_single_edge_tuple(self, env):
        atg, db, registry, store, _ = env
        delta_v = delta_for_insert(
            env, "course[cno=CS650]/prereq", "course",
            ("CS500", "Operating Systems"),
        )
        plan = translate_insertions(registry, store, db, delta_v)
        assert [(op.relation, op.row) for op in plan.delta_r] == [
            ("prereq", ("CS650", "CS500"))
        ]

    def test_no_side_effect_rows_gained(self, env):
        atg, db, registry, store, _ = env
        delta_v = delta_for_insert(
            env, "course[cno=CS650]/prereq", "course",
            ("CS500", "Operating Systems"),
        )
        plan = translate_insertions(registry, store, db, delta_v)
        gains, losses = gained_rows(registry, db, plan.delta_r)
        assert sum(len(g) for g in gains.values()) == 1
        assert all(not l for l in losses.values())

    def test_already_derivable_is_noop(self, env):
        atg, db, registry, store, _ = env
        delta_v = delta_for_insert(
            env, "//course[cno=CS320]/prereq", "course",
            ("CS240", "Data Structures"),
        )
        plan = translate_insertions(registry, store, db, delta_v)
        assert len(plan.delta_r) == 0


class TestNewSubtree:
    def test_new_course_gets_fresh_dept(self, env):
        """The side-effect sweep forbids dept='CS' (root view) for a
        course inserted only as a prerequisite."""
        atg, db, registry, store, _ = env
        delta_v = delta_for_insert(
            env, "course[cno=CS650]/prereq", "course", ("CS901", "New")
        )
        plan = translate_insertions(registry, store, db, delta_v)
        rows = {op.relation: op.row for op in plan.delta_r}
        assert rows["prereq"] == ("CS650", "CS901")
        assert rows["course"][0] == "CS901"
        assert rows["course"][2] != "CS"

    def test_new_course_exact_gain(self, env):
        atg, db, registry, store, _ = env
        delta_v = delta_for_insert(
            env, "course[cno=CS650]/prereq", "course", ("CS901", "New")
        )
        plan = translate_insertions(registry, store, db, delta_v)
        gains, losses = gained_rows(registry, db, plan.delta_r)
        assert all(not l for l in losses.values())
        assert len(gains["edge_prereq_course"]) == 1
        assert not gains["edge_db_course"]  # the side effect was avoided
        assert not gains["edge_takenBy_student"]

    def test_root_insert_requires_cs_dept(self, env):
        atg, db, registry, store, _ = env
        delta_v = delta_for_insert(env, ".", "course", ("CS902", "Root"))
        plan = translate_insertions(registry, store, db, delta_v)
        rows = {op.relation: op.row for op in plan.delta_r}
        assert rows["course"] == ("CS902", "Root", "CS")

    def test_new_student_and_enrollment(self, env):
        atg, db, registry, store, _ = env
        delta_v = delta_for_insert(
            env, "course[cno=CS650]/takenBy", "student", ("S10", "Kay")
        )
        plan = translate_insertions(registry, store, db, delta_v)
        relations = sorted(op.relation for op in plan.delta_r)
        assert relations == ["enroll", "student"]
        gains, _ = gained_rows(registry, db, plan.delta_r)
        assert len(gains["edge_takenBy_student"]) == 1

    def test_conflicting_existing_title_rejected(self, env):
        atg, db, registry, store, _ = env
        delta_v = delta_for_insert(
            env, "course[cno=CS650]/prereq", "course", ("CS240", "WRONG")
        )
        with pytest.raises(UpdateRejectedError):
            translate_insertions(registry, store, db, delta_v)

    def test_plan_statistics(self, env):
        atg, db, registry, store, _ = env
        delta_v = delta_for_insert(
            env, "course[cno=CS650]/prereq", "course", ("CS903", "Stats")
        )
        plan = translate_insertions(registry, store, db, delta_v)
        assert plan.solver in ("walksat", "dpll", "trivial")
        assert plan.derivations_checked >= 1
        assert len(plan.new_templates) == 2  # course + prereq tuples

    def test_solver_modes_agree(self, env):
        atg, db, registry, store, _ = env
        for solver in ("walksat", "dpll", "auto"):
            atg2, db2 = build_registrar()
            registry2 = build_registry(atg2, db2)
            store2 = publish_store(atg2, db2)
            topo2 = TopoOrder.from_store(store2)
            reach2 = compute_reach(store2, topo2)
            evaluator2 = DagXPathEvaluator(store2, topo2, reach2)
            result = evaluator2.evaluate(
                parse_xpath("course[cno=CS650]/prereq"), mode="insert"
            )
            subtree = publish_subtree(
                atg2, db2, store2, "course", ("CS904", "Solver")
            )
            delta_v = xinsert(store2, result.targets, subtree)
            plan = translate_insertions(
                registry2, store2, db2, delta_v, solver=solver
            )
            gains, losses = gained_rows(registry2, db2, plan.delta_r)
            assert len(gains["edge_prereq_course"]) == 1
            assert not gains["edge_db_course"]

    def test_empty_delta(self, env):
        _, db, registry, store, _ = env
        plan = translate_insertions(registry, store, db, ViewDelta())
        assert len(plan.delta_r) == 0
