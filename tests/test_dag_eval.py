"""Tests for the two-pass DAG XPath evaluator.

The tree evaluator is the oracle: for any path, the identities
``(type, $A)`` selected on the DAG must equal those selected on the
unfolded tree.
"""

import pytest

from repro.atg.publisher import publish_store, unfold_to_tree
from repro.core.dag_eval import DagXPathEvaluator
from repro.core.reachability import compute_reach
from repro.core.topo import TopoOrder
from repro.workloads.registrar import build_registrar
from repro.workloads.synthetic import SyntheticConfig, build_synthetic
from repro.xpath.parser import parse_xpath
from repro.xpath.tree_eval import evaluate_on_tree


@pytest.fixture
def env():
    atg, db = build_registrar()
    store = publish_store(atg, db)
    topo = TopoOrder.from_store(store)
    reach = compute_reach(store, topo)
    return store, DagXPathEvaluator(store, topo, reach)


def dag_identities(store, result):
    return sorted(
        (store.type_of(n), store.sem_of(n)) for n in result.targets
    )


def tree_identities(tree, path):
    return sorted({n.identity for n in evaluate_on_tree(path, tree)})


REGISTRAR_PATHS = [
    "course",
    "course[cno=CS650]",
    "course/prereq/course",
    "course[cno=CS650]/prereq/course[cno=CS320]",
    "//course",
    "//course[cno=CS320]",
    "//student",
    "//student[ssn=S02]",
    "//course[cno=CS320]//student[ssn=S02]",
    "course[cno=CS650]//course[cno=CS320]/prereq",
    "course[prereq/course]",
    "course[not(prereq/course)]",
    "course[prereq/course and takenBy/student]",
    "course[cno=CS650 or cno=CS240]",
    "*",
    "*/*",
    "//*[label()=takenBy]",
    "course/takenBy/student[name=Grace]",
    "//takenBy[student/ssn=S02]",
    "course[//ssn=S03]",
    ".",
    "//prereq[course]",
    "course[takenBy/student[name=Ada]]",
]


class TestAgainstTreeOracle:
    @pytest.mark.parametrize("text", REGISTRAR_PATHS)
    def test_registrar_paths(self, env, text):
        store, evaluator = env
        path = parse_xpath(text)
        dag = dag_identities(store, evaluator.evaluate(path))
        tree = tree_identities(unfold_to_tree(store), path)
        assert dag == tree, f"mismatch for {text}"

    @pytest.mark.parametrize(
        "text",
        [
            "cnode",
            "//cnode",
            "cnode/sub/cnode",
            "//sub/cnode",
            "cnode[sub/cnode]",
            "//cnode[key=31]",
            "//cnode[key=31]//cnode",
            "cnode[sub/cnode and val=v1]",
            "//cnode[not(sub/cnode)]",
        ],
    )
    def test_synthetic_paths(self, text):
        dataset = build_synthetic(SyntheticConfig(n_c=60, seed=4))
        store = publish_store(dataset.atg, dataset.db)
        topo = TopoOrder.from_store(store)
        reach = compute_reach(store, topo)
        evaluator = DagXPathEvaluator(store, topo, reach)
        path = parse_xpath(text)
        dag = dag_identities(store, evaluator.evaluate(path))
        tree = tree_identities(unfold_to_tree(store), path)
        assert dag == tree, f"mismatch for {text}"


class TestEp:
    def test_ep_single_parent(self, env):
        store, evaluator = env
        result = evaluator.evaluate(
            parse_xpath("course[cno=CS650]/prereq/course")
        )
        assert len(result.ep) == 1
        parent, child, _ = result.ep[0]
        assert store.type_of(parent) == "prereq"
        assert store.sem_of(parent) == ("CS650",)

    def test_ep_example4(self, env):
        """Paper Example 4: p reaches S02 through takenBy(CS320) only."""
        store, evaluator = env
        result = evaluator.evaluate(
            parse_xpath("//course[cno=CS320]//student[ssn=S02]")
        )
        parents = {
            (store.type_of(u), store.sem_of(u)) for u, _, _ in result.ep
        }
        assert parents == {("takenBy", ("CS320",))}

    def test_ep_example5_multiple_parents(self, env):
        """Paper Example 5: //student[ssn=S02] has two parent edges."""
        store, evaluator = env
        result = evaluator.evaluate(parse_xpath("//student[ssn=S02]"))
        parents = {
            (store.type_of(u), store.sem_of(u)) for u, _, _ in result.ep
        }
        assert parents == {("takenBy", ("CS320",)), ("takenBy", ("CS500",))}

    def test_ep_empty_for_root(self, env):
        _, evaluator = env
        result = evaluator.evaluate(parse_xpath("."))
        assert result.ep == []

    def test_ep_dedup_matches_delta(self, env):
        store, evaluator = env
        result = evaluator.evaluate(parse_xpath("//course"))
        edges = result.ep_edges()
        assert len(edges) == len(set(edges))


class TestSideEffects:
    def test_insert_side_effect_example1(self, env):
        """CS320 occurs below CS650 AND at the root: insertion into
        course[cno=CS650]//course[cno=CS320]/prereq has side effects."""
        _, evaluator = env
        result = evaluator.evaluate(
            parse_xpath("course[cno=CS650]//course[cno=CS320]/prereq"),
            mode="insert",
        )
        assert result.has_side_effects

    def test_insert_no_side_effect_unshared(self, env):
        """CS650 occurs only at the root: no side effects."""
        _, evaluator = env
        result = evaluator.evaluate(
            parse_xpath("course[cno=CS650]/prereq"), mode="insert"
        )
        assert not result.has_side_effects

    def test_insert_side_effect_shared_student(self, env):
        """S02 is shared by two takenBy parents; selecting it under only
        one of them is a side effect for insertions."""
        _, evaluator = env
        result = evaluator.evaluate(
            parse_xpath("course[cno=CS320]/takenBy/student[ssn=S02]"),
            mode="insert",
        )
        assert result.has_side_effects

    def test_insert_descendant_covers_occurrences(self, env):
        """Leading // matches every occurrence: no side effects."""
        _, evaluator = env
        result = evaluator.evaluate(
            parse_xpath("//student[ssn=S02]"), mode="insert"
        )
        assert not result.has_side_effects

    def test_delete_no_side_effect(self, env):
        _, evaluator = env
        result = evaluator.evaluate(
            parse_xpath("course[cno=CS650]/prereq/course[cno=CS320]"),
            mode="delete",
        )
        assert not result.has_side_effects

    def test_delete_side_effect_shared_parent(self, env):
        """CS320 occurs at the root and under CS650; deleting its prereq
        child via the root occurrence only is a side effect."""
        store, evaluator = env
        result = evaluator.evaluate(
            parse_xpath("course[cno=CS320]/prereq/course[cno=CS240]"),
            mode="delete",
        )
        assert result.has_side_effects
        witnesses = {
            (store.type_of(s), store.sem_of(s))
            for s in result.side_effects
        }
        assert ("prereq", ("CS650",)) in witnesses

    def test_delete_descendant_no_side_effect(self, env):
        _, evaluator = env
        result = evaluator.evaluate(
            parse_xpath("//course[cno=CS320]/prereq/course[cno=CS240]"),
            mode="delete",
        )
        assert not result.has_side_effects

    def test_no_targets_no_side_effects(self, env):
        _, evaluator = env
        result = evaluator.evaluate(
            parse_xpath("course[cno=NOPE]"), mode="insert"
        )
        assert result.targets == []
        assert not result.has_side_effects


class TestContexts:
    def test_contexts_recorded(self, env):
        _, evaluator = env
        result = evaluator.evaluate(parse_xpath("course/prereq"))
        # C0 (root), C1 (courses), C2 (prereqs)
        assert len(result.contexts) == 3
        assert len(result.contexts[1]) == 4

    def test_early_exit_on_empty_context(self, env):
        _, evaluator = env
        result = evaluator.evaluate(parse_xpath("zzz/prereq"))
        assert result.targets == []
