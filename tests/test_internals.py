"""Focused tests for smaller internals: the XPath compiler, predicate
rendering/binding, the bench CSV writer, and report truncation."""

from repro.bench.__main__ import _write_csv
from repro.core.dag_eval import _compile
from repro.relational.conditions import (
    And,
    Col,
    Const,
    Eq,
    Lt,
    Not,
    Or,
    Param,
    TRUE,
)
from repro.xpath.parser import parse_xpath
from repro.ops import DeleteOp, InsertOp


class TestXPathCompiler:
    def test_no_filters_empty_program(self):
        program = _compile(parse_xpath("a/b//c"))
        assert program.units == []
        assert program.path_plans == []

    def test_value_filter_compiles_path_then_filter(self):
        program = _compile(parse_xpath("a[b=1]"))
        kinds = [kind for kind, _ in program.units]
        assert kinds == ["path", "filter"]
        ops, value = program.path_plans[0]
        assert ops == [(0, "b")]
        assert value == "1"

    def test_shared_subexpression_compiled_once(self):
        program = _compile(parse_xpath("a[b=1 and b=1]"))
        # identical atoms collapse through the frozen-dataclass identity
        assert len(program.path_plans) == 1

    def test_nested_filter_dependency_order(self):
        program = _compile(parse_xpath("a[b[c=1]/d]"))
        # the inner c=1 path+filter must appear before the outer b/d path
        kinds = [kind for kind, _ in program.units]
        assert kinds.index("filter") > kinds.index("path")
        # outer path plan references the inner filter by index
        outer_ops, _ = program.path_plans[-1]
        assert any(op[0] == 2 for op in outer_ops)

    def test_descendant_op(self):
        program = _compile(parse_xpath("a[//b]"))
        ops, _ = program.path_plans[0]
        assert ops[0] == (3,)

    def test_boolean_plans(self):
        program = _compile(parse_xpath("a[b or not(c) and label()=x]"))
        codes = {plan[0] for plan in program.filter_plans}
        assert {0, 1, 2, 3, 4} >= codes
        assert 3 in codes  # or
        assert 4 in codes  # not


class TestPredicates:
    def test_str_rendering(self):
        pred = And(
            Eq(Col("a", "x"), Const(1)),
            Or(Lt(Col("a", "y"), Const(2)), Not(TRUE)),
        )
        text = str(pred)
        assert "a.x = 1" in text
        assert "a.y < 2" in text
        assert "NOT" in text
        assert str(TRUE) == "TRUE"

    def test_bind_substitutes_params(self):
        pred = And(Eq(Col("a", "x"), Param("p")), Not(Eq(Param("p"), Const(1))))
        bound = pred.bind({"p": 7})
        assert "7" in str(bound)
        assert ":p" not in str(bound)

    def test_conjuncts_flatten(self):
        pred = And(And(Eq(Col("a", "x"), Const(1))), Eq(Col("a", "y"), Const(2)))
        assert len(list(pred.conjuncts())) == 2

    def test_columns_iteration(self):
        pred = Or(Eq(Col("a", "x"), Col("b", "y")), Not(Eq(Col("c", "z"), Const(1))))
        cols = {(c.alias, c.attr) for c in pred.columns()}
        assert cols == {("a", "x"), ("b", "y"), ("c", "z")}


class TestCsvWriter:
    def test_writes_rows(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}, {"a": 2, "b": 3.5, "c": "x"}]
        _write_csv(str(tmp_path), "exp", rows)
        content = (tmp_path / "exp.csv").read_text().splitlines()
        assert content[0] == "a,b,c"
        assert content[1] == "1,2.5,"
        assert content[2] == "2,3.5,x"

    def test_no_dir_is_noop(self):
        _write_csv(None, "exp", [{"a": 1}])  # must not raise

    def test_empty_rows_skipped(self, tmp_path):
        _write_csv(str(tmp_path), "empty", [])
        assert not (tmp_path / "empty.csv").exists()


class TestExplainTruncation:
    def test_large_delta_truncated(self, registrar_updater_propagate):
        from repro.core.explain import explain_outcome

        u = registrar_updater_propagate
        # Insert a new course: ΔV has internal + connection edges.
        out = u.apply_op(InsertOp(".", "course", ("CS950", "Big")))
        text = explain_outcome(out, u.store)
        assert "ΔV:" in text
        # A delete touching many edges:
        out2 = u.apply_op(DeleteOp("//course"))
        text2 = explain_outcome(out2, u.store)
        assert "ACCEPTED" in text2 or "REJECTED" in text2
