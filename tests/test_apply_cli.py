"""End-to-end tests for the ``python -m repro.apply`` CLI.

Exercises op deserialization from JSON-lines all the way through the
service: apply mode, dry-run (plan-only) mode, JSON output mode, the
named-workload resolver, and the failure exit codes.
"""

import json

import pytest

from repro.apply import main, run

OPS = [
    '{"op": "delete", "path": "course[cno=CS650]/prereq/course[cno=CS320]"}',
    '{"op": "insert", "path": "course[cno=CS650]/prereq", '
    '"element": "course", "sem": ["CS500", "Operating Systems"]}',
    '{"op": "base_update", "ops": '
    '[["insert", "course", ["CS800", "Quantum", "CS"]]]}',
]


@pytest.fixture
def ops_file(tmp_path):
    path = tmp_path / "ops.jsonl"
    path.write_text("# demo ops\n" + "\n".join(OPS) + "\n")
    return path


class TestRun:
    def test_apply_summary(self, capsys):
        code = run(iter(OPS), workload="registrar")
        out = capsys.readouterr().out
        assert code == 0
        assert "3 op(s) applied against 'registrar'" in out
        assert "3 accepted, 0 rejected" in out
        assert "consistency OK" in out

    def test_rejections_reported_not_fatal(self, capsys):
        lines = ['{"op": "delete", "path": "course[cno=NOPE]"}']
        code = run(iter(lines), workload="registrar")
        out = capsys.readouterr().out
        assert code == 0
        assert "REJECTED" in out and "selects no node" in out

    def test_plan_only_leaves_view_untouched(self, capsys):
        code = run(iter(OPS), workload="registrar", plan_only=True)
        out = capsys.readouterr().out
        assert code == 0
        assert "planned (dry run)" in out
        # The registrar view starts with 30 nodes; a dry run keeps them.
        assert "view now 30 nodes" in out

    def test_json_output_is_outcome_dicts(self, capsys):
        code = run(iter(OPS), workload="registrar", as_json=True)
        lines = capsys.readouterr().out.strip().split("\n")
        assert code == 0
        payloads = [json.loads(line) for line in lines]
        assert [p["kind"] for p in payloads] == [
            "delete", "insert", "base_update",
        ]
        assert all(p["accepted"] for p in payloads)
        # include_deltas mode embeds the full op lists.
        assert payloads[0]["delta_r"]["ops"] == [
            ["delete", "prereq", ["CS650", "CS320"]]
        ]

    def test_synthetic_workload_with_propagate(self, capsys):
        lines = ['{"op": "delete", "path": "//cnode[key=7]"}']
        code = run(iter(lines), workload="synthetic:60", policy="propagate")
        assert code == 0
        assert "1 accepted" in capsys.readouterr().out

    def test_stats_reports_generation_and_buffer(self, capsys):
        code = run(iter(OPS), workload="registrar", show_stats=True)
        out = capsys.readouterr().out
        assert code == 0
        assert "index backend:" in out  # benchmark provenance preserved
        # Snapshot-freshness line: the feed attaches lazily, so nothing
        # is retained yet and the replay floor sits at the head.
        assert "generation: 4; changefeed buffer: 0/256 event(s) retained" \
            in out
        assert "replay floor 4" in out

    def test_snapshot_flag_writes_loadable_artifact(self, tmp_path, capsys):
        from repro.replica import Snapshot

        path = tmp_path / "view.pkl.gz"
        code = run(iter(OPS), workload="registrar", snapshot_path=str(path))
        out = capsys.readouterr().out
        assert code == 0
        assert "snapshot: generation 4," in out
        assert str(path) in out
        snapshot = Snapshot.load(path)
        assert snapshot.generation == 4
        assert snapshot.num_nodes > 0


MIXED_LINES = [
    '{"op": "delete", "path": "course[cno=CS650]/prereq/course[cno=CS320]"}',
    "this is not json",
    '{"op": "insert", "path": ".", "element": "course", '
    '"sem": ["CS700", "Theory"]}',
]


class TestMalformedLines:
    """Regression: a malformed line mid-stream used to abort the run
    without the failing line number, leaving the caller unable to tell
    which earlier ops had already been applied."""

    def test_stop_on_error_reports_line_and_partial_summary(self, capsys):
        code = run(iter(MIXED_LINES), workload="registrar")
        captured = capsys.readouterr()
        assert code == 2
        assert "bad input: line 2:" in captured.err
        # The op before the bad line stayed applied and is summarized.
        assert "1 op(s) applied" in captured.out
        assert "stopped at line 2" in captured.out
        assert "consistency OK" in captured.out

    def test_keep_going_processes_the_rest(self, capsys):
        code = run(iter(MIXED_LINES), workload="registrar",
                   stop_on_error=False)
        captured = capsys.readouterr()
        assert code == 2  # still nonzero: input was malformed
        assert "bad input: line 2:" in captured.err
        assert "2 op(s) applied" in captured.out
        assert "1 malformed line(s) skipped" in captured.out

    def test_line_numbers_count_comments_and_blanks(self, capsys):
        lines = ["# comment", "", MIXED_LINES[0], "{broken"]
        code = run(iter(lines), workload="registrar")
        captured = capsys.readouterr()
        assert code == 2
        assert "bad input: line 4:" in captured.err

    def test_clean_stream_still_exits_zero(self, capsys):
        assert run(iter(OPS), workload="registrar") == 0

    def test_main_flags(self, tmp_path, capsys):
        path = tmp_path / "mixed.jsonl"
        path.write_text("\n".join(MIXED_LINES) + "\n")
        assert main([str(path), "--stop-on-error"]) == 2
        assert "stopped at line 2" in capsys.readouterr().out
        assert main([str(path), "--keep-going"]) == 2
        assert "2 op(s) applied" in capsys.readouterr().out

    def test_flags_are_mutually_exclusive(self, tmp_path, capsys):
        path = tmp_path / "ops.jsonl"
        path.write_text(MIXED_LINES[0] + "\n")
        with pytest.raises(SystemExit):
            main([str(path), "--stop-on-error", "--keep-going"])


class TestMain:
    def test_file_input(self, ops_file, capsys):
        assert main([str(ops_file), "--workload", "registrar"]) == 0
        assert "3 accepted" in capsys.readouterr().out

    def test_plan_only_flag(self, ops_file, capsys):
        code = main([str(ops_file), "--plan-only"])
        assert code == 0
        assert "dry run" in capsys.readouterr().out

    def test_bad_json_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"op": "delete"\n')
        assert main([str(bad)]) == 2
        assert "bad input" in capsys.readouterr().err

    def test_unknown_op_kind_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"op": "upsert", "path": "x"}\n')
        assert main([str(bad)]) == 2
        assert "unknown operation kind" in capsys.readouterr().err

    def test_unknown_workload_exits_2(self, ops_file, capsys):
        assert main([str(ops_file), "--workload", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_missing_file_exits_2(self, capsys):
        assert main(["/no/such/file.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err
