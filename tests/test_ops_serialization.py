"""Wire-format tests for the typed update-operation algebra.

The contract: every op round-trips exactly through both the dict and
the JSON encodings (``from_dict(op.to_dict()) == op``), malformed wire
payloads raise :class:`OpDecodeError` (never a bare ``KeyError`` /
``TypeError``), and the ops are proper values — frozen, hashable,
equality-comparable.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OpDecodeError
from repro.ops import (
    OP_TYPES,
    BaseUpdateOp,
    DeleteOp,
    InsertOp,
    ReplaceOp,
    op_from_dict,
    op_from_json,
    ops_from_jsonl,
)

# JSON-native scalars (finite floats only: NaN breaks equality, inf is
# not strict JSON).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
sems = st.lists(scalars, max_size=5).map(tuple)
paths = st.text(min_size=1, max_size=60)
elements = st.text(min_size=1, max_size=20)

insert_ops = st.builds(InsertOp, path=paths, element=elements, sem=sems)
delete_ops = st.builds(DeleteOp, path=paths)
replace_ops = st.builds(ReplaceOp, path=paths, element=elements, sem=sems)
base_ops = st.builds(
    BaseUpdateOp,
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.text(min_size=1, max_size=15),
            st.lists(scalars, max_size=4).map(tuple),
        ),
        max_size=4,
    ).map(tuple),
)
any_op = st.one_of(insert_ops, delete_ops, replace_ops, base_ops)


class TestRoundTrip:
    @settings(max_examples=200)
    @given(any_op)
    def test_dict_round_trip(self, op):
        assert op_from_dict(op.to_dict()) == op

    @settings(max_examples=200)
    @given(any_op)
    def test_json_round_trip(self, op):
        text = op.to_json()
        json.loads(text)  # strict JSON
        assert op_from_json(text) == op

    @given(any_op)
    def test_wire_dict_is_json_native(self, op):
        assert json.loads(json.dumps(op.to_dict())) == json.loads(op.to_json())

    @given(any_op)
    def test_ops_are_values(self, op):
        assert op == op_from_dict(op.to_dict())
        assert hash(op) == hash(op_from_dict(op.to_dict()))
        assert op.kind in OP_TYPES

    def test_sem_restored_as_tuple(self):
        op = op_from_dict(
            {"op": "insert", "path": ".", "element": "course",
             "sem": ["CS700", "Theory"]}
        )
        assert op.sem == ("CS700", "Theory")
        assert isinstance(op.sem, tuple)

    def test_base_rows_restored_as_tuples(self):
        op = op_from_dict(
            {"op": "base_update",
             "ops": [["insert", "course", ["CS800", "Quantum", "CS"]]]}
        )
        assert op.ops == (("insert", "course", ("CS800", "Quantum", "CS")),)


class TestDecodeErrors:
    @pytest.mark.parametrize(
        "payload",
        [
            {},                                     # no discriminator
            {"op": ["delete"], "path": "x"},        # unhashable kind
            {"op": "upsert", "path": "x"},          # unknown kind
            {"op": "insert", "element": "course"},  # missing path
            {"op": "insert", "path": 1, "element": "c"},  # wrong type
            {"op": "insert", "path": ".", "element": "c", "sem": "notalist"},
            {"op": "insert", "path": ".", "element": "c", "sem": [["no"]]},
            {"op": "delete"},                       # missing path
            {"op": "base_update"},                  # missing ops
            {"op": "base_update", "ops": [["upsert", "t", []]]},
            {"op": "base_update", "ops": [["insert", 3, []]]},
            {"op": "base_update", "ops": [["insert", "t"]]},  # arity
            "not a dict",
        ],
    )
    def test_malformed_payloads_raise(self, payload):
        with pytest.raises(OpDecodeError):
            op_from_dict(payload)

    def test_invalid_json_raises(self):
        with pytest.raises(OpDecodeError, match="not valid JSON"):
            op_from_json("{nope")

    def test_jsonl_reports_line_numbers(self):
        lines = ['{"op": "delete", "path": "x"}', "", "# comment", "{bad"]
        with pytest.raises(OpDecodeError, match="line 4"):
            list(ops_from_jsonl(lines))

    def test_jsonl_skips_blank_and_comment_lines(self):
        lines = ["", "# heading", '{"op": "delete", "path": "x"}', "   "]
        assert list(ops_from_jsonl(lines)) == [DeleteOp("x")]

    def test_jsonl_on_error_keep_going_and_stop(self):
        lines = [
            '{"op": "delete", "path": "x"}',
            "{bad",
            '{"op": "delete", "path": "y"}',
        ]
        seen: list[int] = []
        decoded = list(ops_from_jsonl(lines, on_error=lambda n, e: (
            seen.append(n) or True
        )))
        assert seen == [2]
        assert decoded == [DeleteOp("x"), DeleteOp("y")]
        # Returning false stops cleanly instead of raising.
        decoded = list(ops_from_jsonl(lines, on_error=lambda n, e: False))
        assert decoded == [DeleteOp("x")]


class TestDeltaBridge:
    def test_from_delta_to_delta_round_trip(self):
        from repro.relational.database import RelationalDelta

        delta = RelationalDelta()
        delta.insert("course", ("CS800", "Quantum", "CS"))
        delta.delete("prereq", ("CS650", "CS320"))
        op = BaseUpdateOp.from_delta(delta)
        back = op.to_delta()
        assert [(o.kind, o.relation, o.row) for o in back] == [
            ("insert", "course", ("CS800", "Quantum", "CS")),
            ("delete", "prereq", ("CS650", "CS320")),
        ]
        assert BaseUpdateOp.from_delta(back) == op
