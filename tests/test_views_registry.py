"""Unit tests for the edge-view SPJ definitions (registry)."""

import pytest

from repro.atg.publisher import publish_store
from repro.errors import ATGError
from repro.relview.keypres import is_key_preserving
from repro.views.registry import build_registry
from repro.workloads.registrar import build_registrar


@pytest.fixture
def setup():
    atg, db = build_registrar()
    registry = build_registry(atg, db)
    store = publish_store(atg, db)
    return atg, db, registry, store


class TestClosure:
    def test_one_view_per_starred_edge(self, setup):
        _, _, registry, _ = setup
        names = {v.name for v in registry.views()}
        assert names == {
            "edge_db_course",
            "edge_prereq_course",
            "edge_takenBy_student",
        }

    def test_projection_edges_have_no_view(self, setup):
        _, _, registry, _ = setup
        assert not registry.has_view("course", "cno")
        with pytest.raises(ATGError):
            registry.view("course", "cno")

    def test_views_are_key_preserving(self, setup):
        _, db, registry, _ = setup
        for view in registry.views():
            assert is_key_preserving(view.query, db)

    def test_param_columns_projected_first(self, setup):
        _, _, registry, _ = setup
        view = registry.view("prereq", "course")
        assert view.param_names == ("cno",)
        assert view.query.output_names[0] == "p_cno"

    def test_key_layout(self, setup):
        _, _, registry, _ = setup
        view = registry.view("prereq", "course")
        assert set(view.key_layout) == {"p", "c"}
        relation, slots = view.key_layout["p"]
        assert relation == "prereq"
        assert [attr for _, attr in slots] == ["cno1", "cno2"]

    def test_base_relations(self, setup):
        _, _, registry, _ = setup
        assert registry.base_relations() == {"course", "prereq", "enroll", "student"}


class TestEvaluation:
    def test_edges_match_store(self, setup):
        _, db, registry, store = setup
        view = registry.view("prereq", "course")
        result = view.evaluate(db)
        visible = {view.visible(row) for row in result.rows}
        # All derivable edges, including under non-CS parents.
        assert (("CS650",), ("CS320", "Databases")) in visible
        assert (("CS320",), ("CS240", "Data Structures")) in visible

    def test_matching_rows_point_query(self, setup):
        _, db, registry, _ = setup
        view = registry.view("prereq", "course")
        rows = view.matching_rows(db, ("CS650",), ("CS320", "Databases"))
        assert len(rows) == 1
        assert view.source_key(rows[0], "p") == ("CS650", "CS320")
        assert view.source_key(rows[0], "c") == ("CS320",)

    def test_matching_rows_absent_edge(self, setup):
        _, db, registry, _ = setup
        view = registry.view("prereq", "course")
        assert view.matching_rows(db, ("CS650",), ("CS240", "Data Structures")) == []

    def test_rows_referencing_base_tuple(self, setup):
        _, db, registry, _ = setup
        view = registry.view("takenBy", "student")
        rows = view.rows_referencing(db, "s", ("S02",))
        # S02 enrolled in CS320 and CS500: two view rows reference it.
        assert len(rows) == 2

    def test_sources(self, setup):
        _, db, registry, _ = setup
        view = registry.view("takenBy", "student")
        rows = view.rows_referencing(db, "s", ("S01",))
        sources = view.sources(rows[0])
        assert ("enroll", "e", ("S01", "CS650")) in sources
        assert ("student", "s", ("S01",)) in sources

    def test_visible_split(self, setup):
        _, db, registry, _ = setup
        view = registry.view("db", "course")
        result = view.evaluate(db)
        for row in result.rows:
            params, child = view.visible(row)
            assert params == ()
            assert len(child) == 2

    def test_root_view_filters_department(self, setup):
        _, db, registry, _ = setup
        view = registry.view("db", "course")
        children = {view.visible(r)[1][0] for r in view.evaluate(db).rows}
        assert "MA100" not in children
        assert children == {"CS650", "CS500", "CS320", "CS240"}
