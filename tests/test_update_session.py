"""Tests for batched update sessions (``with updater.batch():``).

The contract: foreground phases run per update, ``L`` stays maintained,
but leaving the block runs exactly one deferred Δ(M,L) maintenance pass
whose final state is ``equals()``-identical to sequential processing.
"""

import pytest

from repro.core.updater import SideEffectPolicy, XMLViewUpdater
from repro.errors import ReproError, UpdateRejectedError
from repro.index import BACKENDS
from repro.workloads.queries import make_workload
from repro.workloads.registrar import build_registrar
from repro.workloads.synthetic import SyntheticConfig, build_synthetic
from repro.ops import DeleteOp, InsertOp

ALL_BACKENDS = sorted(BACKENDS)


def _registrar_updater(**kwargs):
    atg, db = build_registrar()
    kwargs.setdefault("side_effect_policy", SideEffectPolicy.PROPAGATE)
    return XMLViewUpdater(atg, db, **kwargs)


def _synthetic_updater(n_c=60, seed=7, **kwargs):
    dataset = build_synthetic(SyntheticConfig(n_c=n_c, seed=seed))
    kwargs.setdefault("side_effect_policy", SideEffectPolicy.PROPAGATE)
    kwargs.setdefault("strict", False)
    return dataset, XMLViewUpdater(dataset.atg, dataset.db, **kwargs)


def _delete_ops(dataset, count=4):
    ops = []
    for cls in ("W1", "W2"):
        ops.extend(make_workload(dataset, "delete", cls, count=count))
    return ops


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_batched_deletions_one_pass_identical_state(backend):
    """Acceptance: N batched deletions = 1 maintenance pass, same state."""
    dataset_a, sequential = _synthetic_updater(index_backend=backend)
    dataset_b, batched = _synthetic_updater(index_backend=backend)
    ops = _delete_ops(dataset_a)
    assert len(ops) >= 3

    seq_outcomes = [sequential.apply_op(op) for op in ops]
    assert sequential.maintenance_runs == sum(
        1 for o in seq_outcomes if o.accepted
    )

    before = batched.maintenance_runs
    with batched.batch() as session:
        batch_outcomes = [batched.apply_op(op) for op in ops]
    assert batched.maintenance_runs - before == 1
    assert session.report is not None
    assert session.report.maintenance_passes == 1
    assert session.report.deletes == sum(
        1 for o in batch_outcomes if o.accepted
    )

    # Mid-batch foreground results were identical to sequential.
    for a, b in zip(seq_outcomes, batch_outcomes):
        assert a.accepted == b.accepted
        assert a.targets == b.targets

    # Final auxiliary structures are equals()-identical.
    assert batched.reach.equals(sequential.reach)
    assert batched.topo.is_valid_for(batched.reach)
    assert sorted(batched.store.nodes()) == sorted(sequential.store.nodes())
    assert batched.check_consistency() == []


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_batched_inserts_one_pass(backend):
    updater = _registrar_updater(index_backend=backend, strict=True)
    before = updater.maintenance_runs
    with updater.batch():
        updater.apply_op(InsertOp(
            "course[cno='CS650']/prereq", "course", ("CS901", "Batched I")
        ))
        updater.apply_op(InsertOp(
            "course[cno='CS650']/prereq", "course", ("CS902", "Batched II")
        ))
    assert updater.maintenance_runs - before == 1
    assert updater.check_consistency() == []
    result = updater.evaluate_xpath("course[cno='CS650']/prereq/course")
    types = {updater.store.sem_of(n)[0] for n in result.targets}
    assert {"CS901", "CS902"} <= types


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_mixed_batch_consistent(backend):
    updater = _registrar_updater(index_backend=backend, strict=False)
    before = updater.maintenance_runs
    with updater.batch():
        updater.apply_op(DeleteOp("course[cno='CS650']/prereq/course[cno='CS320']"))
        updater.apply_op(InsertOp(
            "course[cno='CS650']/prereq", "course", ("CS903", "Mixed")
        ))
        updater.apply_op(DeleteOp("//course[cno='CS910']"))  # selects nothing: rejected
    assert updater.maintenance_runs - before == 1
    assert updater.check_consistency() == []
    assert updater.reach.check_invariants() == []


def test_mid_batch_evaluation_sees_applied_deltas():
    updater = _registrar_updater(strict=True)
    with updater.batch():
        updater.apply_op(DeleteOp("course[cno='CS650']/prereq/course[cno='CS320']"))
        # The foreground ΔV is applied: a descendant query through the
        # deleted edge must not resurrect it, even though M is stale.
        result = updater.evaluate_xpath(
            "course[cno='CS650']/prereq//course[cno='CS320']"
        )
        assert result.targets == []


def test_batch_with_only_rejections_runs_no_pass():
    updater = _registrar_updater(strict=False)
    before = updater.maintenance_runs
    with updater.batch() as session:
        outcome = updater.apply_op(DeleteOp("//course[cno='NOPE']"))
    assert not outcome.accepted
    assert updater.maintenance_runs == before
    assert session.report.maintenance_passes == 0


def test_batch_flushes_even_when_block_raises():
    updater = _registrar_updater(strict=True)
    before = updater.maintenance_runs
    with pytest.raises(UpdateRejectedError):
        with updater.batch():
            updater.apply_op(DeleteOp("course[cno='CS650']/prereq/course[cno='CS320']"))
            updater.apply_op(DeleteOp("//course[cno='NOPE']"))  # raises (strict)
    # The accepted delete's repair still ran: state is consistent.
    assert updater.maintenance_runs - before == 1
    assert updater.check_consistency() == []


def test_nested_batch_rejected():
    updater = _registrar_updater()
    with updater.batch():
        with pytest.raises(ReproError, match="already active"):
            updater.batch()
    # After a clean exit a new batch opens fine.
    with updater.batch():
        pass


def test_base_update_blocked_while_pending():
    updater = _registrar_updater(strict=True)
    with updater.batch():
        outcome = updater.apply_op(DeleteOp(
            "course[cno='CS650']/prereq/course[cno='CS320']"
        ))
        with pytest.raises(ReproError, match="pending maintenance"):
            updater.undo(outcome)
    assert updater.check_consistency() == []
    # Once flushed, undo works and restores the original view.
    updater.undo(outcome)
    assert updater.check_consistency() == []


def test_explicit_flush_mid_batch():
    updater = _registrar_updater(strict=True)
    with updater.batch() as session:
        updater.apply_op(DeleteOp("course[cno='CS650']/prereq/course[cno='CS320']"))
        report = session.flush()
        assert report.maintenance_passes == 1
        # Maintenance is clean now; further ops queue afresh.
        updater.apply_op(InsertOp(
            "course[cno='CS650']/prereq", "course", ("CS904", "Post-flush")
        ))
    assert updater.check_consistency() == []


def test_batch_delete_then_reinsert_shares_subtree():
    """Deferred GC: delete + re-insert within one batch resurrects the
    shared subtree via gen_id interning instead of republishing."""
    updater = _registrar_updater(strict=True)
    target = updater.store.lookup("course", ("CS320", "Databases"))
    assert target is not None
    with updater.batch():
        updater.apply_op(DeleteOp("course[cno='CS650']/prereq/course[cno='CS320']"))
        updater.apply_op(InsertOp(
            "course[cno='CS650']/prereq", "course", ("CS320", "Databases")
        ))
    assert updater.check_consistency() == []
    # Same node id: the subtree was shared, not republished.
    assert updater.store.lookup("course", ("CS320", "Databases")) == target


def test_verify_each_update_defers_to_flush():
    updater = _registrar_updater(strict=True, verify_each_update=True)
    with updater.batch():
        updater.apply_op(DeleteOp("course[cno='CS650']/prereq/course[cno='CS320']"))
        updater.apply_op(InsertOp(
            "course[cno='CS650']/prereq", "course", ("CS905", "Verified")
        ))
    assert updater.check_consistency() == []


def _interleaved_batch_then_undo(backend):
    """One batch interleaving delete+insert per anchor, then undo all.

    Guards dense-id reuse in the bitset rows: a delete frees node ids
    mid-batch, the following insert re-interns (or allocates past)
    them, and the undo resurrects collected subtrees — any stale row
    aliasing shows up as a cross-backend M divergence.
    """
    from repro.relview.insert import reset_fresh_counter

    reset_fresh_counter()
    dataset, updater = _synthetic_updater(n_c=70, seed=11,
                                          index_backend=backend)
    deletes = make_workload(dataset, "delete", "W2", count=3)
    inserts = make_workload(
        dataset, "insert", "W2", count=3, seed=2, new_key_fraction=0.0
    )
    outcomes = []
    with updater.batch() as session:
        for delete_op, insert_op in zip(deletes, inserts):
            outcomes.append(updater.apply_op(delete_op))
            outcomes.append(updater.apply_op(insert_op))
    assert session.report is not None
    assert session.report.maintenance_passes == 1
    accepted = [o for o in outcomes if o.accepted]
    assert len(accepted) >= 2, "workload must commit interleaved ops"
    for outcome in reversed(accepted):
        if outcome.delta_r is not None and len(outcome.delta_r.ops):
            updater.undo(outcome)
    return updater, outcomes


def test_interleaved_batch_then_undo_backends_byte_identical():
    """Acceptance: interleaved delete+insert inside one session followed
    by undo leaves `sets` and `bitset` in `equals()`-identical states."""
    runs = {b: _interleaved_batch_then_undo(b) for b in ALL_BACKENDS}
    updaters = [u for u, _ in runs.values()]
    outcome_lists = [o for _, o in runs.values()]
    for other in outcome_lists[1:]:
        assert [o.accepted for o in other] == [
            o.accepted for o in outcome_lists[0]
        ]
        assert [o.targets for o in other] == [
            o.targets for o in outcome_lists[0]
        ]
    reference = updaters[0]
    for updater in updaters:
        assert updater.check_consistency() == []
        assert updater.reach.check_invariants() == []
        assert updater.reach.equals(reference.reach)
        assert list(updater.topo) == list(reference.topo)
