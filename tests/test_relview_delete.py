"""Tests for key preservation and Algorithm delete (paper Fig. 9)."""

import pytest

from repro.atg.publisher import publish_store
from repro.core.dag_eval import DagXPathEvaluator
from repro.core.reachability import compute_reach
from repro.core.topo import TopoOrder
from repro.core.translate import xdelete
from repro.errors import UpdateRejectedError
from repro.relational.conditions import Col, Eq
from repro.relational.query import SPJQuery
from repro.relview.delete import expand_view_deletions, translate_deletions
from repro.relview.keypres import is_key_preserving, key_preservation_report
from repro.relview.minimal import minimal_deletion_exact, minimal_deletion_greedy
from repro.views.registry import build_registry
from repro.workloads.registrar import build_registrar
from repro.xpath.parser import parse_xpath


@pytest.fixture
def env():
    atg, db = build_registrar()
    registry = build_registry(atg, db)
    store = publish_store(atg, db)
    topo = TopoOrder.from_store(store)
    reach = compute_reach(store, topo)
    evaluator = DagXPathEvaluator(store, topo, reach)
    return atg, db, registry, store, evaluator


def deletions_for(env, path_text):
    _, db, registry, store, evaluator = env
    result = evaluator.evaluate(parse_xpath(path_text), mode="delete")
    delta_v = xdelete(store, result)
    return expand_view_deletions(registry, store, db, delta_v)


class TestKeyPreservation:
    def test_registrar_edge_views_preserve_keys(self, env):
        _, db, registry, _, _ = env
        for view in registry.views():
            report = key_preservation_report(view.query, db)
            assert report.preserved, report.missing

    def test_non_preserving_query_detected(self, env):
        _, db, _, _, _ = env
        query = SPJQuery(
            "bad",
            [("enroll", "e"), ("student", "s")],
            [("name", Col("s", "name"))],  # no keys projected
            Eq(Col("e", "ssn"), Col("s", "ssn")),
        )
        report = key_preservation_report(query, db)
        assert not report.preserved
        # e's key (ssn is covered via equality closure to s.ssn? no:
        # s.ssn itself is not projected either) — both keys missing.
        missing_rels = {rel for rel, _, _ in report.missing}
        assert missing_rels == {"enroll", "student"}

    def test_equality_closure_renaming_counts(self, env):
        _, db, _, _, _ = env
        # e.ssn is preserved through the join equality with s.ssn.
        query = SPJQuery(
            "ok",
            [("enroll", "e"), ("student", "s")],
            [("ssn", Col("s", "ssn")), ("cno", Col("e", "cno"))],
            Eq(Col("e", "ssn"), Col("s", "ssn")),
        )
        assert is_key_preserving(query, db)


class TestAlgorithmDelete:
    def test_prereq_edge_deletes_prereq_tuple(self, env):
        _, db, registry, _, _ = env
        rows = deletions_for(env, "course[cno=CS650]/prereq/course")
        plan = translate_deletions(registry, db, rows)
        assert [(op.relation, op.row) for op in plan.delta_r] == [
            ("prereq", ("CS650", "CS320"))
        ]

    def test_student_edge_deletes_enrollment(self, env):
        _, db, registry, _, _ = env
        rows = deletions_for(env, "//course[cno=CS320]//student[ssn=S02]")
        plan = translate_deletions(registry, db, rows)
        assert [(op.relation, op.row) for op in plan.delta_r] == [
            ("enroll", ("S02", "CS320"))
        ]

    def test_group_deletion_multiple_edges(self, env):
        _, db, registry, _, _ = env
        rows = deletions_for(env, "//student[ssn=S02]")
        plan = translate_deletions(registry, db, rows)
        relations = sorted(op.row for op in plan.delta_r)
        assert relations == [("S02", "CS320"), ("S02", "CS500")]

    def test_deleting_root_course_picks_course_tuple(self, env):
        """Removing CS650 from the root: only the course tuple kills the
        db_course row; CS650 is nobody's prerequisite, so no side effect."""
        _, db, registry, _, _ = env
        rows = deletions_for(env, "course[cno=CS650]")
        plan = translate_deletions(registry, db, rows)
        assert ("course", ("CS650", "Advanced Databases", "CS")) in [
            (op.relation, op.row) for op in plan.delta_r
        ]

    def test_rejection_when_all_sources_shared(self, env):
        """Deleting CS320 from the root only: the course tuple also feeds
        the prereq edge under CS650, and no other source exists for the
        db_course row -> reject."""
        _, db, registry, _, _ = env
        rows = deletions_for(env, "course[cno=CS320]")
        with pytest.raises(UpdateRejectedError):
            translate_deletions(registry, db, rows)

    def test_group_covers_shared_source(self, env):
        """Deleting CS320 everywhere is translatable by removing the
        single course(CS320) tuple: both its incoming edges (root and
        CS650's prereq) are in ΔV, and rows where CS320 is the *parent*
        (CS320→CS240) survive relationally — they disappear from the XML
        view by unreachability (GC), not by base deletions."""
        _, db, registry, store, evaluator = env
        result = evaluator.evaluate(parse_xpath("//course[cno=CS320]"), mode="delete")
        delta_v = xdelete(store, result)
        rows = expand_view_deletions(registry, store, db, delta_v)
        plan = translate_deletions(registry, db, rows)
        assert [(op.relation, op.row[0]) for op in plan.delta_r] == [
            ("course", "CS320")
        ]

    def test_empty_delta(self, env):
        _, db, registry, _, _ = env
        plan = translate_deletions(registry, db, [])
        assert len(plan.delta_r) == 0

    def test_applied_deletion_removes_only_doomed_rows(self, env):
        """After ΔR, re-evaluating every view loses exactly ΔV."""
        _, db, registry, _, _ = env
        before = {
            v.name: set(v.evaluate(db).rows) for v in registry.views()
        }
        rows = deletions_for(env, "course[cno=CS650]/prereq/course")
        doomed = {(v.name, r) for v, r in rows}
        plan = translate_deletions(registry, db, rows)
        db.apply(plan.delta_r)
        after = {
            v.name: set(v.evaluate(db).rows) for v in registry.views()
        }
        for name in before:
            lost = {(name, r) for r in before[name] - after[name]}
            gained = after[name] - before[name]
            assert not gained
            assert lost <= doomed
        assert doomed <= {
            (name, r)
            for name in before
            for r in before[name] - after[name]
        }


class TestMinimalDeletion:
    def test_minimal_equals_algorithm_on_single_row(self, env):
        _, db, registry, _, _ = env
        rows = deletions_for(env, "course[cno=CS650]/prereq/course")
        greedy = minimal_deletion_greedy(registry, db, rows)
        exact = minimal_deletion_exact(registry, db, rows)
        assert len(greedy) == len(exact) == 1

    def test_minimal_beats_naive_on_shared_source(self, env):
        """Two enrollments of S02: deleting the student tuple would kill
        both rows at once — but it's side-effect-free only because both
        rows are doomed."""
        _, db, registry, _, _ = env
        rows = deletions_for(env, "//student[ssn=S02]")
        exact = minimal_deletion_exact(registry, db, rows)
        assert exact is not None
        assert len(exact) == 1  # delete student(S02) covers both rows

    def test_infeasible_returns_none(self, env):
        _, db, registry, _, _ = env
        rows = deletions_for(env, "course[cno=CS320]")
        assert minimal_deletion_greedy(registry, db, rows) is None
        assert minimal_deletion_exact(registry, db, rows) is None

    def test_exact_respects_budget(self, env):
        _, db, registry, _, _ = env
        rows = deletions_for(env, "//student[ssn=S02]")
        with pytest.raises(ValueError):
            minimal_deletion_exact(registry, db, rows, max_sources=0)
