"""Tests for the benchmark harness utilities."""

from repro.bench.harness import PhaseAccumulator, format_table
from repro.core.updater import UpdateOutcome


def outcome(accepted=True, **timings):
    out = UpdateOutcome(kind="delete", accepted=accepted)
    out.timings.update(timings)
    return out


class TestPhaseAccumulator:
    def test_phase_mapping(self):
        acc = PhaseAccumulator()
        acc.add(
            outcome(
                validate=0.1,
                xpath=0.2,
                translate_v=0.3,
                translate_r=0.4,
                apply=0.5,
                maintain=0.6,
            )
        )
        assert abs(acc.xpath - 0.3) < 1e-9
        assert abs(acc.translate - 1.2) < 1e-9
        assert abs(acc.maintain - 0.6) < 1e-9
        assert abs(acc.total - 2.1) < 1e-9
        assert abs(acc.foreground - 1.5) < 1e-9

    def test_counts(self):
        acc = PhaseAccumulator()
        acc.add(outcome(accepted=True))
        acc.add(outcome(accepted=False))
        assert acc.count == 2
        assert acc.accepted == 1
        assert acc.rejected == 1

    def test_as_row(self):
        acc = PhaseAccumulator()
        acc.add(outcome(xpath=1.0))
        row = acc.as_row()
        assert row["ops"] == 1
        assert row["xpath_s"] == 1.0


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["a", "bee"], [[1, 2.5], [30, 0.00001]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bee" in lines[1]
        assert "---" in lines[2]
        assert len(lines) == 5

    def test_float_formats(self):
        text = format_table(["x"], [[0.0], [0.12345], [1e-6]])
        assert "0" in text
        assert "0.1234" in text or "0.1235" in text
        assert "e-06" in text

    def test_strings_pass_through(self):
        text = format_table(["x"], [["hello"]])
        assert "hello" in text


class TestUpdateOutcome:
    def test_total_and_foreground(self):
        out = outcome(xpath=1.0, maintain=2.0)
        assert out.total_time == 3.0
        assert out.foreground_time == 1.0
