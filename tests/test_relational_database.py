"""Unit tests for tables, key enforcement, indexes and group deltas."""

import pytest

from repro.errors import KeyConstraintError, SchemaError, UnknownRelationError
from repro.relational.database import Database, DeltaOp, RelationalDelta, Table
from repro.relational.schema import AttrType, RelationSchema


def emp_schema():
    return RelationSchema(
        "emp", [("id", AttrType.INT), ("dept", AttrType.STR)], ["id"]
    )


@pytest.fixture
def table():
    t = Table(emp_schema())
    t.insert((1, "cs"))
    t.insert((2, "cs"))
    t.insert((3, "math"))
    return t


class TestTable:
    def test_len_and_get(self, table):
        assert len(table) == 3
        assert table.get((2,)) == (2, "cs")
        assert table.get((9,)) is None

    def test_contains_full_row(self, table):
        assert (1, "cs") in table
        assert (1, "math") not in table

    def test_duplicate_key_rejected(self, table):
        with pytest.raises(KeyConstraintError):
            table.insert((1, "other"))

    def test_type_checked_on_insert(self, table):
        with pytest.raises(SchemaError):
            table.insert(("x", "cs"))

    def test_delete_by_key(self, table):
        row = table.delete_by_key((1,))
        assert row == (1, "cs")
        assert len(table) == 2
        with pytest.raises(KeyConstraintError):
            table.delete_by_key((1,))

    def test_delete_full_row_must_match(self, table):
        with pytest.raises(KeyConstraintError):
            table.delete((1, "WRONG"))
        table.delete((1, "cs"))
        assert table.get((1,)) is None

    def test_rows_deterministic_order(self, table):
        assert list(table.rows()) == [(1, "cs"), (2, "cs"), (3, "math")]

    def test_lookup_without_index_scans(self, table):
        assert sorted(table.lookup(("dept",), ("cs",))) == [(1, "cs"), (2, "cs")]

    def test_lookup_with_index(self, table):
        table.create_index(("dept",))
        assert table.has_index(("dept",))
        assert sorted(table.lookup(("dept",), ("cs",))) == [(1, "cs"), (2, "cs")]
        assert table.lookup(("dept",), ("nope",)) == []

    def test_index_maintained_on_mutation(self, table):
        table.create_index(("dept",))
        table.insert((4, "cs"))
        table.delete_by_key((1,))
        assert sorted(table.lookup(("dept",), ("cs",))) == [(2, "cs"), (4, "cs")]

    def test_create_index_idempotent(self, table):
        table.create_index(("dept",))
        table.create_index(("dept",))
        assert table.has_index(("dept",))

    def test_create_index_unknown_attr(self, table):
        with pytest.raises(SchemaError):
            table.create_index(("nope",))

    def test_copy_is_independent(self, table):
        clone = table.copy()
        clone.insert((9, "x"))
        assert len(table) == 3
        assert len(clone) == 4


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        db.create_table(emp_schema())
        assert "emp" in db
        assert db.table_names() == ["emp"]
        with pytest.raises(SchemaError):
            db.create_table(emp_schema())

    def test_unknown_relation(self):
        db = Database()
        with pytest.raises(UnknownRelationError):
            db.table("nope")

    def test_insert_all_and_size(self):
        db = Database()
        db.create_table(emp_schema())
        db.insert_all("emp", [(1, "a"), (2, "b")])
        assert db.size() == 2
        assert db.rows("emp") == [(1, "a"), (2, "b")]

    def test_copy_independent(self):
        db = Database()
        db.create_table(emp_schema())
        db.insert("emp", (1, "a"))
        clone = db.copy()
        clone.insert("emp", (2, "b"))
        assert db.size() == 1 and clone.size() == 2


class TestRelationalDelta:
    def test_build_and_iterate(self):
        delta = RelationalDelta()
        delta.insert("emp", (1, "a"))
        delta.delete("emp", (2, "b"))
        assert len(delta) == 2
        kinds = [op.kind for op in delta]
        assert kinds == ["insert", "delete"]

    def test_inverted(self):
        delta = RelationalDelta()
        delta.insert("emp", (1, "a"))
        delta.delete("emp", (2, "b"))
        inv = delta.inverted()
        assert [op.kind for op in inv] == ["insert", "delete"]
        assert inv.ops[0].row == (2, "b")

    def test_apply(self):
        db = Database()
        db.create_table(emp_schema())
        db.insert("emp", (2, "b"))
        delta = RelationalDelta()
        delta.insert("emp", (1, "a"))
        delta.delete("emp", (2, "b"))
        db.apply(delta)
        assert db.rows("emp") == [(1, "a")]

    def test_apply_rolls_back_on_failure(self):
        db = Database()
        db.create_table(emp_schema())
        db.insert("emp", (1, "a"))
        delta = RelationalDelta()
        delta.insert("emp", (2, "b"))
        delta.insert("emp", (1, "duplicate"))  # fails: key exists
        with pytest.raises(KeyConstraintError):
            db.apply(delta)
        assert db.rows("emp") == [(1, "a")]  # (2, 'b') rolled back

    def test_apply_inverse_restores(self):
        db = Database()
        db.create_table(emp_schema())
        db.insert("emp", (1, "a"))
        delta = RelationalDelta()
        delta.delete("emp", (1, "a"))
        delta.insert("emp", (2, "b"))
        db.apply(delta)
        db.apply(delta.inverted())
        assert db.rows("emp") == [(1, "a")]

    def test_deltaop_inverted(self):
        op = DeltaOp("insert", "emp", (1, "a"))
        assert op.inverted().kind == "delete"
        assert op.inverted().inverted() == op

    def test_bool_and_extend(self):
        delta = RelationalDelta()
        assert not delta
        other = RelationalDelta()
        other.insert("emp", (1, "a"))
        delta.extend(other)
        assert delta and len(delta) == 1
