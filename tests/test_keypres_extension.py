"""Tests for make_key_preserving and the alternation content model."""

from repro.atg.model import ATG, ProjectionRule, QueryRule
from repro.atg.publisher import publish_store
from repro.dtd.parser import parse_dtd
from repro.relational.conditions import Col, Eq
from repro.relational.database import Database
from repro.relational.query import SPJQuery
from repro.relational.schema import AttrType, RelationSchema
from repro.relview.keypres import is_key_preserving, make_key_preserving
from repro.workloads.registrar import build_registrar


class TestMakeKeyPreserving:
    def test_already_preserving_is_identity(self):
        _, db = build_registrar()
        query = SPJQuery(
            "q",
            [("course", "c")],
            [("cno", Col("c", "cno"))],
        )
        assert make_key_preserving(query, db) is query

    def test_widens_projection(self):
        _, db = build_registrar()
        query = SPJQuery(
            "q3",
            [("enroll", "e"), ("student", "s")],
            [("ssn", Col("s", "ssn")), ("name", Col("s", "name"))],
            Eq(Col("e", "ssn"), Col("s", "ssn")),
        )
        # e's key (ssn, cno): ssn covered via closure, cno missing.
        assert not is_key_preserving(query, db)
        widened = make_key_preserving(query, db)
        assert is_key_preserving(widened, db)
        assert "__kp_e_cno" in widened.output_names

    def test_widened_query_same_visible_rows(self):
        _, db = build_registrar()
        query = SPJQuery(
            "q3",
            [("enroll", "e"), ("student", "s")],
            [("ssn", Col("s", "ssn")), ("name", Col("s", "name"))],
            Eq(Col("e", "ssn"), Col("s", "ssn")),
        )
        widened = make_key_preserving(query, db)
        narrow = {r[:2] for r in widened.evaluate(db).rows}
        assert narrow == set(query.evaluate(db).rows)
        # The widened view distinguishes S02's two enrollments.
        assert len(widened.evaluate(db).rows) > len(query.evaluate(db).rows)


class TestAlternation:
    """An ATG over an alternation production: payment → cash + card."""

    def _atg_db(self):
        db = Database()
        db.create_table(
            RelationSchema(
                "payment",
                [
                    ("pid", AttrType.STR),
                    ("cash_amount", AttrType.STR),
                    ("card_number", AttrType.STR),
                ],
                ["pid"],
            )
        )
        # A payment is cash XOR card; the unused column is None-encoded
        # as the empty string and mapped to None by the rule convention.
        db.insert_all(
            "payment",
            [("p1", "100", ""), ("p2", "", "4321")],
        )
        dtd = parse_dtd(
            """
            <!ELEMENT doc (payment*)>
            <!ELEMENT payment (cash | card)>
            <!ELEMENT cash (#PCDATA)>
            <!ELEMENT card (#PCDATA)>
            """
        )
        q = SPJQuery(
            "Qdoc_payment",
            [("payment", "p")],
            [
                ("pid", Col("p", "pid")),
                ("cash", Col("p", "cash_amount")),
                ("card", Col("p", "card_number")),
            ],
        )
        atg = ATG(
            dtd,
            {
                "doc": (),
                "payment": ("pid", "cash", "card"),
                "cash": ("cash",),
                "card": ("card",),
            },
            [
                QueryRule("doc", "payment", q),
                ProjectionRule("payment", "cash", ("cash",)),
                ProjectionRule("payment", "card", ("card",)),
            ],
        )
        return atg, db

    def test_publish_smoke(self):
        # The simplified alternation semantics picks the first declared
        # alternative whose projected tuple has no None cells; with the
        # empty-string encoding both project fine, so the first (cash)
        # wins — document the behaviour.
        atg, db = self._atg_db()
        store = publish_store(atg, db)
        payments = [
            n for n in store.nodes() if store.type_of(n) == "payment"
        ]
        assert len(payments) == 2
        for p in payments:
            child_types = [store.type_of(c) for c in store.children_of(p)]
            assert len(child_types) == 1  # exactly one alternative
