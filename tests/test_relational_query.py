"""Unit tests for SPJ query evaluation: filters, joins, params, provenance."""

import pytest

from repro.errors import QueryError
from repro.relational.conditions import (
    And,
    Col,
    Const,
    Eq,
    Ge,
    Gt,
    Le,
    Lt,
    Ne,
    Not,
    Or,
    Param,
    TRUE,
)
from repro.relational.database import Database
from repro.relational.query import SPJQuery
from repro.relational.schema import AttrType, RelationSchema


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        RelationSchema(
            "r", [("a", AttrType.INT), ("b", AttrType.STR)], ["a"]
        )
    )
    database.create_table(
        RelationSchema(
            "s", [("c", AttrType.INT), ("d", AttrType.STR)], ["c"]
        )
    )
    database.insert_all("r", [(1, "x"), (2, "y"), (3, "x")])
    database.insert_all("s", [(1, "u"), (2, "v"), (4, "w")])
    return database


def q(tables, project, where=TRUE, name="q"):
    return SPJQuery(name, tables, project, where)


class TestConstruction:
    def test_requires_tables(self):
        with pytest.raises(QueryError):
            q([], [("a", Col("r", "a"))])

    def test_duplicate_alias_rejected(self):
        with pytest.raises(QueryError):
            q([("r", "x"), ("s", "x")], [("a", Col("x", "a"))])

    def test_requires_projection(self):
        with pytest.raises(QueryError):
            q([("r", "r")], [])

    def test_duplicate_output_names_rejected(self):
        with pytest.raises(QueryError):
            q([("r", "r")], [("a", Col("r", "a")), ("a", Col("r", "b"))])

    def test_unknown_projection_alias_rejected(self):
        with pytest.raises(QueryError):
            q([("r", "r")], [("a", Col("zz", "a"))])

    def test_params_detection(self):
        query = q(
            [("r", "r")],
            [("a", Col("r", "a"))],
            Eq(Col("r", "b"), Param("p")),
        )
        assert query.params() == {"p"}

    def test_output_index(self):
        query = q([("r", "r")], [("a", Col("r", "a")), ("b", Col("r", "b"))])
        assert query.output_index("b") == 1
        with pytest.raises(QueryError):
            query.output_index("zzz")


class TestSelection:
    def test_full_scan(self, db):
        query = q([("r", "r")], [("a", Col("r", "a"))])
        assert sorted(query.evaluate(db).rows) == [(1,), (2,), (3,)]

    def test_eq_const(self, db):
        query = q(
            [("r", "r")],
            [("a", Col("r", "a"))],
            Eq(Col("r", "b"), Const("x")),
        )
        assert sorted(query.evaluate(db).rows) == [(1,), (3,)]

    def test_eq_const_reversed(self, db):
        query = q(
            [("r", "r")],
            [("a", Col("r", "a"))],
            Eq(Const("x"), Col("r", "b")),
        )
        assert sorted(query.evaluate(db).rows) == [(1,), (3,)]

    def test_comparisons(self, db):
        cases = [
            (Lt(Col("r", "a"), Const(2)), [(1,)]),
            (Le(Col("r", "a"), Const(2)), [(1,), (2,)]),
            (Gt(Col("r", "a"), Const(2)), [(3,)]),
            (Ge(Col("r", "a"), Const(2)), [(2,), (3,)]),
            (Ne(Col("r", "a"), Const(2)), [(1,), (3,)]),
        ]
        for where, expected in cases:
            query = q([("r", "r")], [("a", Col("r", "a"))], where)
            assert sorted(query.evaluate(db).rows) == expected

    def test_or_filter(self, db):
        where = Or(Eq(Col("r", "a"), Const(1)), Eq(Col("r", "a"), Const(3)))
        query = q([("r", "r")], [("a", Col("r", "a"))], where)
        assert sorted(query.evaluate(db).rows) == [(1,), (3,)]

    def test_not_filter(self, db):
        where = Not(Eq(Col("r", "b"), Const("x")))
        query = q([("r", "r")], [("a", Col("r", "a"))], where)
        assert sorted(query.evaluate(db).rows) == [(2,)]

    def test_constant_false(self, db):
        where = Eq(Const(1), Const(2))
        query = q([("r", "r")], [("a", Col("r", "a"))], where)
        assert query.evaluate(db).rows == []

    def test_set_semantics_dedupe(self, db):
        query = q([("r", "r")], [("b", Col("r", "b"))])
        assert sorted(query.evaluate(db).rows) == [("x",), ("y",)]


class TestJoin:
    def test_equi_join(self, db):
        query = q(
            [("r", "r"), ("s", "s")],
            [("a", Col("r", "a")), ("d", Col("s", "d"))],
            Eq(Col("r", "a"), Col("s", "c")),
        )
        assert sorted(query.evaluate(db).rows) == [(1, "u"), (2, "v")]

    def test_cartesian_product(self, db):
        query = q(
            [("r", "r"), ("s", "s")],
            [("a", Col("r", "a")), ("c", Col("s", "c"))],
        )
        assert len(query.evaluate(db).rows) == 9

    def test_self_join_with_renaming(self, db):
        query = q(
            [("r", "r1"), ("r", "r2")],
            [("a1", Col("r1", "a")), ("a2", Col("r2", "a"))],
            And(
                Eq(Col("r1", "b"), Col("r2", "b")),
                Lt(Col("r1", "a"), Col("r2", "a")),
            ),
        )
        assert query.evaluate(db).rows == [(1, 3)]

    def test_join_plus_filter(self, db):
        query = q(
            [("r", "r"), ("s", "s")],
            [("a", Col("r", "a"))],
            And(
                Eq(Col("r", "a"), Col("s", "c")),
                Eq(Col("s", "d"), Const("v")),
            ),
        )
        assert query.evaluate(db).rows == [(2,)]

    def test_three_way_join(self, db):
        query = q(
            [("r", "r"), ("s", "s"), ("r", "r2")],
            [("a", Col("r", "a")), ("a2", Col("r2", "a"))],
            And(
                Eq(Col("r", "a"), Col("s", "c")),
                Eq(Col("s", "c"), Col("r2", "a")),
            ),
        )
        assert sorted(query.evaluate(db).rows) == [(1, 1), (2, 2)]

    def test_empty_join(self, db):
        query = q(
            [("r", "r"), ("s", "s")],
            [("a", Col("r", "a"))],
            And(
                Eq(Col("r", "a"), Col("s", "c")),
                Eq(Col("s", "d"), Const("nope")),
            ),
        )
        assert query.evaluate(db).rows == []


class TestParams:
    def test_bound_param(self, db):
        query = q(
            [("r", "r")],
            [("a", Col("r", "a"))],
            Eq(Col("r", "b"), Param("p")),
        )
        assert query.evaluate(db, {"p": "y"}).rows == [(2,)]

    def test_unbound_param_raises(self, db):
        query = q(
            [("r", "r")],
            [("a", Col("r", "a"))],
            Eq(Col("r", "b"), Param("p")),
        )
        with pytest.raises(QueryError):
            query.evaluate(db)

    def test_rebinding(self, db):
        query = q(
            [("r", "r")],
            [("a", Col("r", "a"))],
            Eq(Col("r", "b"), Param("p")),
        )
        assert sorted(query.evaluate(db, {"p": "x"}).rows) == [(1,), (3,)]
        assert query.evaluate(db, {"p": "zzz"}).rows == []


class TestProvenance:
    def test_derivations_track_base_rows(self, db):
        query = q(
            [("r", "r"), ("s", "s")],
            [("a", Col("r", "a"))],
            Eq(Col("r", "a"), Col("s", "c")),
        )
        result = query.evaluate(db, with_derivations=True)
        assert (1,) in result
        derivation = result.derivations[(1,)][0]
        assert derivation == {"r": (1, "x"), "s": (1, "u")}

    def test_multiple_derivations_of_one_row(self, db):
        query = q(
            [("r", "r"), ("s", "s")],
            [("b", Col("r", "b"))],
            Eq(Col("r", "a"), Col("s", "c")),
        )
        result = query.evaluate(db, with_derivations=True)
        # ('x',) derives only from r=(1,'x') here (3 has no s partner).
        assert len(result.derivations[("x",)]) == 1

    def test_result_container(self, db):
        query = q([("r", "r")], [("a", Col("r", "a"))])
        result = query.evaluate(db)
        assert len(result) == 3
        assert (1,) in result
        assert list(result)[0] == (1,)


class TestIndexUsage:
    def test_index_point_lookup(self, db):
        db.table("r").create_index(("b",))
        query = q(
            [("r", "r")],
            [("a", Col("r", "a"))],
            Eq(Col("r", "b"), Const("x")),
        )
        assert sorted(query.evaluate(db).rows) == [(1,), (3,)]

    def test_partial_index_fallback(self, db):
        # Two eq-const conjuncts but only one single-attr index.
        db.table("r").create_index(("b",))
        query = q(
            [("r", "r")],
            [("a", Col("r", "a"))],
            And(Eq(Col("r", "b"), Const("x")), Eq(Col("r", "a"), Const(3))),
        )
        assert query.evaluate(db).rows == [(3,)]
