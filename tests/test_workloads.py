"""Tests for the dataset generators and update workloads."""

import pytest

from repro.atg.publisher import publish_store
from repro.core.updater import XMLViewUpdater
from repro.errors import ReproError
from repro.ops import DeleteOp, InsertOp, ReplaceOp, op_from_json
from repro.workloads import named_workload
from repro.workloads.bom import build_bom
from repro.workloads.queries import make_workload
from repro.workloads.registrar import build_registrar
from repro.workloads.synthetic import SyntheticConfig, build_synthetic


class TestRegistrar:
    def test_instance_shape(self):
        _, db = build_registrar()
        assert len(db.table("course")) == 5
        assert len(db.table("prereq")) == 2
        assert len(db.table("enroll")) == 4

    def test_unpopulated(self):
        _, db = build_registrar(populate=False)
        assert db.size() == 0


class TestSyntheticGenerator:
    def test_deterministic(self, small_synthetic):
        again = build_synthetic(SyntheticConfig(n_c=120, seed=3))
        for name in ("C", "F", "H"):
            assert sorted(small_synthetic.db.rows(name)) == sorted(
                again.db.rows(name)
            )

    def test_sizes_per_paper(self, small_synthetic):
        db = small_synthetic.db
        n = small_synthetic.config.n_c
        assert len(db.table("C")) == n
        assert len(db.table("F")) == n  # |F| = |C|
        # |H| ≈ 3|C| minus bottom layer (leaves have no outgoing edges).
        assert len(db.table("H")) > n

    def test_h_is_acyclic_by_construction(self, small_synthetic):
        for h1, h2 in small_synthetic.db.rows("H"):
            assert h1 < h2  # paper: h1 < h2

    def test_pass_rate_controls_filter(self, small_synthetic):
        ds = small_synthetic
        n = ds.config.n_c
        assert 0.5 * n < len(ds.passing) < n

    def test_seed_changes_data(self):
        a = build_synthetic(SyntheticConfig(n_c=60, seed=1))
        b = build_synthetic(SyntheticConfig(n_c=60, seed=2))
        assert sorted(a.db.rows("H")) != sorted(b.db.rows("H"))

    def test_published_view_respects_filter(self, small_synthetic):
        ds = small_synthetic
        store = publish_store(ds.atg, ds.db)
        published = {
            store.sem_of(n)[0]
            for n in store.nodes()
            if store.type_of(n) == "cnode"
        }
        assert published <= ds.passing

    def test_sharing_present(self, small_synthetic):
        ds = small_synthetic
        store = publish_store(ds.atg, ds.db)
        cnodes = [n for n in store.nodes() if store.type_of(n) == "cnode"]
        shared = sum(1 for n in cnodes if store.in_degree(n) > 1)
        assert shared > 0

    def test_tiny_config_clamps_layers(self):
        config = SyntheticConfig(n_c=6)
        assert config.layers <= 3
        build_synthetic(config)  # must not crash


class TestWorkloads:
    @pytest.mark.parametrize("cls", ["W1", "W2", "W3"])
    def test_delete_workload_shapes(self, small_synthetic, cls):
        ops = make_workload(small_synthetic, "delete", cls, count=5)
        assert 0 < len(ops) <= 5
        for op in ops:
            assert isinstance(op, DeleteOp) and op.kind == "delete"
            if cls == "W1":
                assert "//" in op.path
            if cls == "W3":
                assert "sub/cnode" in op.path  # structural filter

    @pytest.mark.parametrize("cls", ["W1", "W2", "W3"])
    def test_insert_workload_shapes(self, small_synthetic, cls):
        ops = make_workload(small_synthetic, "insert", cls, count=5)
        for op in ops:
            assert isinstance(op, InsertOp) and op.kind == "insert"
            assert op.path.endswith("/sub")
            assert op.element == "cnode"
            assert op.sem

    @pytest.mark.parametrize("cls", ["W1", "W2", "W3"])
    def test_replace_workload_shapes(self, small_synthetic, cls):
        ops = make_workload(small_synthetic, "replace", cls, count=5)
        for op in ops:
            assert isinstance(op, ReplaceOp) and op.kind == "replace"
            assert not op.path.endswith("/sub")  # replaces the cnode itself
            assert op.element == "cnode"
            assert op.sem

    def test_workload_ops_serialize(self, small_synthetic):
        for kind in ("delete", "insert", "replace"):
            for op in make_workload(small_synthetic, kind, "W2", count=3):
                assert op_from_json(op.to_json()) == op

    def test_deterministic(self, small_synthetic):
        a = make_workload(small_synthetic, "delete", "W1", count=5, seed=9)
        b = make_workload(small_synthetic, "delete", "W1", count=5, seed=9)
        assert a == b

    def test_unknown_class_rejected(self, small_synthetic):
        with pytest.raises(ValueError):
            make_workload(small_synthetic, "delete", "W9")

    def test_unknown_kind_rejected(self, small_synthetic):
        with pytest.raises(ValueError):
            make_workload(small_synthetic, "upsert", "W1")

    def test_delete_workloads_select_nodes(self, synthetic_updater):
        updater, dataset = synthetic_updater
        for cls in ("W1", "W2", "W3"):
            ops = make_workload(dataset, "delete", cls, count=3)
            for op in ops:
                result = updater.evaluate_xpath(op.path)
                assert result.targets, f"{cls} path selects nothing: {op.path}"


class TestBOM:
    def test_structure(self):
        atg, db = build_bom()
        assert len(db.table("part")) > 10
        updater = XMLViewUpdater(atg, db)
        assert updater.check_consistency() == []

    def test_catalog_lists_assemblies_only(self):
        atg, db = build_bom()
        store = publish_store(atg, db)
        roots = store.children_of(store.root_id)
        for node in roots:
            pid = store.sem_of(node)[0]
            assert db.table("part").get((pid,))[2] == "assembly"


class TestNamedWorkload:
    @pytest.mark.parametrize(
        "name", ["registrar", "bom", "synthetic:60", "synthetic:60:5", "chain:20"]
    )
    def test_known_names_resolve(self, name):
        atg, db = named_workload(name)
        assert db.size() > 0
        assert atg.dtd.root

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError, match="unknown workload"):
            named_workload("nope")

    def test_bad_parameter_rejected(self):
        with pytest.raises(ReproError, match="bad numeric"):
            named_workload("synthetic:tiny")
