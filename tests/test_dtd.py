"""Unit tests for the DTD model, parser, normalization and validation."""

import pytest

from repro.dtd.model import (
    DTD,
    Alternation,
    Empty,
    PCData,
    Production,
    Sequence,
    Star,
)
from repro.dtd.parser import parse_dtd
from repro.dtd.validate import StaticValidator, validate_update
from repro.errors import DTDError, ValidationError
from repro.workloads.registrar import REGISTRAR_DTD_TEXT
from repro.xpath.parser import parse_xpath


@pytest.fixture
def registrar_dtd():
    return parse_dtd(REGISTRAR_DTD_TEXT)


class TestModel:
    def test_child_types(self):
        assert Sequence(("a", "b")).child_types() == ("a", "b")
        assert Alternation(("a", "b")).child_types() == ("a", "b")
        assert Star("a").child_types() == ("a",)
        assert PCData().child_types() == ()
        assert Empty().child_types() == ()

    def test_root_needs_production(self):
        with pytest.raises(DTDError):
            DTD("r", [])

    def test_dangling_reference(self):
        with pytest.raises(DTDError):
            DTD("r", [Production("r", Sequence(("missing",)))])

    def test_registrar_structure(self, registrar_dtd):
        assert registrar_dtd.root == "db"
        assert registrar_dtd.is_star_child("db", "course")
        assert registrar_dtd.is_star_child("prereq", "course")
        assert not registrar_dtd.is_star_child("course", "cno")
        assert registrar_dtd.is_pcdata("cno")

    def test_recursion_detection(self, registrar_dtd):
        assert registrar_dtd.is_recursive
        recursive = registrar_dtd.recursive_types()
        assert "course" in recursive
        assert "prereq" in recursive
        assert "db" not in recursive
        assert "student" not in recursive

    def test_non_recursive_dtd(self):
        dtd = parse_dtd("<!ELEMENT a (b*)> <!ELEMENT b (#PCDATA)>")
        assert not dtd.is_recursive

    def test_reachable_types(self, registrar_dtd):
        reachable = registrar_dtd.reachable_types()
        assert reachable == {
            "db", "course", "cno", "title", "prereq", "takenBy",
            "student", "ssn", "name",
        }
        assert registrar_dtd.reachable_types("student") == {
            "student", "ssn", "name",
        }

    def test_parents_of(self, registrar_dtd):
        assert registrar_dtd.parents_of("course") == {"db", "prereq"}

    def test_size(self, registrar_dtd):
        assert registrar_dtd.size() == 9 + 9  # 9 types, 9 edges

    def test_str_roundtrips_registrar(self, registrar_dtd):
        text = str(registrar_dtd)
        again = parse_dtd(text)
        assert set(again.types) == set(registrar_dtd.types)


class TestParser:
    def test_pcdata_and_empty(self):
        dtd = parse_dtd("<!ELEMENT a (b)> <!ELEMENT b EMPTY>")
        assert isinstance(dtd.content("b"), Empty)
        assert isinstance(dtd.content("a"), Sequence)

    def test_implicit_pcdata(self):
        dtd = parse_dtd("<!ELEMENT a (b, c)>")
        assert isinstance(dtd.content("b"), PCData)
        assert isinstance(dtd.content("c"), PCData)

    def test_star(self):
        dtd = parse_dtd("<!ELEMENT a (b*)>")
        assert dtd.content("a") == Star("b")

    def test_alternation(self):
        dtd = parse_dtd("<!ELEMENT a (b | c)>")
        assert dtd.content("a") == Alternation(("b", "c"))

    def test_explicit_root_override(self):
        dtd = parse_dtd(
            "<!ELEMENT a (b)> <!ELEMENT b (#PCDATA)>", root="b"
        )
        assert dtd.root == "b"

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(DTDError):
            parse_dtd("<!ELEMENT a (b)> <!ELEMENT a (c)>")

    def test_no_declarations_rejected(self):
        with pytest.raises(DTDError):
            parse_dtd("just text")

    def test_nested_group_normalized(self):
        dtd = parse_dtd("<!ELEMENT a (b, (c | d), e)>")
        content = dtd.content("a")
        assert isinstance(content, Sequence)
        synthetic = content.types[1]
        assert synthetic.startswith("_g")
        assert dtd.content(synthetic) == Alternation(("c", "d"))

    def test_starred_group_normalized(self):
        dtd = parse_dtd("<!ELEMENT a ((b, c)*)>")
        content = dtd.content("a")
        assert isinstance(content, Star)
        inner = dtd.content(content.type)
        assert inner == Sequence(("b", "c"))

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(DTDError):
            parse_dtd("<!ELEMENT a (b, (c>")

    def test_registrar_parse(self):
        dtd = parse_dtd(REGISTRAR_DTD_TEXT)
        assert len(dtd.types) == 9


class TestStaticValidation:
    def test_valid_insert_under_prereq(self, registrar_dtd):
        parents = validate_update(
            registrar_dtd,
            parse_xpath("course[cno=CS650]/prereq"),
            "insert",
            "course",
        )
        assert parents == {"prereq"}

    def test_insert_at_root(self, registrar_dtd):
        parents = validate_update(
            registrar_dtd, parse_xpath("."), "insert", "course"
        )
        assert parents == {"db"}

    def test_insert_wrong_child_type_rejected(self, registrar_dtd):
        with pytest.raises(ValidationError):
            validate_update(
                registrar_dtd,
                parse_xpath("course[cno=CS650]/prereq"),
                "insert",
                "student",
            )

    def test_insert_under_non_star_rejected(self, registrar_dtd):
        with pytest.raises(ValidationError):
            validate_update(
                registrar_dtd, parse_xpath("course"), "insert", "cno"
            )

    def test_insert_unknown_type_rejected(self, registrar_dtd):
        with pytest.raises(ValidationError):
            validate_update(
                registrar_dtd, parse_xpath("."), "insert", "zzz"
            )

    def test_insert_unreachable_path_rejected(self, registrar_dtd):
        with pytest.raises(ValidationError):
            validate_update(
                registrar_dtd,
                parse_xpath("student/prereq"),
                "insert",
                "course",
            )

    def test_insert_requires_subtree_type(self, registrar_dtd):
        with pytest.raises(ValidationError):
            validate_update(registrar_dtd, parse_xpath("."), "insert")

    def test_valid_delete(self, registrar_dtd):
        edges = validate_update(
            registrar_dtd,
            parse_xpath("course[cno=CS650]/prereq/course"),
            "delete",
        )
        assert edges == {("prereq", "course")}

    def test_delete_descendant_path(self, registrar_dtd):
        edges = validate_update(
            registrar_dtd, parse_xpath("//student"), "delete"
        )
        assert edges == {("takenBy", "student")}

    def test_delete_sequence_child_rejected(self, registrar_dtd):
        with pytest.raises(ValidationError):
            validate_update(registrar_dtd, parse_xpath("course/cno"), "delete")

    def test_delete_root_rejected(self, registrar_dtd):
        with pytest.raises(ValidationError):
            validate_update(registrar_dtd, parse_xpath("."), "delete")

    def test_delete_course_everywhere(self, registrar_dtd):
        # //course can be a db child or a prereq child; both are starred.
        edges = validate_update(registrar_dtd, parse_xpath("//course"), "delete")
        assert edges == {("db", "course"), ("prereq", "course")}

    def test_label_filter_refines_types(self, registrar_dtd):
        validator = StaticValidator(registrar_dtd)
        types, _ = validator.reachable_types(
            parse_xpath("//*[label()=student]")
        )
        assert types == {"student"}

    def test_wildcard_step(self, registrar_dtd):
        validator = StaticValidator(registrar_dtd)
        types, _ = validator.reachable_types(parse_xpath("course/*"))
        assert types == {"cno", "title", "prereq", "takenBy"}

    def test_value_filters_kept_conservatively(self, registrar_dtd):
        validator = StaticValidator(registrar_dtd)
        types, _ = validator.reachable_types(
            parse_xpath("course[cno=CS650]")
        )
        assert types == {"course"}

    def test_unknown_kind_rejected(self, registrar_dtd):
        with pytest.raises(ValidationError):
            validate_update(registrar_dtd, parse_xpath("."), "replace")
