"""Tests for store persistence round-trip, undo, and deep chains."""

import pytest

from repro.atg.publisher import publish_store, unfold_to_tree
from repro.core.updater import SideEffectPolicy, XMLViewUpdater
from repro.errors import ReproError, UpdateRejectedError
from repro.relational.sqlite_backend import dump_to_sqlite, load_from_sqlite
from repro.views.loader import store_from_database
from repro.workloads.chains import build_chain
from repro.workloads.registrar import build_registrar
from repro.xmltree.tree import tree_equal
from repro.ops import DeleteOp, InsertOp


class TestStoreRoundtrip:
    def test_memory_roundtrip(self):
        atg, db = build_registrar()
        store = publish_store(atg, db)
        reloaded = store_from_database(atg, store.to_database())
        assert reloaded.num_nodes == store.num_nodes
        assert reloaded.num_edges == store.num_edges
        assert tree_equal(unfold_to_tree(store), unfold_to_tree(reloaded))

    def test_child_order_preserved(self):
        atg, db = build_registrar()
        store = publish_store(atg, db)
        view_db = store.to_database()
        reloaded = store_from_database(atg, view_db)
        for node in store.nodes():
            mine = [store.sem_of(c) for c in store.children_of(node)]
            other = reloaded.lookup(store.type_of(node), store.sem_of(node))
            theirs = [
                reloaded.sem_of(c) for c in reloaded.children_of(other)
            ]
            assert mine == theirs

    def test_sqlite_roundtrip(self):
        atg, db = build_registrar()
        store = publish_store(atg, db)
        view_db = store.to_database()
        conn = dump_to_sqlite(view_db)
        schemas = [view_db.schema(n) for n in view_db.table_names()]
        back = load_from_sqlite(conn, schemas)
        reloaded = store_from_database(atg, back)
        assert tree_equal(unfold_to_tree(store), unfold_to_tree(reloaded))

    def test_missing_table_rejected(self):
        atg, db = build_registrar()
        store = publish_store(atg, db)
        view_db = store.to_database()
        from repro.relational.database import Database

        partial = Database()
        for name in view_db.table_names():
            if name == "gen_course":
                continue
            partial.create_table(view_db.schema(name))
            for row in view_db.rows(name):
                partial.insert(name, row)
        with pytest.raises(ReproError):
            store_from_database(atg, partial)

    def test_reloaded_store_is_updatable(self):
        """A reloaded store backs a working updater."""
        atg, db = build_registrar()
        original = XMLViewUpdater(atg, db)
        reloaded_store = store_from_database(
            atg, original.store.to_database()
        )
        updater = XMLViewUpdater(atg, db)
        updater.store = reloaded_store
        updater.rebuild_structures_only()
        out = updater.apply_op(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
        assert out.accepted
        assert updater.check_consistency() == []


class TestUndo:
    def test_undo_delete(self, registrar_updater):
        u = registrar_updater
        before = u.xml_tree()
        out = u.apply_op(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
        u.undo(out)
        assert tree_equal(u.xml_tree(), before)
        assert u.check_consistency() == []

    def test_undo_insert(self, registrar_updater):
        u = registrar_updater
        before = u.xml_tree()
        out = u.apply_op(InsertOp(
            "course[cno=CS650]/prereq", "course", ("CS500", "Operating Systems")
        ))
        u.undo(out)
        assert tree_equal(u.xml_tree(), before)
        assert u.check_consistency() == []

    def test_undo_resurrects_collected_subtree(self, registrar_updater):
        u = registrar_updater
        before = u.xml_tree()
        out = u.apply_op(DeleteOp("//student[ssn=S03]"))  # GC removes the subtree
        assert u.store.lookup("student", ("S03", "Edsger")) is None
        u.undo(out)
        assert u.store.lookup("student", ("S03", "Edsger")) is not None
        assert tree_equal(u.xml_tree(), before)
        assert u.check_consistency() == []

    def test_undo_new_course_insert(self, registrar_updater):
        u = registrar_updater
        before = u.xml_tree()
        out = u.apply_op(InsertOp("//course[cno=CS240]/prereq", "course", ("CS101", "Intro")))
        u.undo(out)
        assert u.db.table("course").get(("CS101",)) is None
        assert tree_equal(u.xml_tree(), before)
        assert u.check_consistency() == []

    def test_undo_rejected_update_refused(self, registrar_updater):
        from repro.core.updater import UpdateOutcome

        with pytest.raises(UpdateRejectedError):
            registrar_updater.undo(UpdateOutcome(kind="delete", accepted=False))


class TestDeepChains:
    def test_publish_deep_chain(self):
        atg, db = build_chain(depth=300)
        updater = XMLViewUpdater(atg, db)
        # one course per level, all linked
        assert updater.store.num_nodes == 1 + 300 * 5
        assert updater.check_consistency() == []

    def test_descendant_query_to_the_bottom(self):
        atg, db = build_chain(depth=300)
        updater = XMLViewUpdater(atg, db)
        result = updater.evaluate_xpath("//course[cno=K0299]")
        assert len(result.targets) == 1

    def test_filter_propagates_up_the_chain(self):
        """A value filter satisfied only at the bottom must hold at the
        top via // — the bottom-up pass walks the whole chain."""
        atg, db = build_chain(depth=300)
        updater = XMLViewUpdater(atg, db)
        result = updater.evaluate_xpath("course[.//cno=K0299]")
        assert len(result.targets) == 1  # the head K0000

    def test_m_is_quadratic_on_chains(self):
        atg, db = build_chain(depth=100)
        updater = XMLViewUpdater(atg, db)
        # ~5 nodes per level, each ancestor-related to everything below.
        assert len(updater.reach) > 100 * 100 / 2

    def test_update_deep_in_chain(self):
        atg, db = build_chain(depth=200, students=2)
        updater = XMLViewUpdater(
            atg, db, side_effect_policy=SideEffectPolicy.PROPAGATE
        )
        out = updater.apply_op(DeleteOp("//course[cno=K0198]//student[ssn=T000]"))
        assert out.accepted
        assert updater.check_consistency() == []

    def test_branches(self):
        atg, db = build_chain(depth=60, branch_every=10)
        updater = XMLViewUpdater(atg, db)
        result = updater.evaluate_xpath("//course[not(prereq/course)]")
        # leaves: the chain end + every branch leaf
        assert len(result.targets) == 1 + 6
