"""Integration tests: long mixed update sequences on the synthetic data,
cross-module consistency, and the baselines."""

import random

from repro.baselines.naive_reach import squaring_reachability
from repro.baselines.recompute import recompute_structures
from repro.baselines.tree_updater import TreeUpdater
from repro.core.updater import XMLViewUpdater
from repro.workloads.queries import make_workload
from repro.workloads.synthetic import SyntheticConfig, build_synthetic
from repro.ops import DeleteOp, InsertOp


class TestMixedSequences:
    def test_long_mixed_sequence(self, synthetic_updater):
        updater, dataset = synthetic_updater
        rng = random.Random(99)
        accepted = 0
        for i in range(60):
            subs = [
                n
                for n in updater.store.nodes()
                if updater.store.type_of(n) == "sub"
                and updater.store.children_of(n)
            ]
            if rng.random() < 0.5 and subs:
                sub = rng.choice(subs)
                parent_key = updater.store.sem_of(sub)[0]
                child = rng.choice(updater.store.children_of(sub))
                child_key = updater.store.sem_of(child)[0]
                out = updater.apply_op(DeleteOp(
                    f"//cnode[key={parent_key}]/sub/cnode[key={child_key}]"
                ))
            else:
                all_subs = [
                    n
                    for n in updater.store.nodes()
                    if updater.store.type_of(n) == "sub"
                ]
                parent_key = updater.store.sem_of(rng.choice(all_subs))[0]
                row = None
                while row is None:
                    key = rng.randrange(1, dataset.config.n_c + 1)
                    row = dataset.db.table("C").get((key,))
                out = updater.apply_op(InsertOp(
                    f"//cnode[key={parent_key}]/sub", "cnode", (key, row[4])
                ))
            accepted += out.accepted
        assert accepted > 10
        assert updater.check_consistency() == []

    def test_workload_classes_end_to_end(self, synthetic_updater):
        updater, dataset = synthetic_updater
        for cls in ("W1", "W2", "W3"):
            for op in make_workload(dataset, "delete", cls, count=2):
                updater.apply_op(op)
            for op in make_workload(dataset, "insert", cls, count=2):
                updater.apply_op(op)
        assert updater.check_consistency() == []

    def test_incremental_structures_survive_sequence(self, synthetic_updater):
        updater, dataset = synthetic_updater
        ops = make_workload(dataset, "delete", "W2", count=3)
        for op in ops:
            updater.apply_op(op)
        fresh = recompute_structures(updater.store)
        assert updater.reach.equals(fresh.reach)


class TestBaselines:
    def test_tree_updater_matches_dag_counts(self):
        dataset = build_synthetic(SyntheticConfig(n_c=40, seed=5))
        updater = XMLViewUpdater(dataset.atg, dataset.db)
        tree = TreeUpdater(dataset.atg, dataset.db)
        assert tree.size >= updater.store.num_nodes
        dag_hits = len(updater.evaluate_xpath("//cnode").targets)
        tree_hits = len({n.identity for n in tree.evaluate("//cnode")})
        assert dag_hits == tree_hits

    def test_tree_republish_reflects_base_update(self):
        dataset = build_synthetic(SyntheticConfig(n_c=40, seed=5))
        tree = TreeUpdater(dataset.atg, dataset.db)
        key = min(dataset.top_level)
        before = len(tree.evaluate(f"cnode[key={key}]"))
        assert before == 1
        dataset.db.table("C").delete_by_key((key,))
        tree.republish()
        assert tree.evaluate(f"cnode[key={key}]") == []

    def test_squaring_matches_reach_on_synthetic(self):
        dataset = build_synthetic(SyntheticConfig(n_c=60, seed=8))
        updater = XMLViewUpdater(dataset.atg, dataset.db)
        assert updater.reach.equals(squaring_reachability(updater.store))

    def test_recompute_structures_report(self):
        dataset = build_synthetic(SyntheticConfig(n_c=40, seed=5))
        updater = XMLViewUpdater(dataset.atg, dataset.db)
        timings = recompute_structures(updater.store)
        assert timings.total_seconds > 0
        assert timings.reach.equals(updater.reach)


class TestBenchHarnessSmoke:
    def test_fig10b(self):
        from repro.bench.experiments import fig10b_dataset_stats

        rows = fig10b_dataset_stats(sizes=(60,), print_report=False)
        assert rows[0]["C"] == 60
        assert rows[0]["dag_nodes"] > 0
        assert rows[0]["M_pairs"] > 0

    def test_fig11_delete(self):
        from repro.bench.experiments import fig11_series

        rows = fig11_series(
            "delete", classes=("W2",), sizes=(60,), ops_per_class=2,
            print_report=False,
        )
        assert rows and rows[0]["total_s"] > 0

    def test_fig11_insert(self):
        from repro.bench.experiments import fig11_series

        rows = fig11_series(
            "insert", classes=("W2",), sizes=(60,), ops_per_class=2,
            print_report=False,
        )
        assert rows and rows[0]["ops"] == 2

    def test_fig11g(self):
        from repro.bench.experiments import fig11g_vary_selectivity

        rows = fig11g_vary_selectivity(
            n_c=60, fanouts=(1, 2), print_report=False
        )
        assert len(rows) >= 2

    def test_fig11h(self):
        from repro.bench.experiments import fig11h_vary_subtree

        rows = fig11h_vary_subtree(n_c=60, print_report=False)
        assert rows
        sizes = [r["st_nodes"] for r in rows]
        assert sizes == sorted(sizes)  # deeper layers root smaller STs

    def test_table1(self):
        from repro.bench.experiments import table1_incremental_vs_recompute

        rows = table1_incremental_vs_recompute(
            sizes=(60,), ops=2, print_report=False
        )
        assert rows[0]["recompute_M_s"] > 0

    def test_ablations(self):
        from repro.bench.experiments import (
            ablation_dag_vs_tree,
            ablation_minimal_delete,
            ablation_reach,
        )

        assert ablation_reach(sizes=(60,), print_report=False)
        assert ablation_dag_vs_tree(sizes=(40,), print_report=False)
        assert ablation_minimal_delete(n_c=60, ops=2, print_report=False)
