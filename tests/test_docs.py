"""The documentation is part of the contract: links resolve, examples run.

Two checks over ``README.md`` and every ``docs/*.md``:

- **link check** — every relative markdown link points at a file that
  exists in the repository (external ``http(s)``/``mailto`` links are
  skipped: CI must not depend on the network);
- **doctests** — every ``>>>`` example embedded in the markdown runs
  and produces exactly its documented output (``docs/event-schema.md``
  is the *normative* event spec, so its examples double as conformance
  tests for the frozen wire format).

CI additionally runs ``python -m doctest`` on the same files directly,
so the examples stay runnable outside pytest too.
"""

from __future__ import annotations

import doctest
import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO / "README.md", *(REPO / "docs").glob("*.md")],
    key=lambda p: p.name,
)

#: ``[text](target)`` — good enough for the markdown we write; images
#: (``![...]``) match too, which is what we want.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Fenced code blocks, to exclude their contents from link checking
#: (code samples legitimately contain ``[index](expr)``-shaped text).
FENCE = re.compile(r"```.*?```", re.DOTALL)


def doc_files():
    assert DOC_FILES, "no documentation files found"
    return DOC_FILES


@pytest.mark.parametrize("path", doc_files(), ids=lambda p: p.name)
def test_relative_links_resolve(path):
    text = FENCE.sub("", path.read_text(encoding="utf-8"))
    missing = []
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]  # drop same/other-file anchors
        if not target:
            continue  # pure in-page anchor
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            missing.append(target)
    assert not missing, (
        f"{path.relative_to(REPO)} links to missing file(s): {missing}"
    )


@pytest.mark.parametrize("path", doc_files(), ids=lambda p: p.name)
def test_embedded_examples_run(path):
    results = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.ELLIPSIS,
        verbose=False,
    )
    assert results.failed == 0, (
        f"{results.failed} doctest example(s) failed in "
        f"{path.relative_to(REPO)}"
    )


def test_event_schema_examples_exist():
    """The normative spec must actually exercise the wire format —
    an edit that drops its examples silently would unfreeze the schema."""
    spec = (REPO / "docs" / "event-schema.md").read_text(encoding="utf-8")
    parser = doctest.DocTestParser()
    examples = parser.get_examples(spec)
    assert len(examples) >= 6
    sources = "".join(example.source for example in examples)
    for needle in ("to_dict", "to_json", "from_json", "from_dict",
                   "SCHEMA_VERSION", "delta()"):
        assert needle in sources, f"spec lost its {needle} example"
