"""Crash-point fault injection for the durable changefeed log.

Three tools, layered from fastest to most realistic:

- :class:`CrashPointFS` — wraps the WAL's file-system seam and raises
  :class:`CrashInjected` *instead of performing* the Nth mutating
  operation, simulating a process that died at exactly that boundary
  (an un-performed operation leaves no bytes, like a kill between two
  syscalls).
- :class:`RecordingFS` — performs every operation against a real
  directory *and* records the mutating ones with their payloads;
  :func:`materialize` then reproduces the exact on-disk state after any
  prefix of that history in a fresh directory.  One writer run plus
  O(boundaries) cheap materializations sweeps every crash point without
  re-running the writer per point.
- :func:`spawn_writer` / ``kill -9`` — an actual subprocess writer
  killed mid-stream, for the one test where nothing short of SIGKILL
  is convincing.

A *mutating* operation is one that changes directory contents:
``append``, ``write_bytes``, ``rename``, ``truncate``, ``remove``,
``makedirs``.  ``fsync``/``fsync_dir`` are deliberately not crash
boundaries for :func:`materialize`: with no machine-crash simulation,
a completed write survives whether or not it was fsynced, so the state
after "crash at fsync #k" equals the state after the preceding
mutation.  (:class:`CrashPointFS` *can* count them, for tests that
want an exception raised inside a sync path.)
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

from repro.wal.fs import OsFileSystem

#: Operations that change directory contents (crash-sweep boundaries).
MUTATING_OPS = (
    "append",
    "write_bytes",
    "rename",
    "truncate",
    "remove",
    "makedirs",
)

#: Operations CrashPointFS counts when ``count_fsync`` is set.
DURABILITY_OPS = MUTATING_OPS + ("fsync", "fsync_dir")


class CrashInjected(BaseException):
    """The simulated crash.

    Deliberately a ``BaseException``: production code must not be able
    to swallow it with ``except Exception`` — a real SIGKILL is not
    catchable either.
    """


class CrashPointFS:
    """Raise :class:`CrashInjected` instead of the Nth counted operation.

    ``crash_at=N`` (1-based) performs operations 1..N-1 normally and
    raises on the Nth; ``crash_at=None`` never raises (pure counter,
    used to measure a run's total operation count).  ``ops_seen``
    records every counted operation as ``(name, relpath)`` for
    diagnostics.
    """

    def __init__(
        self,
        root: str,
        crash_at: int | None = None,
        inner=None,
        count_fsync: bool = False,
    ):
        self.root = str(root)
        self.inner = inner if inner is not None else OsFileSystem()
        self.crash_at = crash_at
        self.counted = DURABILITY_OPS if count_fsync else MUTATING_OPS
        self.ops_seen: list[tuple[str, str]] = []
        self.crashed = False

    def _rel(self, path: str) -> str:
        return os.path.relpath(path, self.root)

    def _gate(self, name: str, path: str) -> None:
        if name not in self.counted:
            return
        self.ops_seen.append((name, self._rel(path)))
        at = self.crash_at
        if at is not None and len(self.ops_seen) >= at and not self.crashed:
            self.crashed = True
            raise CrashInjected(
                f"crash injected at op #{len(self.ops_seen)}: "
                f"{name}({self._rel(path)})"
            )

    # -- gated passthroughs --------------------------------------------------------

    def append(self, path, data):
        self._gate("append", path)
        self.inner.append(path, data)

    def write_bytes(self, path, data):
        self._gate("write_bytes", path)
        self.inner.write_bytes(path, data)

    def fsync(self, path):
        self._gate("fsync", path)
        self.inner.fsync(path)

    def fsync_dir(self, path):
        self._gate("fsync_dir", path)
        self.inner.fsync_dir(path)

    def rename(self, src, dst):
        self._gate("rename", src)
        self.inner.rename(src, dst)

    def truncate(self, path, size):
        self._gate("truncate", path)
        self.inner.truncate(path, size)

    def remove(self, path):
        self._gate("remove", path)
        self.inner.remove(path)

    def makedirs(self, path):
        self._gate("makedirs", path)
        self.inner.makedirs(path)

    # -- reads are never crash boundaries ------------------------------------------

    def read_bytes(self, path):
        return self.inner.read_bytes(path)

    def exists(self, path):
        return self.inner.exists(path)

    def listdir(self, path):
        return self.inner.listdir(path)

    def close(self):
        self.inner.close()


class RecordingFS:
    """Perform and record every mutating operation (with payloads).

    The recorded history (:attr:`ops`) holds root-relative paths, so
    :func:`materialize` can replay any prefix into a different
    directory.  Reads pass straight through, unrecorded.
    """

    def __init__(self, root: str, inner=None):
        self.root = str(root)
        self.inner = inner if inner is not None else OsFileSystem()
        self.ops: list[tuple] = []

    def _rel(self, path: str) -> str:
        return os.path.relpath(path, self.root)

    def append(self, path, data):
        self.ops.append(("append", self._rel(path), bytes(data)))
        self.inner.append(path, data)

    def write_bytes(self, path, data):
        self.ops.append(("write_bytes", self._rel(path), bytes(data)))
        self.inner.write_bytes(path, data)

    def fsync(self, path):
        self.inner.fsync(path)

    def fsync_dir(self, path):
        self.inner.fsync_dir(path)

    def rename(self, src, dst):
        self.ops.append(("rename", self._rel(src), self._rel(dst)))
        self.inner.rename(src, dst)

    def truncate(self, path, size):
        self.ops.append(("truncate", self._rel(path), size))
        self.inner.truncate(path, size)

    def remove(self, path):
        self.ops.append(("remove", self._rel(path)))
        self.inner.remove(path)

    def makedirs(self, path):
        self.ops.append(("makedirs", self._rel(path)))
        self.inner.makedirs(path)

    def read_bytes(self, path):
        return self.inner.read_bytes(path)

    def exists(self, path):
        return self.inner.exists(path)

    def listdir(self, path):
        return self.inner.listdir(path)

    def close(self):
        self.inner.close()


def materialize(
    ops: list[tuple], target: str, partial_tail: int | None = None
) -> None:
    """Reproduce the on-disk state after a prefix of a recorded history.

    Replays ``ops`` (from a :class:`RecordingFS`) into the ``target``
    directory.  ``partial_tail=k`` additionally applies only the first
    ``k`` bytes of one *extra* trailing ``append``/``write_bytes``
    operation the caller included in ``ops`` — the torn-record case a
    crash mid-``write(2)`` produces.  (``k`` may exceed the final op's
    payload; it is clamped.)
    """
    os.makedirs(target, exist_ok=True)
    history = ops if partial_tail is None else ops[:-1]
    for op in history:
        _replay(op, target)
    if partial_tail is not None:
        kind, rel, data = ops[-1]
        assert kind in ("append", "write_bytes"), kind
        _replay((kind, rel, data[:partial_tail]), target)


def _replay(op: tuple, target: str) -> None:
    kind = op[0]
    path = os.path.join(target, op[1])
    if kind == "append":
        with open(path, "ab") as handle:
            handle.write(op[2])
    elif kind == "write_bytes":
        with open(path, "wb") as handle:
            handle.write(op[2])
    elif kind == "rename":
        os.replace(path, os.path.join(target, op[2]))
    elif kind == "truncate":
        os.truncate(path, op[2])
    elif kind == "remove":
        os.remove(path)
    elif kind == "makedirs":
        os.makedirs(path, exist_ok=True)
    else:  # pragma: no cover - defensive
        raise AssertionError(f"unknown recorded op {kind!r}")


# ---------------------------------------------------------------------------
# The subprocess / SIGKILL driver
# ---------------------------------------------------------------------------

#: Stand-alone writer the kill -9 test runs: an infinite commit stream
#: against a durable registrar service, one line of progress per commit.
WRITER_SCRIPT = textwrap.dedent(
    """
    import itertools, sys
    from repro.ops import DeleteOp, InsertOp
    from repro.service import ViewConfig, open_view
    from repro.workloads.registrar import build_registrar

    wal_dir = sys.argv[1]
    fsync = sys.argv[2] if len(sys.argv) > 2 else "batch"
    atg, db = build_registrar()
    service = open_view(
        atg, db,
        config=ViewConfig(
            wal_dir=wal_dir, wal_fsync=fsync, strict=False,
            wal_checkpoint_every=16,
        ),
    )
    for i in itertools.count():
        cno = ("CS650", "CS320", "CS240")[i % 3]
        service.apply(
            InsertOp(f"//course[cno={cno}]/prereq", "course", ("CS900", "X"))
        )
        service.apply(DeleteOp(f"//course[cno={cno}]/prereq/course[cno=CS900]"))
        print(service.stats()["generation"], flush=True)
    """
)


def spawn_writer(wal_dir: str, fsync: str = "batch") -> subprocess.Popen:
    """Start the stand-alone durable writer as a real subprocess.

    The child prints its generation after every commit (line-buffered),
    so the parent can wait for progress before delivering SIGKILL.
    """
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.Popen(
        [sys.executable, "-c", WRITER_SCRIPT, wal_dir, fsync],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )


def kill_after_progress(proc: subprocess.Popen, commits: int) -> int:
    """SIGKILL the writer once it has reported ``commits`` commits.

    Returns the last generation the writer acknowledged before the
    kill — the recovery floor the recovered service must reach (every
    acknowledged commit at most one fsync batch old may exceed it).
    """
    last = 0
    for _ in range(commits):
        line = proc.stdout.readline()
        if not line:  # pragma: no cover - writer died early; tests assert
            break
        last = int(line)
    proc.kill()  # SIGKILL: no atexit, no finally, no flush
    proc.wait(timeout=30)
    return last
