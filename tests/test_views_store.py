"""Unit tests for the DAG view store (gen tables, edges, materialization)."""

import pytest

from repro.atg.publisher import publish_store
from repro.errors import ReproError
from repro.views.gc import collect_unreachable
from repro.workloads.registrar import build_registrar


@pytest.fixture
def store():
    atg, db = build_registrar()
    return publish_store(atg, db)


class TestIntern:
    def test_same_identity_same_id(self, store):
        id1, new1 = store.intern("course", ("CS650", "Advanced Databases"))
        assert not new1
        id2, new2 = store.intern("course", ("CS650", "Advanced Databases"))
        assert id1 == id2 and not new2

    def test_new_identity_new_id(self, store):
        node, is_new = store.intern("course", ("CSX", "X"))
        assert is_new
        assert store.type_of(node) == "course"
        assert store.sem_of(node) == ("CSX", "X")

    def test_lookup(self, store):
        assert store.lookup("course", ("NOPE", "x")) is None
        node, _ = store.intern("course", ("CSX", "X"))
        assert store.lookup("course", ("CSX", "X")) == node

    def test_ids_dense_and_unique(self, store):
        ids = list(store.nodes())
        assert len(ids) == len(set(ids))

    def test_value_of_pcdata(self, store):
        cno = store.lookup("cno", ("CS650",))
        assert store.value_of(cno) == "CS650"

    def test_value_of_non_pcdata_is_none(self, store):
        course = store.lookup("course", ("CS650", "Advanced Databases"))
        assert store.value_of(course) is None


class TestEdges:
    def test_add_edge_idempotent(self, store):
        parent = store.lookup("prereq", ("CS650",))
        child = store.lookup("course", ("CS320", "Databases"))
        assert store.has_edge(parent, child)
        assert store.add_edge(parent, child) is False  # already there
        assert store.children_of(parent).count(child) == 1

    def test_add_edge_type_checked(self, store):
        course = store.lookup("course", ("CS650", "Advanced Databases"))
        student = store.lookup("student", ("S01", "Ada"))
        with pytest.raises(ReproError):
            store.add_edge(course, student)  # no course->student DTD edge

    def test_remove_edge(self, store):
        parent = store.lookup("prereq", ("CS650",))
        child = store.lookup("course", ("CS320", "Databases"))
        assert store.remove_edge(parent, child)
        assert not store.has_edge(parent, child)
        assert store.remove_edge(parent, child) is False

    def test_rightmost_insert_position(self, store):
        root = store.root_id
        node, _ = store.intern("course", ("CSX", "X"))
        store.add_edge(root, node)
        assert store.children_of(root)[-1] == node

    def test_remove_node_requires_isolation(self, store):
        course = store.lookup("course", ("CS650", "Advanced Databases"))
        with pytest.raises(ReproError):
            store.remove_node(course)

    def test_degrees(self, store):
        s02 = store.lookup("student", ("S02", "Grace"))
        assert store.in_degree(s02) == 2
        assert store.out_degree(s02) == 2  # ssn, name

    def test_size_accounting(self, store):
        assert store.size == store.num_nodes + store.num_edges


class TestReachability:
    def test_reachable_from_root_is_everything_after_publish(self, store):
        assert store.reachable_from_root() == set(store.nodes())

    def test_sharing_rate(self, store):
        assert 0 < store.sharing_rate() < 1


class TestMaterialization:
    def test_to_database_tables(self, store):
        db = store.to_database()
        names = set(db.table_names())
        assert "gen_course" in names
        assert "edge_prereq_course" in names
        assert "edge_db_course" in names

    def test_gen_rows_match_store(self, store):
        db = store.to_database()
        gen_course = db.rows("gen_course")
        assert len(gen_course) == 4
        for row in gen_course:
            assert store.sem_of(row[0]) == row[1:]

    def test_edge_rows_have_positions(self, store):
        db = store.to_database()
        rows = db.rows("edge_db_course")
        positions = sorted(r[2] for r in rows)
        assert positions == [0, 1, 2, 3]

    def test_edge_counts_match(self, store):
        db = store.to_database()
        total = sum(
            len(db.rows(t)) for t in db.table_names() if t.startswith("edge_")
        )
        assert total == store.num_edges


class TestGC:
    def test_nothing_collected_when_connected(self, store):
        result = collect_unreachable(store)
        assert result.removed_node_count == 0

    def test_orphan_subtree_collected(self, store):
        root = store.root_id
        cs240 = store.lookup("course", ("CS240", "Data Structures"))
        # Cut CS240 from both parents (root and prereq of CS320).
        for parent in list(store.parents_of(cs240)):
            store.remove_edge(parent, cs240)
        before = store.num_nodes
        result = collect_unreachable(store)
        assert result.removed_node_count > 0
        assert store.num_nodes < before
        assert store.lookup("course", ("CS240", "Data Structures")) is None
        # Shared student S03 was only under CS240: gone too.
        assert store.lookup("student", ("S03", "Edsger")) is None
        # Still-reachable nodes survive.
        assert store.lookup("course", ("CS320", "Databases")) is not None

    def test_removed_info_describes_collected_nodes(self, store):
        cs240 = store.lookup("course", ("CS240", "Data Structures"))
        for parent in list(store.parents_of(cs240)):
            store.remove_edge(parent, cs240)
        result = collect_unreachable(store)
        # Every removed node is described (type + PCDATA value) even
        # though the store no longer holds it.
        assert set(result.removed_info) == set(result.removed_nodes)
        assert result.removed_info[cs240][0] == "course"
        pcdata = [
            value for _, (kind, value) in result.removed_info.items()
            if kind == "cno"
        ]
        assert "CS240" in pcdata

    def test_gc_keeps_shared_nodes(self, store):
        # Cut CS320 from root only; it stays reachable via CS650's prereq.
        root = store.root_id
        cs320 = store.lookup("course", ("CS320", "Databases"))
        store.remove_edge(root, cs320)
        result = collect_unreachable(store)
        assert result.removed_node_count == 0
        assert store.lookup("course", ("CS320", "Databases")) is not None
