"""Concurrency stress: readers and consumers racing a committing writer.

The staged commit pipeline's ordering contract under real thread
interleavings (see the concurrency-model section of
``docs/architecture.md``):

- **generation fencing** — an event observable on the changefeed (pull
  *or* callback mode) implies subscription maintenance for that
  generation already completed, so a consumer that reads
  ``sub.result()`` after taking generation ``g`` can never see a
  subscription that lags ``g``;
- readers (``service.xpath``) never observe a torn mid-commit view;
- nothing deadlocks or leaks an exception across N readers, M pull
  consumers and a callback consumer while a writer commits a mix of
  single ops and batches.

Marked ``stress``: the plain tier-1 run includes it (it finishes in a
few seconds), CI additionally runs ``-m stress`` as a dedicated smoke
leg under ``timeout``.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.ops import DeleteOp, InsertOp
from repro.service import ViewConfig, open_view
from repro.workloads.registrar import build_registrar

try:
    import numpy  # noqa: F401

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover - no-NumPy CI leg
    _HAVE_NUMPY = False

BACKENDS = [
    "bitset",
    pytest.param(
        "matrix",
        marks=pytest.mark.skipif(
            not _HAVE_NUMPY, reason="NumPy not installed"
        ),
    ),
]

QUERIES = (
    "course[cno=CS650]//course",
    "//course[cno=CS320]",
    "course/prereq/course",
)

DELETE = DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
INSERT = InsertOp(
    "course[cno=CS650]/prereq", "course", ("CS320", "Databases")
)

COMMITS = 40
READERS = 2
PULLERS = 2


def _service(backend):
    atg, db = build_registrar()
    return open_view(
        atg,
        db,
        config=ViewConfig(
            index_backend=backend,
            side_effects="propagate",
            strict=False,
        ),
    )


@pytest.mark.stress
@pytest.mark.parametrize("backend", BACKENDS)
def test_readers_and_consumers_race_a_committing_writer(backend):
    service = _service(backend)
    subs = [service.subscribe(q) for q in QUERIES]

    errors: list[BaseException] = []
    stop = threading.Event()

    def guarded(fn):
        def run():
            try:
                fn()
            except BaseException as exc:  # pragma: no cover - failures
                errors.append(exc)
                stop.set()

        return run

    def write():
        present = True
        try:
            for i in range(COMMITS):
                if i % 5 == 4:
                    # A batch commits once, at the flush generation;
                    # it toggles CS320 out and back (or vice versa),
                    # leaving `present` unchanged.
                    first, second = (
                        (DELETE, INSERT) if present else (INSERT, DELETE)
                    )
                    with service.batch() as batch:
                        batch.apply(first)
                        batch.apply(second)
                else:
                    service.apply(DELETE if present else INSERT)
                    present = not present
        finally:
            stop.set()

    def read():
        while not stop.is_set():
            result = service.xpath(QUERIES[0])
            # A torn read would surface as an exception or a result
            # whose targets reference nodes the store no longer holds;
            # xpath() evaluating under the read lock guarantees neither.
            assert result.targets is not None

    def make_puller(feed):
        def pull():
            while True:
                event = feed.next_event(timeout=0.1)
                if event is None:
                    if stop.is_set() and not feed.pending:
                        return
                    continue
                # Generation fencing: this event became observable only
                # after maintenance for its generation completed.
                for sub in subs:
                    assert sub.generation >= event.generation, (
                        f"event generation {event.generation} published "
                        f"before subscription {sub.path} was current "
                        f"(at {sub.generation})"
                    )

        return pull

    stale: list[tuple[int, int]] = []

    def on_event(event):
        # Callback mode publishes on the committing thread; the fence
        # must hold there too.
        for sub in subs:
            if sub.generation < event.generation:
                stale.append((event.generation, sub.generation))

    service.changefeed(on_event=on_event)
    feeds = [service.changefeed() for _ in range(PULLERS)]

    threads = [threading.Thread(target=guarded(write), name="writer")]
    threads += [
        threading.Thread(target=guarded(read), name=f"reader-{i}")
        for i in range(READERS)
    ]
    threads += [
        threading.Thread(target=guarded(make_puller(feed)), name=f"pull-{i}")
        for i, feed in enumerate(feeds)
    ]
    for thread in threads:
        thread.start()
    # Strict mode (calm machines / CI perf leg) keeps the tight bound;
    # the loose default absorbs scheduler starvation on busy runners —
    # a hang still fails, just later.
    join_timeout = 60 if os.environ.get("REPRO_BENCH_STRICT") else 180
    for thread in threads:
        thread.join(timeout=join_timeout)
    hung = [t.name for t in threads if t.is_alive()]
    assert not hung, f"threads failed to finish: {hung}"
    assert not errors, f"worker raised: {errors[0]!r}"
    assert not stale, f"callback saw stale subscriptions: {stale[:3]}"

    # Quiescent state: every consumer saw every commit, every
    # subscription converged to the final generation, and the view
    # verifies against a republish.
    final = service.stats()["generation"]
    for feed in feeds:
        assert feed.generation == final
    for sub in subs:
        assert sub.generation == final
    assert service.check_consistency() == []
