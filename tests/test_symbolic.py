"""Unit tests for the symbolic layer behind Algorithm insert."""

import pytest

from repro.relational.schema import AttrType
from repro.relview.symbolic import (
    AtomVC,
    AtomVV,
    FreshToken,
    SymVar,
    Template,
    make_atom,
)


def var(attr="b", relation="r", key=(1,), attr_type=AttrType.STR):
    return SymVar(relation, key, attr, attr_type)


class TestSymVar:
    def test_canonical_name(self):
        v = SymVar("course", ("CS101",), "dept", AttrType.STR)
        assert v.name == "course.CS101.dept"
        assert str(v) == v.name

    def test_composite_key_name(self):
        v = SymVar("prereq", ("A", "B"), "cno1", AttrType.STR)
        assert v.name == "prereq.A_B.cno1"

    def test_identity_by_fields(self):
        assert var() == var()
        assert var(attr="c") != var(attr="b")
        assert hash(var()) == hash(var())


class TestMakeAtom:
    def test_var_var(self):
        a, b = var(attr="a"), var(attr="b")
        atom = make_atom(a, b)
        assert isinstance(atom, AtomVV)
        # normalized order regardless of argument order
        assert make_atom(b, a) == atom

    def test_same_var_is_true(self):
        assert make_atom(var(), var()) is True

    def test_var_const_both_sides(self):
        atom1 = make_atom(var(), "x")
        atom2 = make_atom("x", var())
        assert atom1 == atom2 == AtomVC(var(), "x")

    def test_const_const(self):
        assert make_atom("x", "x") is True
        assert make_atom("x", "y") is False


class TestTemplate:
    def test_variables(self):
        v = var()
        t = Template("r", (1,), (1, v, "const"), is_new=True)
        assert t.variables() == [v]

    def test_instantiate(self):
        v = var()
        t = Template("r", (1,), (1, v, "const"), is_new=True)
        assert t.instantiate({v: "filled"}) == (1, "filled", "const")

    def test_instantiate_missing_var_raises(self):
        v = var()
        t = Template("r", (1,), (v,), is_new=True)
        with pytest.raises(KeyError):
            t.instantiate({})


class TestFreshToken:
    def test_rendering(self):
        token = FreshToken(var(), 2)
        assert "⋆" in str(token)
