"""Tests for SQL generation and the SQLite bridge."""

from repro.relational.conditions import And, Col, Const, Eq, Param
from repro.relational.query import SPJQuery
from repro.relational.schema import AttrType, RelationSchema
from repro.relational.sqlgen import (
    create_table_sql,
    insert_sql,
    predicate_sql,
    select_sql,
)
from repro.relational.sqlite_backend import (
    dump_to_sqlite,
    load_from_sqlite,
    run_query_sqlite,
)
from repro.views.registry import build_registry
from repro.workloads.registrar import build_registrar, registrar_schemas


class TestSqlGen:
    def test_create_table(self):
        schema = RelationSchema(
            "t",
            [("a", AttrType.INT), ("b", AttrType.STR), ("c", AttrType.BOOL)],
            ["a"],
        )
        sql = create_table_sql(schema)
        assert "CREATE TABLE t" in sql
        assert "a INTEGER NOT NULL" in sql
        assert "b TEXT NOT NULL" in sql
        assert "PRIMARY KEY (a)" in sql

    def test_insert_statement(self):
        schema = RelationSchema("t", [("a", AttrType.INT)], ["a"])
        assert insert_sql(schema) == "INSERT INTO t (a) VALUES (?)"

    def test_predicate_rendering(self):
        pred = And(
            Eq(Col("c", "dept"), Const("CS")),
            Eq(Col("c", "cno"), Col("p", "cno1")),
        )
        sql = predicate_sql(pred)
        assert "c.dept = 'CS'" in sql
        assert "c.cno = p.cno1" in sql

    def test_string_escaping(self):
        sql = predicate_sql(Eq(Col("c", "x"), Const("O'Brien")))
        assert "'O''Brien'" in sql

    def test_param_binding(self):
        pred = Eq(Col("p", "cno1"), Param("cno"))
        sql = predicate_sql(pred, {"cno": "CS650"})
        assert "'CS650'" in sql

    def test_select_distinct(self):
        query = SPJQuery(
            "q",
            [("course", "c")],
            [("cno", Col("c", "cno"))],
            Eq(Col("c", "dept"), Const("CS")),
        )
        sql = select_sql(query)
        assert sql.startswith("SELECT DISTINCT c.cno AS cno")
        assert "FROM course AS c" in sql


class TestSqliteRoundtrip:
    def test_dump_and_load(self):
        _, db = build_registrar()
        conn = dump_to_sqlite(db)
        back = load_from_sqlite(conn, registrar_schemas())
        for name in db.table_names():
            assert sorted(db.rows(name)) == sorted(back.rows(name))

    def test_queries_match_in_memory_engine(self):
        atg, db = build_registrar()
        registry = build_registry(atg, db)
        conn = dump_to_sqlite(db)
        schemas = {s.name: s for s in registrar_schemas()}
        for view in registry.views():
            mine = set(view.query.evaluate(db).rows)
            theirs = run_query_sqlite(conn, view.query, schemas=schemas)
            assert mine == theirs, view.name

    def test_parameterized_query_on_sqlite(self):
        atg, db = build_registrar()
        rule = [r for r in atg.query_rules() if r.parent == "prereq"][0]
        conn = dump_to_sqlite(db)
        rows = run_query_sqlite(conn, rule.query, bindings={"cno": "CS650"})
        assert rows == {("CS320", "Databases")}

    def test_view_store_persists_to_sqlite(self):
        """The DAG coding itself (gen/edge tables) round-trips to disk."""
        from repro.atg.publisher import publish_store

        atg, db = build_registrar()
        store = publish_store(atg, db)
        view_db = store.to_database()
        conn = dump_to_sqlite(view_db)
        cursor = conn.execute("SELECT COUNT(*) FROM edge_prereq_course")
        assert cursor.fetchone()[0] == len(store.edges[("prereq", "course")])

    def test_bool_columns_roundtrip(self):
        from repro.relational.database import Database

        db = Database()
        schema = RelationSchema(
            "flags", [("id", AttrType.INT), ("flag", AttrType.BOOL)], ["id"]
        )
        db.create_table(schema)
        db.insert_all("flags", [(1, True), (2, False)])
        conn = dump_to_sqlite(db)
        back = load_from_sqlite(conn, [schema])
        assert back.rows("flags") == [(1, True), (2, False)]
