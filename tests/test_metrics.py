"""Tests for the metrics surface: registry, renderer, and exactness.

Three layers:

- unit tests of :mod:`repro.metrics` primitives (counters, gauges,
  fixed-bucket histograms, family labeling, the Prometheus renderer);
- wiring tests — ``service.metrics()`` / ``metrics_text()`` exist, are
  validator-clean, and cost nothing when components run unthreaded
  (the ``NULL_METRICS`` null object);
- **cross-surface exactness** — every counter must equal the ground
  truth already exposed elsewhere (``UpdateOutcome`` payloads,
  ``stats()["pipeline"]``, ``stats()["wal"]``, hub/registry counters),
  on the bitset backend and (when NumPy is present) the matrix backend.
"""

import math

import pytest

from repro.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_METRICS,
    MetricsRegistry,
    render_prometheus,
    validate_exposition,
)
from repro.ops import DeleteOp, InsertOp, ReplaceOp
from repro.service import ViewConfig, open_view
from repro.workloads.registrar import build_registrar
from repro.workloads.synthetic import SyntheticConfig, build_synthetic

try:
    import numpy  # noqa: F401

    _HAVE_NUMPY = True
except ImportError:
    _HAVE_NUMPY = False

BACKENDS = ["bitset"] + (["matrix"] if _HAVE_NUMPY else [])


# -- registry primitives -----------------------------------------------------------


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", "help")
        c.inc()
        c.inc(4)
        assert reg.counter("repro_test_total", "help").value == 5.0

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("repro_test_total", "help")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("repro_test", "help")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0

    def test_histogram_buckets_cumulative(self):
        h = MetricsRegistry().histogram(
            "repro_test_seconds", "help", buckets=(0.1, 1.0)
        )
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.05)
        assert snap["buckets"]["0.1"] == 1
        assert snap["buckets"]["1.0"] == 3  # cumulative
        assert snap["buckets"]["+Inf"] == 4

    def test_histogram_boundary_is_le(self):
        h = MetricsRegistry().histogram(
            "repro_test_seconds", "help", buckets=(1.0,)
        )
        h.observe(1.0)  # le="1.0" includes the boundary
        assert h.snapshot()["buckets"]["1.0"] == 1

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS
        )

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        fam = reg.counter("repro_test_total", "help")
        fam.labels(kind="a").inc()
        fam.labels(kind="b").inc(2)
        d = reg.to_dict()
        assert d["counters"]['repro_test_total{kind="a"}'] == 1.0
        assert d["counters"]['repro_test_total{kind="b"}'] == 2.0

    def test_reregister_same_type_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_test_total", "help")
        b = reg.counter("repro_test_total", "help")
        a.inc()
        assert b.value == 1.0

    def test_reregister_different_type_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_total", "help")
        with pytest.raises(ValueError):
            reg.gauge("repro_test_total", "help")

    def test_null_registry_is_inert(self):
        c = NULL_METRICS.counter("x", "y")
        c.inc()
        c.labels(kind="a").inc(5)
        h = NULL_METRICS.histogram("z", "y")
        h.observe(1.0)
        g = NULL_METRICS.gauge("g", "y")
        g.set(3)
        g.dec()


# -- renderer ----------------------------------------------------------------------


class TestRender:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("repro_b_total", "b counter").labels(kind="x").inc(2)
        reg.counter("repro_a_total", "a counter").inc(1)
        reg.gauge("repro_g", "a gauge").set(1.5)
        h = reg.histogram("repro_h_seconds", "a histogram", buckets=(0.5,))
        h.observe(0.25)
        h.observe(0.75)
        return reg

    def test_renders_families_in_name_order(self):
        text = render_prometheus(self._registry())
        order = [
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("# TYPE")
        ]
        assert order == sorted(order)

    def test_help_and_type_per_family(self):
        text = render_prometheus(self._registry())
        assert "# HELP repro_a_total a counter" in text
        assert "# TYPE repro_a_total counter" in text
        assert "# TYPE repro_g gauge" in text
        assert "# TYPE repro_h_seconds histogram" in text

    def test_histogram_expansion(self):
        text = render_prometheus(self._registry())
        assert 'repro_h_seconds_bucket{le="0.5"} 1' in text
        assert 'repro_h_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_h_seconds_sum 1" in text
        assert "repro_h_seconds_count 2" in text

    def test_byte_deterministic(self):
        assert render_prometheus(self._registry()) == render_prometheus(
            self._registry()
        )

    def test_renderer_output_passes_validator(self):
        assert validate_exposition(render_prometheus(self._registry())) == []


# -- service wiring ---------------------------------------------------------------


def registrar_service(**config):
    atg, db = build_registrar()
    return open_view(atg, db, config=ViewConfig(**config))


class TestServiceSurface:
    def test_metrics_text_is_validator_clean(self):
        service = registrar_service()
        service.apply(
            InsertOp(".", "course", ("CS900", "Metrics"))
        )
        service.xpath("//course")
        assert validate_exposition(service.metrics_text()) == []

    def test_metrics_dict_shape(self):
        service = registrar_service()
        service.apply(InsertOp(".", "course", ("CS901", "Shapes")))
        m = service.metrics()
        assert set(m) == {"counters", "gauges", "histograms"}
        assert m["counters"]["repro_commits_total"] == 1.0
        assert m["gauges"]["repro_generation"] == service.stats()["generation"]

    def test_gauges_track_live_state(self):
        service = registrar_service()
        sub = service.subscribe("//course")
        consumer = service.changefeed()
        m = service.metrics()
        assert m["gauges"]["repro_subscriptions_active"] == 1.0
        assert m["gauges"]["repro_changefeed_consumers"] == 1.0
        assert m["gauges"]["repro_view_nodes"] == service.stats()["nodes"]
        assert m["gauges"]["repro_view_edges"] == service.stats()["edges"]
        consumer.close()
        sub.close()
        assert service.metrics()["gauges"]["repro_changefeed_consumers"] == 0.0

    def test_counters_monotonic_across_scrapes(self):
        service = registrar_service()
        first = service.metrics_text()
        service.apply(InsertOp(".", "course", ("CS902", "Monotone")))
        second = service.metrics_text()
        assert validate_exposition(second, previous=first) == []

    def test_unthreaded_components_stay_silent(self):
        # A bare updater-backed hub/registry/WAL constructed without
        # metrics= must not blow up and must not register anything.
        from repro.changefeed.hub import ChangefeedHub
        from repro.core.updater import XMLViewUpdater
        from repro.subscribe.engine import SubscriptionRegistry

        atg, db = build_registrar()
        updater = XMLViewUpdater(atg, db)
        hub = ChangefeedHub(updater)
        registry = SubscriptionRegistry(updater)
        assert hub.stats()["events_published"] == 0
        assert registry.stats()["events_processed"] == 0


# -- cross-surface exactness -------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestExactness:
    def _loaded_service(self, backend, tmp_path):
        dataset = build_synthetic(SyntheticConfig(n_c=80, seed=5))
        service = open_view(
            dataset.atg,
            dataset.db,
            config=ViewConfig(
                index_backend=backend,
                strict=False,
                wal_dir=str(tmp_path / "wal"),
            ),
        )
        sub = service.subscribe("//cnode")
        consumer = service.changefeed()
        keys = sorted(
            service.store.node_sem[n][0]
            for n in service.xpath("//cnode").targets
        )
        outcomes = []
        outcomes.append(
            service.apply(
                InsertOp(
                    f"//cnode[key={keys[0]}]/sub", "cnode", (9001, "w1")
                )
            )
        )
        outcomes.append(
            service.apply(DeleteOp(f"//cnode[key={keys[1]}]"))
        )
        outcomes.append(
            service.apply(
                ReplaceOp(f"//cnode[key={keys[2]}]", "cnode", (9002, "w2"))
            )
        )
        # One rejected op: path selects nothing.
        outcomes.append(service.apply(DeleteOp("//cnode[key=123456]")))
        service.xpath("//cnode")
        service.xpath("//cnode/sub")
        return service, sub, consumer, outcomes

    def test_commits_match_pipeline_stats(self, backend, tmp_path):
        service, _, _, outcomes = self._loaded_service(backend, tmp_path)
        m = service.metrics()
        pipeline = service.stats()["pipeline"]
        assert m["counters"]["repro_commits_total"] == pipeline["commits"]
        assert (
            m["counters"]["repro_commit_records_sealed_total"]
            == pipeline["records_sealed"]
        )

    def test_ops_counter_matches_outcomes(self, backend, tmp_path):
        service, _, _, outcomes = self._loaded_service(backend, tmp_path)
        m = service.metrics()["counters"]
        for kind in ("insert", "delete", "replace"):
            for accepted in ("true", "false"):
                series = f'repro_ops_total{{accepted="{accepted}",kind="{kind}"}}'
                expected = sum(
                    1
                    for o in outcomes
                    if o.kind == kind
                    and o.accepted == (accepted == "true")
                )
                assert m.get(series, 0.0) == expected, series

    def test_phase_histogram_counts(self, backend, tmp_path):
        service, _, _, _ = self._loaded_service(backend, tmp_path)
        m = service.metrics()["histograms"]
        pipeline = service.stats()["pipeline"]
        mutate = m['repro_commit_phase_seconds{phase="mutate"}']
        assert mutate["count"] == pipeline["commits"]
        maintain = m['repro_commit_phase_seconds{phase="maintain"}']
        assert maintain["count"] == pipeline["records_sealed"]
        # The histogram sums accumulate the identical float sequence the
        # pipeline's own phase_seconds totals do — exact equality.
        assert mutate["sum"] == pipeline["phase_seconds"]["mutate"]
        assert maintain["sum"] == pipeline["phase_seconds"]["maintain"]

    def test_lock_histograms_match_pipeline_totals(self, backend, tmp_path):
        service, _, _, _ = self._loaded_service(backend, tmp_path)
        m = service.metrics()["histograms"]
        pipeline = service.stats()["pipeline"]
        assert m["repro_lock_wait_seconds"]["sum"] == pipeline[
            "lock_wait_seconds"
        ]
        assert m["repro_lock_hold_seconds"]["sum"] == pipeline[
            "lock_hold_seconds"
        ]
        assert m["repro_lock_hold_seconds"]["count"] == pipeline["commits"]

    def test_event_counters_match_hub_and_registry(self, backend, tmp_path):
        service, _, consumer, _ = self._loaded_service(backend, tmp_path)
        m = service.metrics()["counters"]
        stats = service.stats()
        assert (
            m["repro_events_published_total"]
            == stats["changefeed"]["events_published"]
        )
        assert (
            m["repro_subscription_events_total"]
            == stats["subscriptions"]["events_processed"]
        )
        assert consumer.delivered == stats["changefeed"]["events_published"]

    def test_wal_counters_match_stats(self, backend, tmp_path):
        service, _, _, _ = self._loaded_service(backend, tmp_path)
        m = service.metrics()["counters"]
        wal = service.stats()["wal"]
        assert m["repro_wal_records_total"] == wal["records_appended"]
        assert m["repro_wal_fsyncs_total"] == wal["fsyncs"]
        assert m["repro_wal_checkpoints_total"] == wal["checkpoints_written"]
        assert m["repro_wal_rotations_total"] == wal["rotations"]
        assert m["repro_wal_bytes_total"] > 0

    def test_xpath_histogram_counts_reads(self, backend, tmp_path):
        service, _, _, _ = self._loaded_service(backend, tmp_path)
        before = service.metrics()["histograms"]["repro_xpath_seconds"][
            "count"
        ]
        service.xpath("//cnode")
        after = service.metrics()["histograms"]["repro_xpath_seconds"][
            "count"
        ]
        assert after == before + 1
        assert math.isfinite(
            service.metrics()["histograms"]["repro_xpath_seconds"]["sum"]
        )

    def test_exposition_valid_under_load(self, backend, tmp_path):
        service, _, _, _ = self._loaded_service(backend, tmp_path)
        assert validate_exposition(service.metrics_text()) == []
