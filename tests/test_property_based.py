"""Property-based tests (hypothesis) for the core invariants.

- Algorithm Reach equals the transitive-closure oracle on random DAGs;
- the topological order invariant holds on random DAGs and after swaps;
- DAG XPath evaluation equals tree evaluation after unfolding;
- DPLL agrees with brute force on small random CNFs;
- the finite-domain encoder is sound (decoded model satisfies formula);
- random update sequences keep the incremental state consistent with a
  fresh republish (the ΔX(T) = σ(ΔR(I)) invariant).
"""

from __future__ import annotations

import itertools

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.atg.publisher import publish_store, unfold_to_tree
from repro.core.dag_eval import DagXPathEvaluator
from repro.core.reachability import compute_reach
from repro.core.topo import TopoOrder
from repro.core.updater import SideEffectPolicy, XMLViewUpdater
from repro.sat.cnf import CNF
from repro.sat.dpll import dpll_solve
from repro.sat.encode import (
    FDVar,
    VarConst,
    VarVar,
    encode_formula,
    fd_and,
    fd_not,
    fd_or,
)
from repro.workloads.registrar import build_registrar
from repro.workloads.synthetic import SyntheticConfig, build_synthetic
from repro.xpath.parser import parse_xpath
from repro.xpath.tree_eval import evaluate_on_tree
from repro.ops import DeleteOp, InsertOp

# ---------------------------------------------------------------------------
# Random DAG stores (via the registrar schema: prereq edges over courses)
# ---------------------------------------------------------------------------


@st.composite
def prereq_dags(draw):
    """A random acyclic prereq relation over up to 8 courses."""
    n = draw(st.integers(min_value=2, max_value=8))
    edges = set()
    for child in range(1, n):
        parents = draw(
            st.lists(
                st.integers(min_value=0, max_value=child - 1),
                max_size=2,
                unique=True,
            )
        )
        for parent in parents:
            edges.add((parent, child))
    return n, sorted(edges)


def store_from_dag(n, edges):
    atg, db = build_registrar(populate=False)
    for i in range(n):
        db.insert("course", (f"C{i:02d}", f"t{i}", "CS"))
    for parent, child in edges:
        db.insert("prereq", (f"C{parent:02d}", f"C{child:02d}"))
    return publish_store(atg, db)


@given(prereq_dags())
@settings(max_examples=40, deadline=None)
def test_reach_matches_networkx_on_random_dags(dag):
    n, edges = dag
    store = store_from_dag(n, edges)
    topo = TopoOrder.from_store(store)
    reach = compute_reach(store, topo)
    graph = nx.DiGraph()
    graph.add_nodes_from(store.nodes())
    for node in store.nodes():
        for child in store.children_of(node):
            graph.add_edge(node, child)
    assert set(reach.pairs()) == set(nx.transitive_closure(graph).edges())


@given(prereq_dags())
@settings(max_examples=40, deadline=None)
def test_topo_invariant_on_random_dags(dag):
    n, edges = dag
    store = store_from_dag(n, edges)
    topo = TopoOrder.from_store(store)
    for node in store.nodes():
        for child in store.children_of(node):
            assert topo.position(child) < topo.position(node)


PATH_POOL = [
    "course",
    "//course",
    "course/prereq/course",
    "//course[prereq/course]",
    "//course[not(prereq/course)]",
    "course//cno",
    "//*[label()=prereq]",
    "course[cno=C00]//course",
    "//course[cno=C01 or cno=C02]",
]


@given(prereq_dags(), st.sampled_from(PATH_POOL))
@settings(max_examples=60, deadline=None)
def test_dag_eval_matches_tree_eval(dag, path_text):
    n, edges = dag
    store = store_from_dag(n, edges)
    topo = TopoOrder.from_store(store)
    reach = compute_reach(store, topo)
    evaluator = DagXPathEvaluator(store, topo, reach)
    path = parse_xpath(path_text)
    dag_ids = sorted(
        (store.type_of(t), store.sem_of(t))
        for t in evaluator.evaluate(path).targets
    )
    tree = unfold_to_tree(store)
    tree_ids = sorted({n_.identity for n_ in evaluate_on_tree(path, tree)})
    assert dag_ids == tree_ids


# ---------------------------------------------------------------------------
# SAT layer
# ---------------------------------------------------------------------------


@st.composite
def small_cnfs(draw):
    n_vars = draw(st.integers(min_value=1, max_value=5))
    n_clauses = draw(st.integers(min_value=1, max_value=10))
    clauses = []
    for _ in range(n_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        clause = tuple(
            draw(st.integers(min_value=1, max_value=n_vars))
            * draw(st.sampled_from([1, -1]))
            for _ in range(width)
        )
        clauses.append(clause)
    return n_vars, clauses


@given(small_cnfs())
@settings(max_examples=80, deadline=None)
def test_dpll_agrees_with_bruteforce(instance):
    n_vars, clauses = instance
    cnf = CNF()
    for clause in clauses:
        cnf.add_clause(clause)
    cnf.num_vars = max(cnf.num_vars, n_vars)
    model = dpll_solve(cnf)
    brute = any(
        cnf.is_satisfied_by({i + 1: bits[i] for i in range(cnf.num_vars)})
        for bits in itertools.product(
            [False, True], repeat=cnf.num_vars
        )
    )
    assert (model is not None) == brute
    if model is not None:
        assert cnf.is_satisfied_by(model)


_VARS = [FDVar("x"), FDVar("y"), FDVar("z")]
_DOMAINS = {v: ("a", "b", "c") for v in _VARS}


@st.composite
def fd_formulas(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        if draw(st.booleans()):
            return VarConst(
                draw(st.sampled_from(_VARS)), draw(st.sampled_from(["a", "b", "c"]))
            )
        return VarVar(draw(st.sampled_from(_VARS)), draw(st.sampled_from(_VARS)))
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return fd_not(draw(fd_formulas(depth=depth + 1)))
    parts = [
        draw(fd_formulas(depth=depth + 1))
        for _ in range(draw(st.integers(min_value=1, max_value=3)))
    ]
    return fd_and(*parts) if kind == "and" else fd_or(*parts)


def eval_formula(formula, valuation):
    from repro.sat.encode import FFalse, FTrue, FdAnd, FdNot, FdOr

    if formula is FTrue:
        return True
    if formula is FFalse:
        return False
    if isinstance(formula, VarConst):
        return valuation[formula.var] == formula.value
    if isinstance(formula, VarVar):
        return valuation[formula.a] == valuation[formula.b]
    if isinstance(formula, FdAnd):
        return all(eval_formula(p, valuation) for p in formula.parts)
    if isinstance(formula, FdOr):
        return any(eval_formula(p, valuation) for p in formula.parts)
    if isinstance(formula, FdNot):
        return not eval_formula(formula.part, valuation)
    raise TypeError(formula)


@given(fd_formulas())
@settings(max_examples=80, deadline=None)
def test_encoder_sound_and_complete(formula):
    encoding = encode_formula(formula, _DOMAINS)
    model = dpll_solve(encoding.cnf)
    brute = any(
        eval_formula(formula, dict(zip(_VARS, values)))
        for values in itertools.product("abc", repeat=3)
    )
    assert (model is not None) == brute
    if model is not None:
        assert eval_formula(formula, encoding.decode(model))


# ---------------------------------------------------------------------------
# End-to-end: random update sequences keep the state consistent
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(min_value=1, max_value=60),
            st.integers(min_value=1, max_value=60),
        ),
        min_size=1,
        max_size=6,
    )
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_update_sequences_stay_consistent(ops):
    dataset = build_synthetic(SyntheticConfig(n_c=60, seed=13))
    updater = XMLViewUpdater(
        dataset.atg,
        dataset.db,
        side_effect_policy=SideEffectPolicy.PROPAGATE,
        strict=False,
    )
    for kind, a, b in ops:
        if kind == "insert":
            row = dataset.db.table("C").get((b,))
            if row is None:
                continue
            updater.apply_op(InsertOp(f"//cnode[key={a}]/sub", "cnode", (b, row[4])))
        else:
            updater.apply_op(DeleteOp(f"//cnode[key={a}]/sub/cnode[key={b}]"))
    assert updater.check_consistency() == []
