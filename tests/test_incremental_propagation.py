"""Tests for incremental base-update propagation into the view."""

import random

import pytest

from repro.core.updater import SideEffectPolicy, XMLViewUpdater
from repro.relational.database import RelationalDelta
from repro.workloads.registrar import build_registrar
from repro.workloads.synthetic import SyntheticConfig, build_synthetic


@pytest.fixture
def updater():
    atg, db = build_registrar()
    return XMLViewUpdater(atg, db)


class TestInsertPropagation:
    def test_new_prereq_edge(self, updater):
        delta = RelationalDelta()
        delta.insert("prereq", ("CS650", "CS500"))
        report = updater.apply_base_update(delta)
        assert len(report.edges_added) == 1
        assert updater.check_consistency() == []

    def test_new_course_at_root(self, updater):
        delta = RelationalDelta()
        delta.insert("course", ("CS777", "Compilers", "CS"))
        report = updater.apply_base_update(delta)
        assert updater.store.lookup("course", ("CS777", "Compilers")) is not None
        assert report.nodes_created >= 5  # course + cno/title/prereq/takenBy
        assert updater.check_consistency() == []

    def test_non_cs_course_not_published(self, updater):
        delta = RelationalDelta()
        delta.insert("course", ("PH101", "Physics", "PHYS"))
        report = updater.apply_base_update(delta)
        assert updater.store.lookup("course", ("PH101", "Physics")) is None
        assert updater.check_consistency() == []

    def test_cascading_gains(self, updater):
        """A new course plus its prereq edge arrive in one batch: the
        edge's parent (the new course's prereq node) only exists after
        the course is attached — the fixpoint loop must catch it."""
        delta = RelationalDelta()
        delta.insert("course", ("CS777", "Compilers", "CS"))
        delta.insert("prereq", ("CS777", "CS240"))
        updater.apply_base_update(delta)
        course = updater.store.lookup("course", ("CS777", "Compilers"))
        prereq = updater.store.lookup("prereq", ("CS777",))
        cs240 = updater.store.lookup("course", ("CS240", "Data Structures"))
        assert updater.store.has_edge(prereq, cs240)
        assert updater.check_consistency() == []

    def test_new_enrollment_shares_student(self, updater):
        delta = RelationalDelta()
        delta.insert("enroll", ("S02", "CS650"))
        updater.apply_base_update(delta)
        s02 = updater.store.lookup("student", ("S02", "Grace"))
        assert updater.store.in_degree(s02) == 3
        assert updater.check_consistency() == []

    def test_unreachable_gain_ignored(self, updater):
        """A prereq edge under a non-published (non-CS) parent gains a
        relational view row but must not surface in the XML view."""
        delta = RelationalDelta()
        delta.insert("prereq", ("MA100", "CS240"))
        report = updater.apply_base_update(delta)
        assert report.unreachable_gains == 1
        assert updater.check_consistency() == []


class TestDeletePropagation:
    def test_remove_prereq_edge(self, updater):
        delta = RelationalDelta()
        delta.delete("prereq", ("CS650", "CS320"))
        report = updater.apply_base_update(delta)
        assert len(report.edges_removed) == 1
        assert updater.check_consistency() == []

    def test_remove_course_everywhere_with_gc(self, updater):
        row = updater.db.table("course").get(("CS240",))
        delta = RelationalDelta()
        delta.delete("course", row)
        delta.delete("prereq", ("CS320", "CS240"))
        report = updater.apply_base_update(delta)
        assert updater.store.lookup("course", ("CS240", "Data Structures")) is None
        assert report.nodes_collected > 0
        assert updater.check_consistency() == []

    def test_remove_enrollment_keeps_shared_student(self, updater):
        delta = RelationalDelta()
        delta.delete("enroll", ("S02", "CS320"))
        updater.apply_base_update(delta)
        assert updater.store.lookup("student", ("S02", "Grace")) is not None
        assert updater.check_consistency() == []

    def test_mixed_batch(self, updater):
        delta = RelationalDelta()
        delta.delete("prereq", ("CS650", "CS320"))
        delta.insert("prereq", ("CS650", "CS500"))
        delta.insert("student", ("S09", "Barbara"))
        delta.insert("enroll", ("S09", "CS650"))
        updater.apply_base_update(delta)
        assert updater.check_consistency() == []

    def test_empty_delta_noop(self, updater):
        before = updater.store.num_edges
        report = updater.apply_base_update(RelationalDelta())
        assert not report.edges_added and not report.edges_removed
        assert updater.store.num_edges == before


class TestSyntheticPropagation:
    def test_random_base_updates_stay_consistent(self):
        dataset = build_synthetic(SyntheticConfig(n_c=80, seed=17))
        updater = XMLViewUpdater(
            dataset.atg,
            dataset.db,
            side_effect_policy=SideEffectPolicy.PROPAGATE,
            strict=False,
        )
        rng = random.Random(5)
        h_rows = list(dataset.db.rows("H"))
        for i in range(20):
            delta = RelationalDelta()
            if rng.random() < 0.5 and h_rows:
                row = h_rows.pop(rng.randrange(len(h_rows)))
                if updater.db.table("H").get(row) is not None:
                    delta.delete("H", row)
            else:
                h1 = rng.randrange(1, 70)
                h2 = rng.randrange(h1 + 1, 81)
                if updater.db.table("H").get((h1, h2)) is None:
                    delta.insert("H", (h1, h2))
            if delta:
                updater.apply_base_update(delta)
        assert updater.check_consistency() == []

    def test_structures_maintained(self):
        dataset = build_synthetic(SyntheticConfig(n_c=60, seed=2))
        updater = XMLViewUpdater(dataset.atg, dataset.db)
        delta = RelationalDelta()
        delta.insert("H", (3, 44))
        updater.apply_base_update(delta)
        from repro.baselines.recompute import recompute_structures

        fresh = recompute_structures(updater.store)
        assert updater.reach.equals(fresh.reach)
