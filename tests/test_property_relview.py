"""Property-based tests for the relational view-update layer and the
maintenance algorithms under randomized update sequences."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.atg.publisher import publish_store
from repro.baselines.recompute import recompute_structures
from repro.core.dag_eval import DagXPathEvaluator
from repro.core.reachability import compute_reach
from repro.core.topo import TopoOrder
from repro.core.translate import xdelete
from repro.core.updater import SideEffectPolicy, XMLViewUpdater
from repro.errors import UpdateRejectedError
from repro.relview.delete import expand_view_deletions, translate_deletions
from repro.views.registry import build_registry
from repro.workloads.registrar import build_registrar
from repro.xpath.parser import parse_xpath
from repro.ops import DeleteOp, InsertOp


@st.composite
def registrar_instances(draw):
    """A random registrar database: up to 7 courses, random prereqs
    (acyclic by index), random enrollments."""
    n_courses = draw(st.integers(min_value=2, max_value=7))
    prereq_edges = set()
    for child in range(1, n_courses):
        parents = draw(
            st.lists(
                st.integers(min_value=0, max_value=child - 1),
                max_size=2,
                unique=True,
            )
        )
        prereq_edges.update((p, child) for p in parents)
    n_students = draw(st.integers(min_value=0, max_value=3))
    enrollments = set()
    for s in range(n_students):
        courses = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_courses - 1),
                min_size=1,
                max_size=2,
                unique=True,
            )
        )
        enrollments.update((s, c) for c in courses)
    return n_courses, sorted(prereq_edges), sorted(enrollments)


def build_instance(spec):
    n_courses, prereq_edges, enrollments = spec
    atg, db = build_registrar(populate=False)
    for i in range(n_courses):
        db.insert("course", (f"C{i:02d}", f"t{i}", "CS"))
    for p, c in prereq_edges:
        db.insert("prereq", (f"C{p:02d}", f"C{c:02d}"))
    students = {s for s, _ in enrollments}
    for s in students:
        db.insert("student", (f"S{s:02d}", f"n{s}"))
    for s, c in enrollments:
        db.insert("enroll", (f"S{s:02d}", f"C{c:02d}"))
    return atg, db


@given(registrar_instances(), st.integers(min_value=0, max_value=6))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_delete_translation_loses_exactly_delta_v(spec, edge_index):
    """For any prereq edge deletion: after ΔR, re-evaluating every view
    loses exactly the doomed rows and gains nothing."""
    atg, db = build_instance(spec)
    _, prereq_edges, _ = spec
    if not prereq_edges:
        return
    p, c = prereq_edges[edge_index % len(prereq_edges)]
    registry = build_registry(atg, db)
    store = publish_store(atg, db)
    topo = TopoOrder.from_store(store)
    reach = compute_reach(store, topo)
    evaluator = DagXPathEvaluator(store, topo, reach)
    path = parse_xpath(f"//course[cno=C{p:02d}]/prereq/course[cno=C{c:02d}]")
    result = evaluator.evaluate(path, mode="delete")
    if not result.targets:
        return
    delta_v = xdelete(store, result)
    rows = expand_view_deletions(registry, store, db, delta_v)
    doomed = {(v.name, r) for v, r in rows}
    before = {v.name: set(v.evaluate(db).rows) for v in registry.views()}
    try:
        plan = translate_deletions(registry, db, rows)
    except UpdateRejectedError:
        return  # legitimately untranslatable instance
    db.apply(plan.delta_r)
    after = {v.name: set(v.evaluate(db).rows) for v in registry.views()}
    lost = {
        (name, r) for name in before for r in before[name] - after[name]
    }
    gained = {
        (name, r) for name in before for r in after[name] - before[name]
    }
    assert not gained
    assert lost == doomed


@given(
    registrar_instances(),
    st.lists(
        st.tuples(
            st.sampled_from(["insert_edge", "delete_edge", "insert_new"]),
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=6),
        ),
        min_size=1,
        max_size=5,
    ),
)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_maintenance_equals_recompute_after_random_updates(spec, ops):
    """After any accepted update sequence, incrementally maintained M/L
    equal batch recomputation and the view equals a republish."""
    atg, db = build_instance(spec)
    n_courses = spec[0]
    updater = XMLViewUpdater(
        atg, db,
        side_effect_policy=SideEffectPolicy.PROPAGATE,
        strict=False,
    )
    new_counter = [0]
    for kind, a, b in ops:
        ca = f"C{a % n_courses:02d}"
        cb = f"C{b % n_courses:02d}"
        if kind == "insert_edge":
            row = db.table("course").get((cb,))
            if row is None:
                continue
            updater.apply_op(InsertOp(
                f"//course[cno={ca}]/prereq", "course", (cb, row[1])
            ))
        elif kind == "delete_edge":
            updater.apply_op(DeleteOp(f"//course[cno={ca}]/prereq/course[cno={cb}]"))
        else:
            new_counter[0] += 1
            updater.apply_op(InsertOp(
                f"//course[cno={ca}]/prereq",
                "course",
                (f"N{new_counter[0]:02d}", "new"),
            ))
    fresh = recompute_structures(updater.store)
    assert updater.reach.equals(fresh.reach)
    for node in updater.store.nodes():
        for child in updater.store.children_of(node):
            assert updater.topo.position(child) < updater.topo.position(node)
    assert updater.check_consistency() == []
