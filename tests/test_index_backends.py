"""Cross-backend tests for the pluggable reachability-index engine.

Every mutation sequence must leave the set backend (the oracle) and the
bitset backend ``equals()``-identical, with internally consistent
mirrors — the contract that lets :class:`~repro.core.updater
.XMLViewUpdater` treat the backend as a pure representation choice.
"""

import random

import pytest

from repro.atg.publisher import publish_store
from repro.core.reachability import ReachabilityMatrix, compute_reach
from repro.core.topo import TopoOrder
from repro.core.updater import SideEffectPolicy, XMLViewUpdater
import repro.index as index_module
from repro.errors import MissingDependencyError, ReproError
from repro.index import (
    AUTO_BACKEND,
    BACKENDS,
    ENV_BACKEND,
    BitsetReachabilityIndex,
    SetReachabilityIndex,
    build_index,
    make_index,
    resolve_backend,
)
from repro.relview.insert import reset_fresh_counter
from repro.workloads.queries import make_workload
from repro.workloads.registrar import build_registrar
from repro.workloads.synthetic import SyntheticConfig, build_synthetic
from repro.ops import DeleteOp, InsertOp

try:
    import numpy  # noqa: F401

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover - no-NumPy CI leg
    _HAVE_NUMPY = False

ALL_BACKENDS = sorted(BACKENDS)


# ---------------------------------------------------------------------------
# Factory / registry
# ---------------------------------------------------------------------------


class TestFactory:
    def test_backends_registered(self):
        assert {"sets", "bitset"} <= set(ALL_BACKENDS)
        # The matrix backend registers exactly when NumPy imports.
        assert ("matrix" in BACKENDS) == _HAVE_NUMPY

    def test_auto_resolves_to_fastest_available(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        expected = "matrix" if _HAVE_NUMPY else "bitset"
        assert resolve_backend("auto") == AUTO_BACKEND == expected
        assert make_index("auto").backend == expected

    def test_auto_honors_environment_override(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "bitset")
        assert resolve_backend("auto") == "bitset"
        assert isinstance(make_index("auto"), BitsetReachabilityIndex)
        # Explicit names always win over the environment.
        assert resolve_backend("sets") == "sets"
        monkeypatch.setenv(ENV_BACKEND, "auto")
        assert resolve_backend("auto") == AUTO_BACKEND
        monkeypatch.setenv(ENV_BACKEND, "roaring")
        with pytest.raises(ReproError, match="REPRO_INDEX_BACKEND"):
            resolve_backend("auto")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError, match="unknown reachability-index"):
            make_index("roaring")

    def test_matrix_without_numpy_raises_typed_error(self, monkeypatch):
        # Simulate a NumPy-less install by hiding the registry entry.
        monkeypatch.delitem(index_module.BACKENDS, "matrix", raising=False)
        monkeypatch.setattr(index_module, "AUTO_BACKEND", "bitset")
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        assert index_module.resolve_backend("auto") == "bitset"
        with pytest.raises(
            MissingDependencyError, match=r"repro\[fast\]"
        ):
            index_module.resolve_backend("matrix")

    def test_legacy_names_preserved(self):
        # The historical entry points stay importable and set-backed.
        assert ReachabilityMatrix is SetReachabilityIndex
        atg, db = build_registrar()
        store = publish_store(atg, db)
        topo = TopoOrder.from_store(store)
        assert isinstance(compute_reach(store, topo), SetReachabilityIndex)


# ---------------------------------------------------------------------------
# Satellite: no internal-state aliasing from anc()/desc()
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestNoAliasing:
    def test_mutating_returned_rows_does_not_corrupt(self, backend):
        m = make_index(backend)
        m.insert(1, 2)
        m.insert(1, 3)
        m.anc(2).add(99)
        m.desc(1).discard(2)
        m.anc_of_set([2, 3]).clear()
        m.desc_of_set([1]).add(7)
        assert m.anc(2) == {1}
        assert m.desc(1) == {2, 3}
        assert len(m) == 2
        assert m.check_invariants() == []

    def test_missing_rows_are_detached_too(self, backend):
        m = make_index(backend)
        m.anc(5).add(1)  # rowless node: must not create shared state
        m.desc(5).add(1)
        assert m.anc(5) == set()
        assert len(m) == 0


# ---------------------------------------------------------------------------
# Bulk-operation semantics (against hand-computed expectations)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestBulkOps:
    def test_extend_ancestors(self, backend):
        m = make_index(backend)
        m.insert(1, 2)  # anc(2) = {1}
        added = m.extend_ancestors(4, [2, 3])
        # gains {2} ∪ anc(2) ∪ {3} ∪ anc(3) = {1, 2, 3}
        assert added == 3
        assert m.anc(4) == {1, 2, 3}
        assert m.extend_ancestors(4, [2, 3]) == 0  # idempotent
        assert m.check_invariants() == []

    def test_add_cross_pairs(self, backend):
        m = make_index(backend)
        m.insert(1, 10)
        added = m.add_cross_pairs({1, 2}, [10, 11])
        assert added == 3  # (1,10) pre-existing
        assert m.anc(10) == {1, 2} and m.anc(11) == {1, 2}
        assert m.desc(1) == {10, 11} and m.desc(2) == {10, 11}
        assert m.add_cross_pairs({1, 2}, [10, 11]) == 0
        assert m.add_cross_pairs(set(), [10]) == 0
        assert m.check_invariants() == []

    def test_add_anc_closure_pairs(self, backend):
        m = make_index(backend)
        m.insert(1, 2)  # anc(2) = {1}
        added = m.add_anc_closure_pairs([2], [7, 8])
        # upper = {2} ∪ anc(2) = {1, 2}
        assert added == 4
        assert m.anc(7) == {1, 2} and m.anc(8) == {1, 2}
        assert m.check_invariants() == []

    def test_retain_ancestors(self, backend):
        m = make_index(backend)
        m.insert(1, 2)
        for anc in (1, 2, 3):
            m.insert(anc, 9)
        removed = m.retain_ancestors(9, [2])
        # keep = {2} ∪ anc(2) = {1, 2}: pair (3, 9) goes
        assert removed == 1
        assert m.anc(9) == {1, 2}
        assert m.retain_ancestors(9, [2]) == 0
        assert m.retain_ancestors(9, []) == 2  # no parents: row emptied
        assert m.anc(9) == set()
        assert m.check_invariants() == []

    def test_retain_never_adds(self, backend):
        m = make_index(backend)
        m.insert(5, 6)
        assert m.retain_ancestors(7, [6]) == 0  # rowless node untouched
        assert m.anc(7) == set()

    def test_desc_view_membership(self, backend):
        m = make_index(backend)
        m.insert(1, 2)
        m.insert(1, 3)
        view = m.desc_view(1)
        assert 2 in view and 3 in view and 4 not in view
        assert sorted(view) == [2, 3]
        assert len(view) == 2
        assert len(m.desc_view(42)) == 0


# ---------------------------------------------------------------------------
# Satellite: invariants under random operation interleavings
# ---------------------------------------------------------------------------


def _reference_pairs(ops):
    """Replay ops against a plain set of pairs (the semantics oracle)."""
    pairs: set[tuple[int, int]] = set()
    for op in ops:
        kind = op[0]
        if kind == "insert":
            pairs.add((op[1], op[2]))
        elif kind == "remove":
            pairs.discard((op[1], op[2]))
        elif kind == "set_ancestors":
            _, node, ancestors = op
            pairs = {(a, d) for (a, d) in pairs if d != node}
            pairs |= {(a, node) for a in ancestors}
        else:  # drop_node
            _, node = op
            pairs = {(a, d) for (a, d) in pairs if node not in (a, d)}
    return pairs


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_interleavings_agree(seed):
    rng = random.Random(seed)
    nodes = range(40)
    ops = []
    for _ in range(600):
        roll = rng.random()
        if roll < 0.45:
            ops.append(("insert", rng.choice(nodes), rng.choice(nodes)))
        elif roll < 0.65:
            ops.append(("remove", rng.choice(nodes), rng.choice(nodes)))
        elif roll < 0.85:
            ancestors = set(rng.sample(nodes, rng.randrange(0, 8)))
            ops.append(("set_ancestors", rng.choice(nodes), ancestors))
        else:
            ops.append(("drop_node", rng.choice(nodes)))

    indexes = {name: make_index(name) for name in ALL_BACKENDS}
    for i, op in enumerate(ops):
        for index in indexes.values():
            getattr(index, op[0])(*op[1:])
        if i % 97 == 0:  # periodic deep checks, cheap enough
            for index in indexes.values():
                assert index.check_invariants() == []

    expected = _reference_pairs(ops)
    for name, index in indexes.items():
        assert index.check_invariants() == [], name
        assert len(index) == len(expected), name
        assert set(index.pairs()) == expected, name
    first, *rest = (indexes[n] for n in ALL_BACKENDS)
    for other in rest:
        assert first.equals(other) and other.equals(first)
    # copies are independent (of every backend)
    for index in indexes.values():
        clone = index.copy()
        assert clone.equals(index)
        if (38, 39) in clone:
            clone.remove(38, 39)
        else:
            clone.insert(38, 39)
        assert not clone.equals(index)
        assert index.equals(first)  # the original is untouched


@pytest.mark.parametrize("seed", [0, 1])
def test_dense_id_reuse_after_drop_agrees(seed):
    """Dense-id churn: drop a block of node ids, then rebuild rows for
    the *same* ids (the bitset backend maps them onto the same machine
    words) — stale bits must not leak into the reused rows."""
    rng = random.Random(100 + seed)
    nodes = list(range(24))
    ops = []
    for node in nodes:  # a dense triangular seed matrix
        ops.append(("set_ancestors", node, set(range(node))))
    recycled = rng.sample(nodes, 10)
    for node in recycled:
        ops.append(("drop_node", node))
    for node in recycled:  # same ids, fresh (different) rows
        ancestors = set(rng.sample(nodes, rng.randrange(0, 12))) - {node}
        ops.append(("set_ancestors", node, ancestors))
        for _ in range(3):
            ops.append(("insert", rng.choice(nodes), node))
            ops.append(("remove", rng.choice(nodes), node))

    indexes = {name: make_index(name) for name in ALL_BACKENDS}
    for op in ops:
        for index in indexes.values():
            getattr(index, op[0])(*op[1:])
    expected = _reference_pairs(ops)
    for name, index in indexes.items():
        assert index.check_invariants() == [], name
        assert set(index.pairs()) == expected, name
    first, *rest = (indexes[n] for n in ALL_BACKENDS)
    for other in rest:
        assert first.equals(other)


# ---------------------------------------------------------------------------
# Algorithm Reach: backends agree with the oracle on real stores
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_build_index_matches_oracle(backend):
    atg, db = build_registrar()
    store = publish_store(atg, db)
    topo = TopoOrder.from_store(store)
    oracle = compute_reach(store, topo)  # sets backend
    index = build_index(store, topo, backend)
    assert index.check_invariants() == []
    assert index.equals(oracle) and oracle.equals(index)
    assert len(index) == len(oracle)
    root = store.root_id
    assert index.desc(root) == set(store.nodes()) - {root}


# ---------------------------------------------------------------------------
# End-to-end: the bitset updater is byte-identical to the sets updater
# ---------------------------------------------------------------------------


def _delta_v_ops(outcome):
    return [
        (op.kind, op.parent_type, op.child_type, op.parent, op.child)
        for op in (outcome.delta_v or [])
    ]


def _delta_r_ops(outcome):
    return list(outcome.delta_r or [])


def _run_registrar_workload(backend):
    reset_fresh_counter()  # identical fresh constants across both runs
    atg, db = build_registrar()
    updater = XMLViewUpdater(
        atg,
        db,
        side_effect_policy=SideEffectPolicy.PROPAGATE,
        strict=False,
        index_backend=backend,
    )
    script = [
        ("delete", "course[cno='CS650']/prereq/course[cno='CS320']"),
        ("insert", "course[cno='CS650']/prereq", "course",
         ("CS991", "Grown Topics")),
        ("delete", "//course[cno='CS240']"),
        ("insert", "course[cno='CS650']/prereq", "course",
         ("CS992", "More Topics")),
    ]
    outcomes = []
    for op in script:
        if op[0] == "delete":
            outcomes.append(updater.apply_op(DeleteOp(op[1])))
        else:
            outcomes.append(updater.apply_op(InsertOp(op[1], op[2], op[3])))
    return updater, outcomes


def test_registrar_backends_byte_identical():
    u_sets, o_sets = _run_registrar_workload("sets")
    u_bits, o_bits = _run_registrar_workload("bitset")
    assert len(o_sets) == len(o_bits)
    for a, b in zip(o_sets, o_bits):
        assert a.accepted == b.accepted
        assert a.targets == b.targets
        assert _delta_v_ops(a) == _delta_v_ops(b)
        assert _delta_r_ops(a) == _delta_r_ops(b)
    assert u_sets.reach.equals(u_bits.reach)
    assert u_bits.reach.check_invariants() == []
    assert u_sets.check_consistency() == []
    assert u_bits.check_consistency() == []


def test_synthetic_backends_byte_identical():
    runs = {}
    for backend in ALL_BACKENDS:
        reset_fresh_counter()
        dataset = build_synthetic(SyntheticConfig(n_c=80, seed=9))
        updater = XMLViewUpdater(
            dataset.atg,
            dataset.db,
            side_effect_policy=SideEffectPolicy.PROPAGATE,
            strict=False,
            index_backend=backend,
        )
        outcomes = []
        for cls in ("W1", "W2", "W3"):
            for op in make_workload(dataset, "delete", cls, count=3):
                outcomes.append(updater.apply_op(op))
            for op in make_workload(dataset, "insert", cls, count=3):
                outcomes.append(updater.apply_op(op))
        runs[backend] = (updater, outcomes)

    (u_a, o_a), *others = (runs[n] for n in ALL_BACKENDS)
    for u_b, o_b in others:
        for a, b in zip(o_a, o_b):
            assert a.accepted == b.accepted
            assert _delta_v_ops(a) == _delta_v_ops(b)
            assert _delta_r_ops(a) == _delta_r_ops(b)
        assert u_a.reach.equals(u_b.reach)
    for updater, _ in runs.values():
        assert updater.check_consistency() == []
        assert updater.reach.check_invariants() == []
