"""Tests for the exposition validator (library + CLI wrapper).

``validate_exposition`` is the other half of the metrics contract: the
renderer promises well-formed Prometheus text, the validator is what
*checks* that promise in CI and across scrapes.  Each malformation gets
a pointed message naming the offending series — these tests pin both
the detection and the message, so a CI failure reads as a diagnosis.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.metrics import MetricsRegistry, render_prometheus
from repro.metrics.validate import parse_exposition, validate_exposition

SCRIPT = Path(__file__).parent.parent / "scripts" / "validate_metrics.py"

VALID = """\
# HELP repro_ops_total Ops applied.
# TYPE repro_ops_total counter
repro_ops_total{kind="insert"} 3
repro_ops_total{kind="delete"} 1
# HELP repro_generation Current generation.
# TYPE repro_generation gauge
repro_generation 4
# HELP repro_lat_seconds Latency.
# TYPE repro_lat_seconds histogram
repro_lat_seconds_bucket{le="0.01"} 2
repro_lat_seconds_bucket{le="+Inf"} 4
repro_lat_seconds_sum 0.5
repro_lat_seconds_count 4
"""


def problems(text: str, previous: str | None = None) -> str:
    return "\n".join(validate_exposition(text, previous=previous))


class TestValid:
    def test_hand_written_document_passes(self):
        assert validate_exposition(VALID) == []

    def test_rendered_registry_passes(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "A.").labels(x="1").inc(2)
        registry.gauge("b", "B.").set(7)
        registry.histogram("c_seconds", "C.").observe(0.003)
        assert validate_exposition(render_prometheus(registry)) == []

    def test_empty_document_passes(self):
        assert validate_exposition("") == []


class TestMalformations:
    def test_missing_help(self):
        text = "# TYPE x_total counter\nx_total 1\n"
        assert "series x_total has no # HELP line" in problems(text)

    def test_missing_type(self):
        text = "# HELP x_total X.\nx_total 1\n"
        assert "series x_total has no # TYPE line" in problems(text)

    def test_unannounced_series(self):
        assert (
            "series x_total has no # HELP/# TYPE announcement"
            in problems("x_total 1\n")
        )

    def test_unknown_type(self):
        text = "# HELP x X.\n# TYPE x summary\nx 1\n"
        assert "unknown type 'summary'" in problems(text)

    def test_duplicate_series(self):
        text = (
            "# HELP x_total X.\n# TYPE x_total counter\n"
            'x_total{k="a"} 1\nx_total{k="a"} 2\n'
        )
        assert 'duplicate series x_total{k="a"}' in problems(text)

    def test_duplicate_detection_is_label_aware(self):
        text = (
            "# HELP x_total X.\n# TYPE x_total counter\n"
            'x_total{k="a"} 1\nx_total{k="b"} 2\n'
        )
        assert validate_exposition(text) == []

    def test_negative_counter(self):
        text = "# HELP x_total X.\n# TYPE x_total counter\nx_total -3\n"
        assert "counter x_total is negative (-3)" in problems(text)

    def test_non_numeric_value(self):
        text = "# HELP x_total X.\n# TYPE x_total counter\nx_total NOPE\n"
        assert "non-numeric value 'NOPE'" in problems(text)

    def test_unparseable_sample(self):
        text = "# HELP x X.\n# TYPE x gauge\n!!! what\n"
        assert "unparseable sample" in problems(text)


class TestHistogramCoherence:
    def _doc(self, body: str) -> str:
        return "# HELP h H.\n# TYPE h histogram\n" + body

    def test_non_cumulative_buckets(self):
        text = self._doc(
            'h_bucket{le="0.01"} 5\nh_bucket{le="+Inf"} 3\n'
            "h_sum 1\nh_count 3\n"
        )
        out = problems(text)
        assert "bucket le=+Inf count 3" in out
        assert "must be cumulative" in out

    def test_missing_inf_bucket(self):
        text = self._doc('h_bucket{le="0.01"} 1\nh_sum 1\nh_count 1\n')
        assert "histogram h: no '+Inf' bucket" in problems(text)

    def test_count_bucket_mismatch(self):
        text = self._doc(
            'h_bucket{le="+Inf"} 4\nh_sum 1\nh_count 9\n'
        )
        assert (
            "_count is 9 but the +Inf bucket holds 4" in problems(text)
        )

    def test_missing_sum_and_count(self):
        text = self._doc('h_bucket{le="+Inf"} 4\n')
        out = problems(text)
        assert "histogram h: missing _count series" in out
        assert "histogram h: missing _sum series" in out

    def test_bare_histogram_sample(self):
        text = self._doc("h 4\n")
        assert "no _bucket/_sum/_count suffix" in problems(text)


class TestMonotonicity:
    def test_counter_regression_detected(self):
        before = VALID
        after = VALID.replace(
            'repro_ops_total{kind="insert"} 3',
            'repro_ops_total{kind="insert"} 2',
        )
        out = problems(after, previous=before)
        assert (
            'counter repro_ops_total{kind="insert"} went backwards: '
            "3 -> 2" in out
        )

    def test_histogram_suffixes_are_monotonic_too(self):
        after = VALID.replace(
            "repro_lat_seconds_count 4", "repro_lat_seconds_count 1"
        ).replace(
            'repro_lat_seconds_bucket{le="+Inf"} 4',
            'repro_lat_seconds_bucket{le="+Inf"} 1',
        )
        out = problems(after, previous=VALID)
        assert "repro_lat_seconds_count went backwards" in out

    def test_gauges_may_move_freely(self):
        after = VALID.replace("repro_generation 4", "repro_generation 1")
        assert validate_exposition(after, previous=VALID) == []

    def test_growth_is_fine(self):
        after = VALID.replace(
            'repro_ops_total{kind="insert"} 3',
            'repro_ops_total{kind="insert"} 30',
        )
        assert validate_exposition(after, previous=VALID) == []


class TestParseExposition:
    def test_families_and_samples(self):
        families, samples, parse_problems = parse_exposition(VALID)
        assert parse_problems == []
        assert families["repro_ops_total"] == {"help": True,
                                               "type": "counter"}
        assert samples[("repro_ops_total", (("kind", "insert"),))] == 3.0
        assert samples[("repro_generation", ())] == 4.0


class TestCLI:
    def _run(self, *argv, stdin=None):
        return subprocess.run(
            [sys.executable, str(SCRIPT), *argv],
            input=stdin,
            capture_output=True,
            text=True,
        )

    def test_valid_file_exits_zero(self, tmp_path):
        path = tmp_path / "m.prom"
        path.write_text(VALID)
        result = self._run(str(path))
        assert result.returncode == 0, result.stderr
        assert "no problems" in result.stdout

    def test_stdin_dash(self):
        result = self._run("-", stdin=VALID)
        assert result.returncode == 0
        # 7 sample lines in the document.
        assert "ok: 7 sample(s)" in result.stdout

    def test_invalid_exits_one_with_pointed_message(self, tmp_path):
        path = tmp_path / "m.prom"
        path.write_text("x_total 1\n")
        result = self._run(str(path))
        assert result.returncode == 1
        assert "no # HELP/# TYPE announcement" in result.stderr
        assert "1 problem(s) found" in result.stderr

    def test_previous_scrape_gate(self, tmp_path):
        before = tmp_path / "before.prom"
        after = tmp_path / "after.prom"
        before.write_text(VALID)
        after.write_text(
            VALID.replace(
                'repro_ops_total{kind="delete"} 1',
                'repro_ops_total{kind="delete"} 0',
            )
        )
        result = self._run(str(after), "--previous", str(before))
        assert result.returncode == 1
        assert "went backwards: 1 -> 0" in result.stderr

    def test_missing_file_exits_two(self, tmp_path):
        result = self._run(str(tmp_path / "nope.prom"))
        assert result.returncode == 2
        assert "error:" in result.stderr
