"""Unit tests for relation schemas and attribute typing."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import AttrType, Attribute, RelationSchema


def make_schema():
    return RelationSchema(
        "emp",
        [("id", AttrType.INT), ("name", AttrType.STR), ("active", AttrType.BOOL)],
        ["id"],
    )


class TestAttrType:
    def test_python_types(self):
        assert AttrType.INT.python_type is int
        assert AttrType.STR.python_type is str
        assert AttrType.BOOL.python_type is bool
        assert AttrType.FLOAT.python_type is float

    def test_bool_is_finite(self):
        assert AttrType.BOOL.is_finite
        assert AttrType.BOOL.domain() == (False, True)

    def test_infinite_types_have_no_domain(self):
        for t in (AttrType.INT, AttrType.STR, AttrType.FLOAT):
            assert not t.is_finite
            with pytest.raises(SchemaError):
                t.domain()

    def test_int_attribute_rejects_bool(self):
        attr = Attribute("x", AttrType.INT)
        assert attr.accepts(5)
        assert not attr.accepts(True)

    def test_float_accepts_int(self):
        attr = Attribute("x", AttrType.FLOAT)
        assert attr.accepts(5)
        assert attr.accepts(5.5)
        assert not attr.accepts(True)

    def test_str_attribute(self):
        attr = Attribute("x", AttrType.STR)
        assert attr.accepts("a")
        assert not attr.accepts(1)


class TestRelationSchema:
    def test_basic_construction(self):
        schema = make_schema()
        assert schema.arity == 3
        assert schema.attribute_names == ("id", "name", "active")
        assert schema.key == ("id",)
        assert schema.key_indexes == (0,)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", [("a", AttrType.INT)], ["a"])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(
                "r", [("a", AttrType.INT), ("a", AttrType.STR)], ["a"]
            )

    def test_empty_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", [], ["a"])

    def test_missing_key_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", [("a", AttrType.INT)], [])

    def test_unknown_key_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", [("a", AttrType.INT)], ["b"])

    def test_duplicate_key_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", [("a", AttrType.INT)], ["a", "a"])

    def test_index_of(self):
        schema = make_schema()
        assert schema.index_of("name") == 1
        with pytest.raises(SchemaError):
            schema.index_of("nope")

    def test_contains(self):
        schema = make_schema()
        assert "id" in schema
        assert "nope" not in schema

    def test_validate_row_arity(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.validate_row((1, "a"))

    def test_validate_row_types(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.validate_row((1, "a", "notbool"))
        assert schema.validate_row((1, "a", True)) == (1, "a", True)

    def test_key_of(self):
        schema = make_schema()
        assert schema.key_of((7, "x", False)) == (7,)

    def test_composite_key(self):
        schema = RelationSchema(
            "e", [("a", AttrType.INT), ("b", AttrType.INT)], ["a", "b"]
        )
        assert schema.key_of((1, 2)) == (1, 2)

    def test_project(self):
        schema = make_schema()
        assert schema.project((1, "a", True), ["name", "id"]) == ("a", 1)

    def test_row_from_dict(self):
        schema = make_schema()
        row = schema.row_from_dict({"id": 1, "name": "a", "active": False})
        assert row == (1, "a", False)

    def test_row_from_dict_missing(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.row_from_dict({"id": 1})

    def test_row_from_dict_extra(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.row_from_dict(
                {"id": 1, "name": "a", "active": False, "zzz": 1}
            )

    def test_as_dict_roundtrip(self):
        schema = make_schema()
        row = (1, "a", True)
        assert schema.row_from_dict(schema.as_dict(row)) == row

    def test_equality_and_hash(self):
        assert make_schema() == make_schema()
        assert hash(make_schema()) == hash(make_schema())
        other = RelationSchema("emp2", [("id", AttrType.INT)], ["id"])
        assert make_schema() != other
