"""Tests for the workload generator (``repro-bench generate``).

The contract under test:

- **determinism** — the same :class:`WorkloadSpec` always yields the
  same bytes, and :func:`regenerate_from_header` rebuilds a stream
  byte-for-byte from nothing but its own first line (golden-tested
  against ``tests/data/workload_golden.jsonl``);
- **validity** — every emitted op is accepted by a fresh view of the
  stream's workload (the generator simulates the stream against a
  shadow view, so cascade deletes cannot strand later ops);
- **shape** — each named pattern produces its advertised op mix, zipf
  skew concentrates targets, and the header carries the derived
  read-side artifacts (queries, subscriptions) plus full provenance.
"""

import io
import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.bench.workload_gen import (
    PATTERNS,
    STREAM_VERSION,
    WorkloadSpec,
    generate_ops,
    generate_records,
    make_header,
    parse_header_line,
    regenerate_from_header,
    write_stream,
)
from repro.errors import ReproError
from repro.service import ViewConfig, open_view
from repro.workloads.synthetic import SyntheticConfig, build_synthetic

GOLDEN = pathlib.Path(__file__).parent / "data" / "workload_golden.jsonl"

SMALL = dict(workload="synthetic:60", ops=20, seed=7)


def render(spec: WorkloadSpec, argv=None) -> str:
    buf = io.StringIO()
    write_stream(generate_records(spec, argv=argv), buf)
    return buf.getvalue()


class TestSpec:
    def test_round_trip(self):
        spec = WorkloadSpec(**SMALL, pattern="churn", key_skew=0.9)
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_raises(self):
        with pytest.raises(ReproError, match="unknown WorkloadSpec"):
            WorkloadSpec.from_dict({"ops": 1, "bogus": True})

    @pytest.mark.parametrize(
        "bad",
        [
            {"ops": -1},
            {"pattern": "nope"},
            {"key_skew": -0.1},
            {"read_ratio": 1.5},
            {"batch_size": 0},
            {"subscriptions": -2},
            {"new_key_fraction": 2.0},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ReproError):
            WorkloadSpec(**bad)


class TestDeterminism:
    def test_same_spec_same_bytes(self):
        spec = WorkloadSpec(**SMALL, pattern="mixed", key_skew=1.1)
        argv = ["generate", "--seed", "7"]
        assert render(spec, argv) == render(spec, argv)

    def test_different_seed_different_ops(self):
        a = WorkloadSpec(**{**SMALL, "seed": 1})
        b = WorkloadSpec(**{**SMALL, "seed": 2})
        assert list(generate_ops(a)) != list(generate_ops(b))

    def test_regenerate_from_header_is_byte_identical(self):
        spec = WorkloadSpec(**SMALL, pattern="replace_storm")
        original = render(spec, argv=["generate", "--x"])
        header = json.loads(original.splitlines()[0])
        buf = io.StringIO()
        write_stream(regenerate_from_header(header), buf)
        assert buf.getvalue() == original

    def test_golden_stream_regenerates_byte_identically(self):
        # The committed artifact must be reproducible from its own
        # header — across sessions, machines and (because the header is
        # re-emitted verbatim) library versions.
        golden = GOLDEN.read_text()
        header = json.loads(golden.splitlines()[0])
        buf = io.StringIO()
        write_stream(regenerate_from_header(header), buf)
        assert buf.getvalue() == golden

    def test_unsupported_stream_version_raises(self):
        header = make_header(WorkloadSpec(**SMALL))
        header["workload_stream"] = STREAM_VERSION + 1
        with pytest.raises(ReproError, match="unsupported workload stream"):
            list(regenerate_from_header(header))


class TestHeader:
    def test_provenance_fields(self):
        from repro import __version__

        spec = WorkloadSpec(**SMALL, subscriptions=3, read_ratio=0.5)
        header = make_header(spec, argv=["generate", "--ops", "20"])
        assert header["workload_stream"] == STREAM_VERSION
        assert header["seed"] == spec.seed
        assert header["argv"] == ["generate", "--ops", "20"]
        assert header["version"] == __version__
        assert WorkloadSpec.from_dict(header["params"]) == spec

    def test_derived_read_side(self):
        spec = WorkloadSpec(**SMALL, subscriptions=2, read_ratio=0.25)
        header = make_header(spec)
        assert len(header["subscriptions"]) == 2
        assert len(header["queries"]) >= 2
        assert all(isinstance(q, str) for q in header["queries"])

    def test_no_reads_no_queries(self):
        header = make_header(WorkloadSpec(**SMALL))
        assert header["queries"] == []
        assert header["subscriptions"] == []

    def test_parse_header_line(self):
        header = make_header(WorkloadSpec(**SMALL))
        line = json.dumps(header, sort_keys=True)
        assert parse_header_line(line) == header
        assert parse_header_line('{"op": "delete", "path": "x"}') is None
        assert parse_header_line("not json at all") is None
        assert parse_header_line("") is None


@pytest.mark.parametrize("pattern", PATTERNS)
class TestPatterns:
    def test_streams_apply_cleanly(self, pattern):
        spec = WorkloadSpec(
            workload="synthetic:60", ops=25, seed=11, pattern=pattern,
            key_skew=1.0,
        )
        ops = list(generate_ops(spec))
        assert len(ops) == spec.ops
        dataset = build_synthetic(SyntheticConfig(n_c=60, seed=42))
        service = open_view(
            dataset.atg, dataset.db, config=ViewConfig(strict=False)
        )
        outcomes = [service.apply(op) for op in ops]
        assert all(o.accepted for o in outcomes), [
            o.reason for o in outcomes if not o.accepted
        ]
        assert service.check_consistency() == []

    def test_op_mix(self, pattern):
        spec = WorkloadSpec(
            workload="synthetic:60", ops=30, seed=5, pattern=pattern
        )
        kinds = {op["op"] for op in generate_ops(spec)}
        expected = {
            "mixed": {"insert", "delete", "replace"},
            "deep_chain": {"insert"},
            "dense_dag": {"insert"},
            "churn": {"insert", "delete"},
            "replace_storm": {"replace"},
        }[pattern]
        assert kinds <= expected
        assert "insert" in kinds or pattern == "replace_storm"


class TestSkew:
    def test_zipf_concentrates_targets(self):
        def spread(skew):
            spec = WorkloadSpec(
                workload="synthetic:120", ops=60, seed=3,
                pattern="dense_dag", key_skew=skew,
            )
            targets = [op["path"] for op in generate_ops(spec)]
            return len(set(targets))

        # A heavy zipf reuses hot parents; uniform spreads across the
        # whole pool.  Distinct-path counts must reflect that.
        assert spread(1.5) < spread(0.0)


class TestCLI:
    def _generate(self, tmp_path, *extra):
        out = tmp_path / "stream.jsonl"
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.bench", "generate",
                "--workload", "synthetic:60", "--ops", "10",
                "--seed", "3", "--out", str(out), *extra,
            ],
            capture_output=True,
            text=True,
            cwd=str(pathlib.Path(__file__).parent.parent),
            env={**os.environ, "PYTHONPATH": "src"},
        )
        assert result.returncode == 0, result.stderr
        return out

    def test_generate_writes_header_plus_ops(self, tmp_path):
        out = self._generate(tmp_path)
        lines = out.read_text().splitlines()
        assert len(lines) == 11
        header = parse_header_line(lines[0])
        assert header is not None
        assert header["params"]["ops"] == 10
        for line in lines[1:]:
            assert parse_header_line(line) is None
            assert json.loads(line)["op"] in {"insert", "delete", "replace"}

    def test_identical_invocations_are_byte_identical(self, tmp_path):
        first = self._generate(tmp_path).read_bytes()
        second = self._generate(tmp_path).read_bytes()
        assert first == second

    def test_apply_consumes_header(self, tmp_path):
        stream = self._generate(tmp_path)
        from repro.apply import run

        out = io.StringIO()
        code = run(stream.read_text().splitlines(), out=out)
        assert code == 0
        text = out.getvalue()
        assert "provenance header consumed" in text
        assert "'synthetic:60'" in text  # workload taken from the header
        assert "10 accepted, 0 rejected" in text
