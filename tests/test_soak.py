"""Soak harness: generated workloads under concurrent read load.

Endurance-style runs (marked ``soak``) drive a durable service with
``repro-bench generate`` streams — the header's derived subscriptions
stand live, reader threads hammer the header's query set while the
writer applies the ops in the header's batch shape — then assert the
three invariants the paper's maintenance algorithm promises and the
observability surface claims to measure:

- **convergence** — every standing subscription equals a fresh XPath
  evaluation of its own path;
- **consistency** — ``check_consistency()`` against a full republish
  returns no problems;
- **metrics exactness** — the counters are not approximations: every
  total equals the ground truth the service exposes elsewhere
  (``UpdateOutcome`` payloads, ``stats()["pipeline"]``,
  ``stats()["wal"]``, delivered-event counts).

CI runs ``pytest -m soak`` as a timeout-wrapped smoke leg on both the
NumPy and no-NumPy jobs (see ``.github/workflows/ci.yml``); the full
suite includes these tests too, sized to stay cheap.
"""

import threading

import pytest

from repro.bench.workload_gen import WorkloadSpec, generate_records
from repro.metrics import validate_exposition
from repro.service import ViewConfig, open_view
from repro.workloads import named_workload

pytestmark = pytest.mark.soak


class SoakRun:
    """One finished soak run: the service plus everything to check."""

    def __init__(self, service, header, outcomes, subs, pulled, pushed):
        self.service = service
        self.header = header
        self.outcomes = outcomes
        self.subs = subs
        self.pulled = pulled
        self.pushed = pushed


def run_soak(tmp_path, spec: WorkloadSpec, readers: int = 2) -> SoakRun:
    """Generate ``spec``'s stream and drive a durable service with it.

    The writer applies ops grouped by the header's ``batch_size``
    (batches route through one ``service.batch()`` session each) while
    ``readers`` threads evaluate the header's derived query set
    concurrently; a pull consumer and a callback consumer ride the
    changefeed throughout.  Reader exceptions propagate.
    """
    records = list(generate_records(spec))
    header, ops = records[0], records[1:]
    atg, db = named_workload(spec.workload)
    service = open_view(
        atg,
        db,
        config=ViewConfig(strict=False, wal_dir=str(tmp_path / "wal")),
    )
    subs = {
        path: service.subscribe(path) for path in header["subscriptions"]
    }
    pulled = service.changefeed()
    pushed = []
    callback = service.changefeed(on_event=pushed.append)

    stop = threading.Event()
    failures: list[BaseException] = []

    def read_loop(offset: int) -> None:
        queries = header["queries"] or ["//cnode"]
        index = offset
        try:
            while True:  # at least one pass even if the writer is faster
                service.xpath(queries[index % len(queries)])
                for sub in subs.values():
                    sub.result()
                index += 1
                if stop.is_set():
                    return
        except BaseException as exc:  # noqa: BLE001 - reraised below
            failures.append(exc)

    threads = [
        threading.Thread(target=read_loop, args=(i,), daemon=True)
        for i in range(readers)
    ]
    for thread in threads:
        thread.start()
    try:
        outcomes = []
        batch = max(1, spec.batch_size)
        for start in range(0, len(ops), batch):
            chunk = ops[start:start + batch]
            if len(chunk) == 1:
                outcomes.append(service.apply(chunk[0]))
            else:
                outcomes.extend(service.apply(chunk))
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
    assert not failures, failures
    assert not any(thread.is_alive() for thread in threads)
    callback.close()
    return SoakRun(service, header, outcomes, subs, pulled, pushed)


MIXED = WorkloadSpec(
    workload="synthetic:100",
    ops=120,
    seed=17,
    pattern="mixed",
    key_skew=0.8,
    read_ratio=0.5,
    batch_size=4,
    subscriptions=3,
)

CHURN = WorkloadSpec(
    workload="synthetic:80",
    ops=80,
    seed=23,
    pattern="churn",
    key_skew=1.2,
    read_ratio=0.25,
    batch_size=1,
    subscriptions=2,
)


@pytest.fixture(scope="module", params=["mixed", "churn"])
def soak(request, tmp_path_factory):
    spec = {"mixed": MIXED, "churn": CHURN}[request.param]
    run = run_soak(tmp_path_factory.mktemp(request.param), spec)
    yield run
    run.service.close()


class TestSoak:
    def test_generated_ops_accepted(self, soak):
        # The generator's shadow view guarantees a clean stream under
        # *sequential* application.  A batched session defers its one
        # Δ(M,L) repair to the end, so mid-batch side-effect and cycle
        # analysis runs against pre-batch reachability and can
        # legitimately reject a handful of ops the sequential shadow
        # accepted — any other rejection reason is a real bug.
        assert len(soak.outcomes) == soak.header["params"]["ops"]
        rejected = [o.reason for o in soak.outcomes if not o.accepted]
        if soak.header["params"]["batch_size"] == 1:
            assert rejected == []
        else:
            deferred_repair = ("side effects", "infinite", "cycle")
            assert all(
                any(marker in reason for marker in deferred_repair)
                for reason in rejected
            ), rejected
            assert len(rejected) <= len(soak.outcomes) // 10, rejected

    def test_subscriptions_converged(self, soak):
        for path, sub in soak.subs.items():
            fresh = tuple(sorted(soak.service.xpath(path).targets))
            assert sub.result() == fresh, path

    def test_consistency(self, soak):
        assert soak.service.check_consistency() == []

    def test_ops_counter_is_exact(self, soak):
        counters = soak.service.metrics()["counters"]
        by_series: dict[str, int] = {}
        for outcome in soak.outcomes:
            accepted = "true" if outcome.accepted else "false"
            series = (
                f'repro_ops_total{{accepted="{accepted}",'
                f'kind="{outcome.kind}"}}'
            )
            by_series[series] = by_series.get(series, 0) + 1
        measured = {
            name: value
            for name, value in counters.items()
            if name.startswith("repro_ops_total{")
        }
        assert measured == by_series

    def test_pipeline_counters_are_exact(self, soak):
        m = soak.service.metrics()
        pipeline = soak.service.stats()["pipeline"]
        assert m["counters"]["repro_commits_total"] == pipeline["commits"]
        assert (
            m["counters"]["repro_commit_records_sealed_total"]
            == pipeline["records_sealed"]
        )
        phases = m["histograms"]
        assert (
            phases['repro_commit_phase_seconds{phase="mutate"}']["count"]
            == pipeline["commits"]
        )
        assert (
            phases['repro_commit_phase_seconds{phase="maintain"}']["count"]
            == pipeline["records_sealed"]
        )

    def test_event_delivery_is_exact(self, soak):
        stats = soak.service.stats()
        published = stats["changefeed"]["events_published"]
        counters = soak.service.metrics()["counters"]
        assert counters["repro_events_published_total"] == published
        # Both consumers attached before the first write and the run
        # used the default block_writer backpressure: nothing dropped.
        assert soak.pulled.delivered == published
        assert len(soak.pushed) == published
        assert [e.generation for e in soak.pushed] == sorted(
            e.generation for e in soak.pushed
        )
        assert counters.get("repro_consumer_drops_total", 0.0) == 0.0
        assert counters.get("repro_consumer_overflows_total", 0.0) == 0.0

    def test_wal_counters_are_exact(self, soak):
        wal = soak.service.stats()["wal"]
        counters = soak.service.metrics()["counters"]
        assert counters["repro_wal_records_total"] == wal["records_appended"]
        assert counters["repro_wal_fsyncs_total"] == wal["fsyncs"]
        assert (
            counters["repro_wal_checkpoints_total"]
            == wal["checkpoints_written"]
        )
        assert counters["repro_wal_rotations_total"] == wal["rotations"]

    def test_reader_traffic_reached_the_histogram(self, soak):
        histograms = soak.service.metrics()["histograms"]
        # Each reader thread completes at least one query pass; every
        # read lands in the latency histogram.
        assert histograms["repro_xpath_seconds"]["count"] >= 2

    def test_exposition_valid_after_soak(self, soak):
        assert validate_exposition(soak.service.metrics_text()) == []


class TestSoakDurability:
    def test_recovery_after_soak_matches(self, tmp_path):
        spec = WorkloadSpec(
            workload="synthetic:60",
            ops=40,
            seed=31,
            pattern="replace_storm",
            key_skew=0.5,
            subscriptions=1,
        )
        run = run_soak(tmp_path, spec, readers=1)
        stats = run.service.stats()
        run.service.close()
        atg, db = named_workload(spec.workload)
        recovered = open_view(
            atg,
            db,
            config=ViewConfig(strict=False, wal_dir=str(tmp_path / "wal")),
        )
        try:
            again = recovered.stats()
            assert again["generation"] == stats["generation"]
            assert again["nodes"] == stats["nodes"]
            assert again["edges"] == stats["edges"]
            assert recovered.check_consistency() == []
        finally:
            recovered.close()
