"""Demo: pluggable reachability-index backends + batched update sessions.

1. Build the same synthetic view with the ``sets`` (reference) and
   ``bitset`` (int-bitmask) backends and time Algorithm Reach on each —
   the matrices are equals()-identical, the bitset build is much faster.
2. Run a burst of deletions once sequentially (one Δ(M,L) repair per
   update) and once inside ``with updater.batch():`` (one deferred
   repair for the whole burst) and compare the background-maintenance
   cost; the final states are identical.

Run:  python examples/index_backends_and_batching.py
"""

import time

from repro import XMLViewUpdater, build_index
from repro.core.updater import SideEffectPolicy
from repro.workloads.queries import make_workload
from repro.workloads.synthetic import SyntheticConfig, build_synthetic


def fresh_updater(index_backend: str):
    dataset = build_synthetic(SyntheticConfig(n_c=300, seed=7))
    updater = XMLViewUpdater(
        dataset.atg,
        dataset.db,
        side_effect_policy=SideEffectPolicy.PROPAGATE,
        strict=False,
        index_backend=index_backend,
    )
    return updater, dataset


def main() -> None:
    # -- 1. backend ablation ---------------------------------------------------
    updater, dataset = fresh_updater("auto")
    store, topo = updater.store, updater.topo
    print(f"store: {store.num_nodes} nodes, {store.num_edges} edges")
    indexes = {}
    for backend in ("sets", "bitset"):
        start = time.perf_counter()
        indexes[backend] = build_index(store, topo, backend)
        elapsed = time.perf_counter() - start
        print(f"  Algorithm Reach [{backend:6s}]: {elapsed * 1e3:7.2f} ms, "
              f"|M| = {len(indexes[backend])}")
    assert indexes["sets"].equals(indexes["bitset"])
    print("  backends agree: M is equals()-identical\n")

    # -- 2. batched update session ---------------------------------------------
    ops = [
        op
        for cls in ("W1", "W2", "W3")
        for op in make_workload(dataset, "delete", cls, count=4)
    ]

    sequential, _ = fresh_updater("auto")
    maintain = 0.0
    for op in ops:
        maintain += sequential.delete(op.path).timings.get("maintain", 0.0)
    print(f"sequential: {len(ops)} deletions, "
          f"{sequential.maintenance_runs} maintenance passes, "
          f"{maintain * 1e3:.2f} ms background repair")

    batched, _ = fresh_updater("auto")
    with batched.batch() as session:
        for op in ops:
            batched.delete(op.path)
    print(f"batched:    {len(ops)} deletions, "
          f"{session.report.maintenance_passes} maintenance pass, "
          f"{session.report.seconds * 1e3:.2f} ms background repair")

    assert batched.reach.equals(sequential.reach)
    print("final reachability matrices identical; consistency:",
          batched.check_consistency() or "OK")


if __name__ == "__main__":
    main()
