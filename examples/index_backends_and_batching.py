"""Demo: pluggable reachability-index backends + batched update sessions.

1. Build the same synthetic view with the ``sets`` (reference) and
   ``bitset`` (int-bitmask) backends and time Algorithm Reach on each —
   the matrices are equals()-identical, the bitset build is much faster.
2. Run a burst of deletions once sequentially (one Δ(M,L) repair per
   update) and once inside ``with updater.batch():`` (one deferred
   repair for the whole burst) and compare the background-maintenance
   cost; the final states are identical.

Run:  python examples/index_backends_and_batching.py
"""

import time

from repro import ViewConfig, build_index, open_view
from repro.workloads.queries import make_workload
from repro.workloads.synthetic import SyntheticConfig, build_synthetic


def fresh_service(index_backend: str):
    dataset = build_synthetic(SyntheticConfig(n_c=300, seed=7))
    service = open_view(
        dataset.atg,
        dataset.db,
        config=ViewConfig(
            side_effects="propagate", strict=False,
            index_backend=index_backend,
        ),
    )
    return service, dataset


def main() -> None:
    # -- 1. backend ablation ---------------------------------------------------
    service, dataset = fresh_service("auto")
    store, topo = service.store, service.topo
    print(f"store: {store.num_nodes} nodes, {store.num_edges} edges")
    indexes = {}
    for backend in ("sets", "bitset"):
        start = time.perf_counter()
        indexes[backend] = build_index(store, topo, backend)
        elapsed = time.perf_counter() - start
        print(f"  Algorithm Reach [{backend:6s}]: {elapsed * 1e3:7.2f} ms, "
              f"|M| = {len(indexes[backend])}")
    assert indexes["sets"].equals(indexes["bitset"])
    print("  backends agree: M is equals()-identical\n")

    # -- 2. batched update session ---------------------------------------------
    ops = [
        op
        for cls in ("W1", "W2", "W3")
        for op in make_workload(dataset, "delete", cls, count=4)
    ]

    sequential, _ = fresh_service("auto")
    maintain = 0.0
    for op in ops:
        maintain += sequential.apply(op).timings.get("maintain", 0.0)
    print(f"sequential: {len(ops)} deletions, "
          f"{sequential.maintenance_runs} maintenance passes, "
          f"{maintain * 1e3:.2f} ms background repair")

    batched, _ = fresh_service("auto")
    with batched.batch() as batch:
        for op in ops:
            batch.apply(op)
    report = batch.session.report
    print(f"batched:    {len(ops)} deletions, "
          f"{report.maintenance_passes} maintenance pass, "
          f"{report.seconds * 1e3:.2f} ms background repair")

    assert batched.reach.equals(sequential.reach)
    print("final reachability matrices identical; consistency:",
          batched.check_consistency() or "OK")


if __name__ == "__main__":
    main()
