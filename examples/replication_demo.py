"""One writer, N out-of-process read replicas, over the socket transport.

The full replication loop from ``docs/replication.md``, end to end:

1. the writer process opens the registrar view, attaches a changefeed
   (retention from generation 0) and starts a ``ReplicationServer`` on
   an ephemeral TCP port;
2. replica A bootstraps immediately (snapshot at generation 0 + the
   whole event stream); the writer then applies half its op stream;
3. replica B bootstraps **mid-stream** — its snapshot already contains
   the first half, and it folds only the rest;
4. the writer applies the remaining ops, publishes its final generation
   and store digest, and every replica fences with
   ``wait_for(final_generation)`` before comparing digests.

The parent process asserts byte-identical convergence (equal digests,
nonzero events folded) and exits nonzero otherwise — CI runs this on
both the NumPy and pure-Python legs.

Run:  python examples/replication_demo.py
"""

import multiprocessing as mp
import sys

from repro import (
    BaseUpdateOp,
    DeleteOp,
    InsertOp,
    ReplaceOp,
    ReplicaView,
    ReplicationServer,
    SocketTransport,
    ViewConfig,
    open_view,
)
from repro.workloads.registrar import build_registrar

N_REPLICAS = 2


def op_stream():
    """A deterministic mixed stream: all four op kinds plus a batch."""
    return [
        DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"),
        InsertOp("course[cno=CS650]/prereq", "course",
                 ("CS500", "Operating Systems")),
        ReplaceOp("course[cno=CS650]/prereq/course[cno=CS500]",
                  "course", ("CS700", "Theory")),
        BaseUpdateOp(ops=(("insert", "course", ("CS901", "Seminar", "CS")),)),
        [  # one batched session -> one coalesced event
            InsertOp("course[cno=CS240]/prereq", "course",
                     ("CS902", "Colloquium")),
            DeleteOp("course[cno=CS240]/prereq/course[cno=CS120]"),
        ],
    ]


def replica_main(name, address, attach_barrier, done_queue):
    """Bootstrap over TCP, fold to the writer's final state, report."""
    atg, _db = build_registrar()
    replica = ReplicaView(atg, SocketTransport(*address))
    started = replica.bootstrap()
    replica.start()
    attach_barrier.put((name, started))
    final_generation, writer_digest = done_queue.get()
    try:
        replica.wait_for(final_generation, timeout=30.0)
    except TimeoutError:
        pass  # report whatever state we reached; the parent will flag it
    stats = replica.stats()
    done_queue.put({
        "name": name,
        "started_at": started,
        "generation": stats["generation"],
        "events_folded": stats["events_folded"],
        "lag": replica.lag(),
        "converged": replica.digest() == writer_digest,
    })
    replica.close()


def main():
    ctx = mp.get_context("spawn")
    atg, db = build_registrar()
    service = open_view(atg, db, config=ViewConfig(
        side_effects="propagate", strict=False,
    ))
    service.changefeed().close()  # start retention at generation 0

    with ReplicationServer(service) as server:
        print(f"writer: serving replication on {server.address}")
        ops = op_stream()
        midpoint = len(ops) // 2

        attach_barrier = ctx.Queue()
        queues, procs = [], []

        def spawn(index):
            queue = ctx.Queue()
            proc = ctx.Process(
                target=replica_main,
                args=(f"replica-{index}", server.address,
                      attach_barrier, queue),
            )
            proc.start()
            queues.append(queue)
            procs.append(proc)
            name, started = attach_barrier.get(timeout=30.0)
            print(f"writer: {name} bootstrapped at generation {started}")

        spawn(0)  # replica A sees the whole stream
        for position, op in enumerate(ops):
            if position == midpoint and N_REPLICAS > 1:
                spawn(1)  # replica B bootstraps mid-stream
            service.apply(op)

        final_generation = service.stats()["generation"]
        writer_digest = service.store.digest()
        print(f"writer: head at generation {final_generation}, "
              f"digest {writer_digest[:12]}")
        for queue in queues:
            queue.put((final_generation, writer_digest))

        reports = [queue.get(timeout=60.0) for queue in queues]
        for proc in procs:
            proc.join(timeout=30.0)

    failed = False
    for report in sorted(reports, key=lambda r: r["name"]):
        print(f"{report['name']}: bootstrapped at gen "
              f"{report['started_at']}, now at gen {report['generation']} "
              f"(lag {report['lag']}), {report['events_folded']} event(s) "
              f"folded, converged={report['converged']}")
        if not report["converged"]:
            failed = True
    total_folded = sum(r["events_folded"] for r in reports)
    if failed or total_folded == 0:
        print("replication demo FAILED", file=sys.stderr)
        return 1
    print(f"replication demo OK: {len(reports)} replica(s) byte-identical "
          f"at generation {final_generation}, "
          f"{total_folded} event(s) folded")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
