"""Quickstart: publish the registrar XML view, update it, inspect the SQL side.

Reproduces the paper's running example (Example 1) on the public API:

1. ``open_view`` publishes the CS registrar database as a recursive XML
   view and returns the plan/commit service façade,
2. a typed ``DeleteOp`` removes course CS320 from CS650's prerequisites
   (translated to a single base-table deletion),
3. an ``InsertOp`` is *planned* first — the paper's foreground phases
   (targets, ΔV, ΔR) are previewed before any state changes — and then
   committed,
4. the relational database, the DAG-compressed view and the XML tree all
   stay consistent.

Run:  python examples/quickstart.py
"""

from repro import DeleteOp, InsertOp, open_view
from repro.workloads.registrar import build_registrar
from repro.xmltree.serialize import to_xml_string


def show(title: str, text: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))
    print(text)


def main() -> None:
    atg, db = build_registrar()
    service = open_view(atg, db)

    show("Initial XML view (σ(I))", to_xml_string(service.xml_tree()))
    show(
        "DAG compression",
        f"tree would repeat shared subtrees; DAG stores "
        f"{service.store.num_nodes} nodes / {service.store.num_edges} edges, "
        f"sharing rate {service.store.sharing_rate():.1%}",
    )

    # -- deletion (one-shot apply) ---------------------------------------------
    outcome = service.apply(
        DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
    )
    show(
        "apply DeleteOp(course[cno=CS650]/prereq/course[cno=CS320])",
        "translated to ΔR = "
        + ", ".join(f"{op.kind} {op.relation}{op.row}" for op in outcome.delta_r),
    )
    print("prereq table is now:", db.rows("prereq"))

    # -- insertion (two-phase: plan, preview, commit) ---------------------------
    plan = service.plan(
        InsertOp("course[cno=CS650]/prereq", "course",
                 ("CS500", "Operating Systems"))
    )
    show(
        "plan InsertOp(course[cno=CS650]/prereq ← CS500)",
        f"targets r[[p]] = {plan.targets}, side effects = "
        f"{sorted(plan.side_effects) or 'none'}\n"
        "previewed ΔR = "
        + ", ".join(f"{op.kind} {op.relation}{op.row}" for op in plan.delta_r)
        + "\n(nothing applied yet — a plan.abort() would discard this)",
    )
    outcome = plan.commit()

    show("Updated XML view", to_xml_string(service.xml_tree()))

    problems = service.check_consistency()
    print("\nConsistency with a fresh republish σ(ΔR(I)):",
          "OK" if not problems else problems)

    print("\nPer-phase timings of the committed insert (seconds):")
    for phase, seconds in outcome.timings.items():
        print(f"  {phase:12s} {seconds:.6f}")

    # Ops are wire values — this is what `python -m repro.apply` reads:
    print("\nThe insert, as its JSON wire form:")
    print(" ", plan.op.to_json())


if __name__ == "__main__":
    main()
