"""Quickstart: publish the registrar XML view, update it, inspect the SQL side.

Reproduces the paper's running example (Example 1):

1. publish the CS registrar database as a recursive XML view,
2. delete course CS320 from CS650's prerequisites (translated to a single
   base-table deletion),
3. insert CS500 as a new prerequisite of CS650,
4. show that the relational database, the DAG-compressed view and the XML
   tree all stay consistent.

Run:  python examples/quickstart.py
"""

from repro import XMLViewUpdater
from repro.workloads.registrar import build_registrar
from repro.xmltree.serialize import to_xml_string


def show(title: str, text: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))
    print(text)


def main() -> None:
    atg, db = build_registrar()
    updater = XMLViewUpdater(atg, db)

    show("Initial XML view (σ(I))", to_xml_string(updater.xml_tree()))
    show(
        "DAG compression",
        f"tree would repeat shared subtrees; DAG stores "
        f"{updater.store.num_nodes} nodes / {updater.store.num_edges} edges, "
        f"sharing rate {updater.store.sharing_rate():.1%}",
    )

    # -- deletion --------------------------------------------------------------
    outcome = updater.delete("course[cno=CS650]/prereq/course[cno=CS320]")
    show(
        "delete course[cno=CS650]/prereq/course[cno=CS320]",
        "translated to ΔR = "
        + ", ".join(f"{op.kind} {op.relation}{op.row}" for op in outcome.delta_r),
    )
    print("prereq table is now:", db.rows("prereq"))

    # -- insertion --------------------------------------------------------------
    outcome = updater.insert(
        "course[cno=CS650]/prereq", "course", ("CS500", "Operating Systems")
    )
    show(
        "insert (course, CS500) into course[cno=CS650]/prereq",
        "translated to ΔR = "
        + ", ".join(f"{op.kind} {op.relation}{op.row}" for op in outcome.delta_r),
    )

    show("Updated XML view", to_xml_string(updater.xml_tree()))

    problems = updater.check_consistency()
    print("\nConsistency with a fresh republish σ(ΔR(I)):",
          "OK" if not problems else problems)

    print("\nPer-phase timings of the last update (seconds):")
    for phase, seconds in outcome.timings.items():
        print(f"  {phase:12s} {seconds:.6f}")


if __name__ == "__main__":
    main()
