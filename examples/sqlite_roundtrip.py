"""Storing the XML view in relations — on disk (paper Section 2.3).

The DAG coding (gen tables + edge relations) is itself relational data;
this example materializes it, persists both the base database and the
view coding into SQLite, and cross-checks the generated SQL against the
in-memory engine.

Run:  python examples/sqlite_roundtrip.py
"""

from repro import open_view
from repro.relational.sqlgen import select_sql
from repro.relational.sqlite_backend import dump_to_sqlite, run_query_sqlite
from repro.workloads.registrar import build_registrar, registrar_schemas


def main() -> None:
    atg, db = build_registrar()
    service = open_view(atg, db)

    # -- the base database on disk ------------------------------------------------
    conn = dump_to_sqlite(db)
    schemas = {s.name: s for s in registrar_schemas()}
    print("Base relations persisted to SQLite:")
    for name in db.table_names():
        count = conn.execute(f"SELECT COUNT(*) FROM {name}").fetchone()[0]
        print(f"  {name}: {count} rows")

    # -- the edge views, executed as real SQL --------------------------------------
    print("\nEdge views evaluated on SQLite vs the in-memory engine:")
    for view in service.registry.views():
        sqlite_rows = run_query_sqlite(conn, view.query, schemas=schemas)
        memory_rows = set(view.query.evaluate(db).rows)
        status = "match" if sqlite_rows == memory_rows else "MISMATCH"
        print(f"  {view.name}: {len(sqlite_rows)} rows [{status}]")
        print(f"    SQL: {select_sql(view.query)[:100]}...")

    # -- the DAG coding itself on disk ---------------------------------------------
    view_db = service.store.to_database()
    view_conn = dump_to_sqlite(view_db)
    print("\nDAG coding persisted to SQLite (V = gen_A + edge_A_B tables):")
    for name in sorted(view_db.table_names()):
        count = view_conn.execute(f"SELECT COUNT(*) FROM {name}").fetchone()[0]
        print(f"  {name}: {count} rows")

    # A recursive SQL query over the edge relations: CS650's transitive
    # prerequisites, straight off the stored DAG.
    sql = """
    WITH RECURSIVE reach(id) AS (
        SELECT e.child FROM edge_prereq_course e
        JOIN gen_prereq g ON g.id = e.parent
        WHERE g.a_cno = 'CS650'
        UNION
        SELECT e2.child
        FROM reach r
        JOIN gen_course c ON c.id = r.id
        JOIN gen_prereq g2 ON g2.a_cno = c.a_cno
        JOIN edge_prereq_course e2 ON e2.parent = g2.id
    )
    SELECT DISTINCT c.a_cno FROM reach r JOIN gen_course c ON c.id = r.id
    ORDER BY c.a_cno
    """
    rows = view_conn.execute(sql).fetchall()
    print("\nTransitive prerequisites of CS650 (recursive SQL on the "
          "stored DAG):", [r[0] for r in rows])


if __name__ == "__main__":
    main()
