"""Live XPath subscriptions: standing queries maintained from ΔV deltas.

Demonstrates the subscription engine on the registrar example:

1. ``service.subscribe(path)`` registers standing queries and evaluates
   them once, eagerly;
2. every committed operation emits a structured ΔV event; per query the
   engine *skips* (dependency-disjoint change), re-evaluates only a
   *suffix* from a cached context, or falls back to a full evaluation
   (``//`` queries, base updates);
3. ``sub.result()`` — a sorted tuple of view node ids — always equals a
   fresh ``service.xpath()`` evaluation, without re-running the query.

Run:  python examples/live_subscriptions.py
"""

from repro import BaseUpdateOp, DeleteOp, InsertOp, open_view
from repro.workloads.registrar import build_registrar

QUERIES = (
    "course[cno=CS650]/prereq/course",   # anchored: suffix-maintained
    "course[cno=CS240]/takenBy/student", # anchored: mostly skipped
    "//course",                          # descendant: re-evaluated
)


def show(service, subs, title):
    print(f"\n=== {title} " + "=" * max(0, 56 - len(title)))
    for sub in subs:
        nodes = sub.result()
        labels = [
            f"{service.store.type_of(n)}{service.store.sem_of(n)}"
            for n in nodes
        ]
        fresh = tuple(sorted(service.xpath(sub.path).targets))
        marker = "==" if nodes == fresh else "!="
        print(f"  {sub.path:<38} -> {len(nodes)} node(s) "
              f"[{marker} fresh xpath()]")
        for label in labels[:4]:
            print(f"      {label}")


def main() -> None:
    atg, db = build_registrar()
    service = open_view(atg, db)
    subs = [service.subscribe(q) for q in QUERIES]
    show(service, subs, "Eager initial evaluation")

    service.apply(DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"))
    show(service, subs, "After deleting CS320 from CS650's prereq")

    service.apply([
        InsertOp("course[cno=CS650]/prereq", "course",
                 ("CS500", "Operating Systems")),
        InsertOp(".", "course", ("CS700", "Theory")),
    ])
    show(service, subs, "After one batched insert session")

    # A base-table update propagates into the view; subscriptions see a
    # coarse event and re-evaluate fully (the generation-tagged fallback).
    service.apply(BaseUpdateOp(ops=(
        ("insert", "enroll", ("S02", "CS240")),
    )))
    show(service, subs, "After a base-table enroll insert")

    print("\nEngine statistics (skip beats re-evaluate):")
    for key, value in sorted(service.subscriptions.stats().items()):
        if key != "publish_seconds":
            print(f"  {key:>20}: {value}")


if __name__ == "__main__":
    main()
