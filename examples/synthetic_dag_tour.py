"""Tour of the paper's evaluation dataset (Section 5).

Builds the synthetic C/F/H database, publishes the recursive view,
reports the compression statistics of Fig. 10(b), runs one operation of
each workload class (W1/W2/W3) and prints the per-phase timings the
paper's Fig. 11 plots.

Run:  python examples/synthetic_dag_tour.py [n_c]
"""

import sys

from repro.baselines.tree_updater import TreeUpdater
from repro.service import ViewConfig, open_view
from repro.workloads.queries import make_workload
from repro.workloads.synthetic import SyntheticConfig, build_synthetic


def main(n_c: int = 500) -> None:
    dataset = build_synthetic(SyntheticConfig(n_c=n_c))
    db = dataset.db
    print(f"|C| = {len(db.table('C'))}, |F| = {len(db.table('F'))}, "
          f"|H| = {len(db.table('H'))}")

    service = open_view(
        dataset.atg,
        db,
        config=ViewConfig(side_effects="propagate", strict=False),
    )
    store = service.store
    cnodes = [n for n in store.nodes() if store.type_of(n) == "cnode"]
    shared = sum(1 for n in cnodes if store.in_degree(n) > 1)
    print(f"published C instances: {len(cnodes)}")
    print(f"DAG: {store.num_nodes} nodes, {store.num_edges} edges")
    print(f"shared C instances: {shared} ({shared / len(cnodes):.1%}; "
          "paper reports 31.4%)")
    print(f"|M| = {len(service.reach)} reachability pairs, "
          f"|L| = {len(service.topo)}")

    if n_c <= 300:
        try:
            tree = TreeUpdater(dataset.atg, db, max_nodes=2_000_000)
            print(f"uncompressed tree: {tree.size} nodes "
                  f"({tree.size / store.num_nodes:.0f}x the DAG)")
        except Exception:
            print("uncompressed tree: > 2M nodes (exponential blowup)")

    print("\nOne operation per workload class:")
    for cls in ("W1", "W2", "W3"):
        delete_op = make_workload(dataset, "delete", cls, count=1)[0]
        outcome = service.apply(delete_op)
        phases = {k: f"{v * 1e3:.2f}ms" for k, v in outcome.timings.items()}
        print(f"  {cls} delete {delete_op.path}")
        print(f"     accepted={outcome.accepted} phases={phases}")

        insert_op = make_workload(dataset, "insert", cls, count=1)[0]
        outcome = service.apply(insert_op)
        phases = {k: f"{v * 1e3:.2f}ms" for k, v in outcome.timings.items()}
        print(f"  {cls} insert {insert_op.path} <- cnode{insert_op.sem}")
        print(f"     accepted={outcome.accepted} phases={phases}")

    print("\nConsistency:", service.check_consistency() or "OK")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 500)
