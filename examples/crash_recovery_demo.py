"""Kill a durable writer with SIGKILL, then recover its log.

The crash-safety loop from ``docs/durability.md``, end to end:

1. a writer subprocess opens the registrar view with a ``wal_dir`` and
   commits an endless op stream, printing its generation after every
   commit (one acknowledgement per line);
2. the parent waits for a batch of acknowledged commits, then delivers
   ``SIGKILL`` — no atexit handler, no ``finally``, no flush runs;
3. a fresh process recovers the directory with nothing but
   ``open_view(..., config=ViewConfig(wal_dir=...))``: newest
   checkpoint + segment replay, torn tail truncated;
4. the parent asserts the recovered generation covers every
   acknowledged commit (a *process* crash loses nothing that reached
   ``write(2)``), that the consistency check passes, and that the
   recovered service keeps committing.

Exits nonzero on any violation — CI runs this on both the NumPy and
pure-Python legs.

Run:  python examples/crash_recovery_demo.py
"""

import subprocess
import sys
import tempfile

from repro import InsertOp, ViewConfig, open_view
from repro.workloads.registrar import build_registrar

WRITER = """
import itertools, sys
from repro.ops import DeleteOp, InsertOp
from repro.service import ViewConfig, open_view
from repro.workloads.registrar import build_registrar

atg, db = build_registrar()
service = open_view(atg, db, config=ViewConfig(
    wal_dir=sys.argv[1], strict=False, side_effects="propagate",
    wal_checkpoint_every=16, wal_segment_bytes=4096,
))
for i in itertools.count():
    cno = ("CS650", "CS320", "CS240")[i % 3]
    service.apply(InsertOp(
        f"//course[cno={cno}]/prereq", "course", ("CS900", "X")))
    service.apply(DeleteOp(f"//course[cno={cno}]/prereq/course[cno=CS900]"))
    print(service.stats()["generation"], flush=True)
"""


def main():
    wal_dir = tempfile.mkdtemp(prefix="repro-wal-demo-")
    writer = subprocess.Popen(
        [sys.executable, "-c", WRITER, wal_dir],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    acked = 0
    for _ in range(25):
        line = writer.stdout.readline()
        if not line:
            sys.stderr.write(writer.stderr.read())
            raise SystemExit("writer died before making progress")
        acked = int(line)
    writer.kill()  # SIGKILL mid-stream
    writer.wait(timeout=30)
    print(f"writer killed after acknowledging generation {acked}")

    atg, db = build_registrar()
    service = open_view(atg, db, config=ViewConfig(
        wal_dir=wal_dir, strict=False, side_effects="propagate",
        wal_checkpoint_every=16, wal_segment_bytes=4096,
    ))
    generation = service.stats()["generation"]
    print(f"recovered generation {generation} from {wal_dir}")
    assert generation >= acked, (
        f"recovery lost acknowledged commits: {generation} < {acked}"
    )
    problems = service.check_consistency()
    assert problems == [], problems

    # The recovered service is a fully functional writer.
    outcome = service.apply(
        InsertOp("//course[cno=CS650]/prereq", "course", ("CS903", "New"))
    )
    assert outcome.accepted
    assert service.check_consistency() == []
    service.close()

    # And recovery is repeatable: a third process sees the new commit.
    atg2, db2 = build_registrar()
    again = open_view(atg2, db2, config=ViewConfig(
        wal_dir=wal_dir, strict=False, side_effects="propagate",
        wal_checkpoint_every=16, wal_segment_bytes=4096,
    ))
    assert again.stats()["generation"] == service.stats()["generation"]
    assert again.store.digest() == service.store.digest()
    wal = again.stats()["wal"]
    print(
        f"log: {wal['records']} record(s), {len(wal['checkpoints'])} "
        f"checkpoint(s), replay floor {wal['floor']}"
    )
    again.close()
    print("crash recovery demo OK")


if __name__ == "__main__":
    try:
        main()
    except AssertionError as exc:  # make CI failures readable
        print(f"FAILED: {exc}", file=sys.stderr)
        sys.exit(1)
