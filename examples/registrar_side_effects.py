"""Side effects of XML view updates (paper Section 2.1, Example 1).

Course CS320 occurs twice in the view: as a root course and as CS650's
prerequisite — the *same* DAG node, because the subtree property pins a
subtree to its ``(type, $A)`` identity.  Updating "only the CS320 below
CS650" is therefore impossible; the paper's revised semantics applies the
update at *every* occurrence, after warning the user.

This example shows both policies:

- ``ABORT`` (default): the update is rejected with the offending nodes;
- ``PROPAGATE``: the update is carried out under the revised semantics.

Run:  python examples/registrar_side_effects.py
"""

from repro import DeleteOp, InsertOp, ViewConfig, open_view
from repro.errors import SideEffectError
from repro.workloads.registrar import build_registrar


def main() -> None:
    path = "course[cno=CS650]//course[cno=CS320]/prereq"
    subtree = ("CS240", "Data Structures")

    # -- 1. detection + abort ---------------------------------------------------
    atg, db = build_registrar()
    # Give the example a second prerequisite edge so the insert is not a
    # no-op: CS500 (instead of the already-present CS240).
    subtree = ("CS500", "Operating Systems")
    service = open_view(atg, db)  # ViewConfig defaults to side_effects="abort"
    print(f"insert (course, {subtree[0]}) into {path}")
    try:
        service.apply(InsertOp(path, "course", subtree))
    except SideEffectError as exc:
        print("  -> rejected:", exc)
        witnesses = [
            (service.store.type_of(n), service.store.sem_of(n))
            for n in sorted(exc.affected)
        ]
        print("  -> unselected occurrences reachable via:", witnesses)

    # -- 2. propagate under the revised semantics --------------------------------
    atg, db = build_registrar()
    service = open_view(atg, db, ViewConfig(side_effects="propagate"))
    outcome = service.apply(InsertOp(path, "course", subtree))
    print("\nwith PROPAGATE policy: accepted =", outcome.accepted)
    print("ΔR =", [(op.kind, op.relation, op.row) for op in outcome.delta_r])

    tree = service.xml_tree()
    print("\nEvery CS320 occurrence now lists CS500 as a prerequisite:")
    for node in tree.iter():
        if node.tag == "course" and node.sem[0] == "CS320":
            prereqs = [c.sem[0] for c in node.child_by_tag("prereq").children]
            print("  CS320 occurrence -> prereqs:", prereqs)

    print("\nConsistency:", service.check_consistency() or "OK")

    # -- 3. deletions have subtler side effects (Section 2.1) --------------------
    atg, db = build_registrar()
    service = open_view(atg, db)
    try:
        # CS320's prereq list is shared between its root occurrence and
        # its occurrence under CS650: deleting via the root path only is
        # a side effect.
        service.apply(DeleteOp("course[cno=CS320]/prereq/course[cno=CS240]"))
    except SideEffectError as exc:
        print("\ndeletion via one occurrence rejected:", exc)
    # The descendant axis selects every occurrence: no side effect.
    outcome = service.apply(
        DeleteOp("//course[cno=CS320]/prereq/course[cno=CS240]")
    )
    print("deletion via // accepted =", outcome.accepted)
    print("ΔR =", [(op.kind, op.relation, op.row) for op in outcome.delta_r])


if __name__ == "__main__":
    main()
