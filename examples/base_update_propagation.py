"""Propagating base-table updates into the published view.

The reverse direction of the paper's pipeline (its reference [8]): a
batch of relational inserts/deletes — a serializable ``BaseUpdateOp`` —
is applied to the base tables and the DAG-compressed view — together
with the reachability matrix M and the topological order L — is
synchronized incrementally, including cascading gains (a new course plus
the edges hanging off it in the same batch) and garbage collection of
unreachable subtrees.

Run:  python examples/base_update_propagation.py
"""

from repro import BaseUpdateOp, open_view
from repro.relational.database import RelationalDelta
from repro.workloads.registrar import build_registrar
from repro.xmltree.serialize import to_xml_string


def main() -> None:
    atg, db = build_registrar()
    service = open_view(atg, db)
    print(f"initial view: {service.store.num_nodes} nodes, "
          f"{service.store.num_edges} edges")

    # One batch: a new CS course, wired below CS650 and enrolling a new
    # student — three different relations, cascading view effects.
    batch1 = BaseUpdateOp(ops=(
        ("insert", "course", ("CS777", "Compilers", "CS")),
        ("insert", "prereq", ("CS650", "CS777")),
        ("insert", "prereq", ("CS777", "CS240")),
        ("insert", "student", ("S09", "Barbara")),
        ("insert", "enroll", ("S09", "CS777")),
    ))
    outcome = service.apply(batch1)
    print(f"\nbatch 1 (5 base inserts): "
          f"+{outcome.stats['edges_added']} edges, "
          f"+{outcome.stats['nodes_created']} nodes")
    print("as wire JSON:", batch1.to_json()[:80] + "...")

    tree = service.xml_tree()
    cs777 = next(n for n in tree.iter() if n.sem[:1] == ("CS777",))
    print("\nCS777 as published (one of its occurrences):")
    print(to_xml_string(cs777))

    # A deletion batch: retire CS240 entirely.  A RelationalDelta built
    # programmatically bridges into the algebra via from_delta().
    delta = RelationalDelta()
    delta.delete("course", db.table("course").get(("CS240",)))
    delta.delete("prereq", ("CS320", "CS240"))
    delta.delete("prereq", ("CS777", "CS240"))
    outcome = service.apply(BaseUpdateOp.from_delta(delta))
    print(f"\nbatch 2 (retire CS240): "
          f"-{outcome.stats['edges_removed']} edges, "
          f"garbage-collected {outcome.stats['nodes_collected']} nodes")

    print("\nConsistency with a fresh republish:",
          service.check_consistency() or "OK")


if __name__ == "__main__":
    main()
