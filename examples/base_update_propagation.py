"""Propagating base-table updates into the published view.

The reverse direction of the paper's pipeline (its reference [8]): a
batch of relational inserts/deletes is applied directly to the base
tables and the DAG-compressed view — together with the reachability
matrix M and the topological order L — is synchronized incrementally,
including cascading gains (a new course plus the edges hanging off it in
the same batch) and garbage collection of unreachable subtrees.

Run:  python examples/base_update_propagation.py
"""

from repro import XMLViewUpdater
from repro.relational.database import RelationalDelta
from repro.workloads.registrar import build_registrar
from repro.xmltree.serialize import to_xml_string


def main() -> None:
    atg, db = build_registrar()
    updater = XMLViewUpdater(atg, db)
    print(f"initial view: {updater.store.num_nodes} nodes, "
          f"{updater.store.num_edges} edges")

    # One batch: a new CS course, wired below CS650 and enrolling a new
    # student — three different relations, cascading view effects.
    delta = RelationalDelta()
    delta.insert("course", ("CS777", "Compilers", "CS"))
    delta.insert("prereq", ("CS650", "CS777"))
    delta.insert("prereq", ("CS777", "CS240"))
    delta.insert("student", ("S09", "Barbara"))
    delta.insert("enroll", ("S09", "CS777"))
    report = updater.apply_base_update(delta)
    print(f"\nbatch 1 (5 base inserts): +{len(report.edges_added)} edges, "
          f"+{report.nodes_created} nodes")

    tree = updater.xml_tree()
    cs777 = next(n for n in tree.iter() if n.sem[:1] == ("CS777",))
    print("\nCS777 as published (one of its occurrences):")
    print(to_xml_string(cs777))

    # A deletion batch: retire CS240 entirely.
    delta = RelationalDelta()
    delta.delete("course", db.table("course").get(("CS240",)))
    delta.delete("prereq", ("CS320", "CS240"))
    delta.delete("prereq", ("CS777", "CS240"))
    report = updater.apply_base_update(delta)
    print(f"\nbatch 2 (retire CS240): -{len(report.edges_removed)} edges, "
          f"garbage-collected {report.nodes_collected} nodes")

    print("\nConsistency with a fresh republish:",
          updater.check_consistency() or "OK")


if __name__ == "__main__":
    main()
