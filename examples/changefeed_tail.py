"""Tailing a view's changefeed: replay, live events, result deltas.

Demonstrates the public changefeed API on the registrar example:

1. ``service.changefeed()`` (opened right after ``open_view``) starts
   retention at generation 0, so later consumers can replay the whole
   history;
2. every committed operation publishes one JSON-serializable
   ``ViewEvent`` (batches arrive as a single coalesced event) — the
   frozen wire format is specified in ``docs/event-schema.md``;
3. ``service.changefeed(since=g)`` replays exactly the events after
   generation ``g`` and then goes live; a resume point older than the
   retention window raises ``ReplayGapError``;
4. subscriptions expose per-commit ``delta()`` — ``(added, removed)``
   node ids — the cheap feed for watchers that mirror a result set.

Run:  python examples/changefeed_tail.py
"""

from repro import ReplayGapError, ViewConfig, ViewEvent, open_view
from repro.workloads import registrar_op_stream
from repro.workloads.registrar import build_registrar


def describe(event: ViewEvent) -> str:
    shape = "coarse" if event.coarse else f"{len(event.edges)} edge(s)"
    return f"gen {event.generation:>2}  {event.reason:<12} {shape}"


def main():
    atg, db = build_registrar()
    service = open_view(atg, db, config=ViewConfig(
        side_effects="propagate", strict=False, changefeed_retention=64,
    ))

    # Attach before the first commit: the replay buffer then covers the
    # whole history of the service.
    archive = service.changefeed()
    watched = service.subscribe("course[cno=CS650]/prereq/course")

    print("=== live tail (callback mode) " + "=" * 34)
    service.changefeed(on_event=lambda event: print(
        f"  {describe(event)}   prereq delta {watched.delta()}"
    ))

    for op in registrar_op_stream():
        service.apply(op)

    print("\n=== every event is one JSON object " + "=" * 29)
    history = archive.events()
    for event in history:
        print(f"  {event.to_json()[:76]}...")

    print("\n=== resuming from a retained generation " + "=" * 24)
    resume_from = history[1].generation
    follower = service.changefeed(since=resume_from)
    replayed = follower.events()
    print(f"  changefeed(since={resume_from}) replayed "
          f"{len(replayed)} event(s): "
          f"{[e.generation for e in replayed]}")

    print("\n=== a gap is a typed error, never silence " + "=" * 22)
    try:
        service.changefeed(since=-1)
    except ReplayGapError as exc:
        print(f"  ReplayGapError: since={exc.since} floor={exc.floor}")

    stats = service.stats()["changefeed"]
    print(f"\nchangefeed stats: {stats}")
    assert stats["events_published"] == len(history)


if __name__ == "__main__":
    main()
