"""The plan/commit protocol: preview an update's ΔV/ΔR before deciding.

The paper's pipeline is two-phase — translate, *then* apply — and the
service API exposes the seam: ``service.plan(op)`` runs validation,
XPath evaluation, and both translation steps without touching any state.
The resulting plan can be inspected (targets, side effects, ΔV, ΔR,
per-phase timings), serialized for an approval queue, and then either
committed (identical result to a direct apply) or aborted (the view is
left byte-identical).

Run:  python examples/plan_commit_preview.py
"""

import json

from repro import DeleteOp, ReplaceOp, open_view
from repro.workloads.registrar import build_registrar


def preview(plan) -> None:
    out = plan.outcome
    print(f"  targets r[[p]] = {out.targets}")
    print(f"  side effects   = {sorted(out.side_effects) or 'none'}")
    print(f"  ΔV = {[f'{op.kind} {op.relation}({op.parent},{op.child})' for op in out.delta_v]}")
    print(f"  ΔR = {[f'{op.kind} {op.relation}{op.row}' for op in out.delta_r]}")
    foreground = {k: f"{v * 1e6:.0f}µs" for k, v in out.timings.items()}
    print(f"  foreground phases already paid: {foreground}")


def main() -> None:
    atg, db = build_registrar()
    service = open_view(atg, db)

    # -- 1. plan a deletion, look at it, abort it --------------------------------
    op = DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]")
    print(f"plan {op}:")
    plan = service.plan(op)
    preview(plan)
    plan.abort()
    print("  -> aborted; prereq table untouched:", db.rows("prereq"))

    # -- 2. plan a replace, ship it through an 'approval queue', commit ----------
    op = ReplaceOp(
        "course[cno=CS650]/prereq/course[cno=CS320]",
        "course",
        ("CS500", "Operating Systems"),
    )
    print(f"\nplan {op.kind} op (swap CS320 -> CS500 below CS650):")
    plan = service.plan(op)
    preview(plan)

    # The preview is wire-representable — exactly what a reviewer UI or
    # an audit log would receive:
    wire = plan.to_dict(include_deltas=False)
    print("\n  as JSON for the approval queue:")
    print(" ", json.dumps({k: wire[k] for k in ("op", "state", "targets")}))

    outcome = plan.commit()
    print(f"\n  -> committed: accepted={outcome.accepted}; "
          f"prereq table now {db.rows('prereq')}")
    print("  consistency:", service.check_consistency() or "OK")


if __name__ == "__main__":
    main()
