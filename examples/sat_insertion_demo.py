"""SAT-based insertion translation (paper Section 4.3 + Appendix A).

Inserting a *brand-new* course as a prerequisite requires inventing base
tuples whose unknown attributes must be chosen so that no view gains an
unintended row.  The translator:

1. builds tuple templates from the edge view's equality closure (the key
   parts are pinned by key preservation);
2. sweeps every view for symbolic derivations that would be side effects;
3. encodes the constraints into CNF and runs WalkSAT (the paper's solver;
   DPLL is the complete fallback);
4. instantiates the templates from the model.

The demo shows the machinery choosing ``dept ≠ 'CS'`` for a course that
must appear as a prerequisite but must NOT appear at the root.

Run:  python examples/sat_insertion_demo.py
"""

from repro import InsertOp, open_view
from repro.workloads.registrar import build_registrar


def main() -> None:
    atg, db = build_registrar()
    service = open_view(atg, db)

    print("Views over the base relations (key-preserving SPJ):")
    for view in service.registry.views():
        from repro.relational.sqlgen import select_sql

        print(f"  {view.name}:")
        print(f"    {select_sql(view.query)}")

    # -- 1. new course as a prerequisite only ------------------------------------
    print("\ninsert (course, CS101 'Intro') into //course[cno=CS240]/prereq")
    outcome = service.apply(
        InsertOp("//course[cno=CS240]/prereq", "course", ("CS101", "Intro"))
    )
    print("  SAT instance:", outcome.stats.get("sat_vars"), "vars,",
          outcome.stats.get("sat_clauses"), "clauses")
    for op in outcome.delta_r:
        print(f"  ΔR: {op.kind} {op.relation}{op.row}")
    dept = db.table("course").get(("CS101",))[2]
    print(f"  -> the solver chose dept={dept!r} (anything but 'CS', which "
          "would surface CS101 at the root — a side effect)")

    # -- 2. new course at the root: dept is forced the other way ------------------
    print("\ninsert (course, CS700 'Theory') into . (the root)")
    outcome = service.apply(InsertOp(".", "course", ("CS700", "Theory")))
    for op in outcome.delta_r:
        print(f"  ΔR: {op.kind} {op.relation}{op.row}")
    print("  -> dept='CS' was *derived* from the view's selection condition")

    # -- 3. an impossible insertion is rejected ----------------------------------
    print("\ninsert (course, CS240 'WRONG-TITLE') into course[cno=CS650]/prereq")
    try:
        service.apply(
            InsertOp("course[cno=CS650]/prereq", "course",
                     ("CS240", "WRONG-TITLE"))
        )
    except Exception as exc:
        print(f"  -> rejected: {exc}")

    print("\nConsistency:", service.check_consistency() or "OK")


if __name__ == "__main__":
    main()
