"""repro — Updating Recursive XML Views of Relations.

A full reproduction of Choi, Cong, Fan & Viglas (ICDE 2007 / JCST 2008):
schema-directed XML publishing via attribute translation grammars (ATGs),
DAG compression of recursively defined XML views stored in relations,
XPath evaluation on DAGs with side-effect detection, translation of XML
view updates to relational view updates, and SPJ view update processing
under key preservation (PTIME deletions, SAT-based insertions).

Quickstart::

    from repro import DeleteOp, InsertOp, ViewConfig, open_view
    from repro.workloads.registrar import build_registrar

    atg, db = build_registrar()
    service = open_view(atg, db)
    print(service.xml_tree())

    # One-shot apply:
    service.apply(DeleteOp("course[cno='CS650']/prereq/course[cno='CS320']"))

    # Or two-phase — preview ΔV/ΔR first, then commit (or abort):
    plan = service.plan(InsertOp(".", "course", ("CS700", "Theory")))
    print(plan.delta_r)
    plan.commit()

    # Live results and the public event stream:
    sub = service.subscribe("course[cno=CS650]/prereq/course")
    sub.result(); sub.delta()          # full set / (added, removed) per commit
    feed = service.changefeed()        # replayable JSON events
                                       # (see docs/event-schema.md)

    # Out-of-process read replicas (see docs/replication.md):
    snap = service.snapshot()          # durable artifact; snap.save(path)
    replica = ReplicaView(atg, InProcessTransport(service))
    replica.bootstrap()                # snapshot + gapless changefeed attach
    replica.wait_for(snap.generation)  # read-your-generation fencing
    replica.xpath("course[cno=CS650]/prereq/course")
"""

from repro.atg import ATG, ProjectionRule, QueryRule, publish_store, publish_tree
from repro.core import (
    DagXPathEvaluator,
    PlanState,
    ReachabilityMatrix,
    SideEffectPolicy,
    TopoOrder,
    UpdateOutcome,
    UpdatePlan,
    UpdateSession,
    XMLViewUpdater,
    compute_reach,
)
from repro.ops import (
    BaseUpdateOp,
    DeleteOp,
    InsertOp,
    ReplaceOp,
    UpdateOperation,
    op_from_dict,
    op_from_json,
    ops_from_jsonl,
)
from repro.service import RWLock, ViewConfig, ViewService, open_view
from repro.subscribe import (
    SCHEMA_VERSION,
    EdgeRecord,
    NodeRecord,
    Subscription,
    SubscriptionRegistry,
    ViewEvent,
)
from repro.replica import (
    SNAPSHOT_SCHEMA_VERSION,
    InProcessTransport,
    ReplicaView,
    ReplicationServer,
    Snapshot,
    SocketTransport,
)
from repro.changefeed import ChangefeedConsumer, ChangefeedHub, ReplayBuffer
from repro.dtd import DTD, parse_dtd
from repro.index import (
    BitsetReachabilityIndex,
    ReachabilityIndex,
    SetReachabilityIndex,
    build_index,
    make_index,
)
from repro.errors import (
    ChangefeedError,
    EventDecodeError,
    ReplayGapError,
    ReplicaDivergedError,
    ReplicaError,
    ReplicaStaleError,
    ReproError,
    SideEffectError,
    SnapshotError,
    SnapshotMismatchError,
    SnapshotSchemaError,
    UpdateRejectedError,
    ValidationError,
)
from repro.relational import (
    AttrType,
    Database,
    RelationSchema,
    SPJQuery,
)
from repro.views import ViewStore, build_registry
from repro.xpath import parse_xpath

__version__ = "0.10.0"

__all__ = [
    "ATG",
    "ProjectionRule",
    "QueryRule",
    "publish_store",
    "publish_tree",
    "DagXPathEvaluator",
    "ReachabilityMatrix",
    "SideEffectPolicy",
    "TopoOrder",
    "UpdateOutcome",
    "UpdatePlan",
    "PlanState",
    "UpdateSession",
    "XMLViewUpdater",
    "compute_reach",
    "UpdateOperation",
    "InsertOp",
    "DeleteOp",
    "ReplaceOp",
    "BaseUpdateOp",
    "op_from_dict",
    "op_from_json",
    "ops_from_jsonl",
    "open_view",
    "ViewService",
    "ViewConfig",
    "RWLock",
    "Subscription",
    "SubscriptionRegistry",
    "SCHEMA_VERSION",
    "ViewEvent",
    "EdgeRecord",
    "NodeRecord",
    "ChangefeedConsumer",
    "ChangefeedHub",
    "ReplayBuffer",
    "Snapshot",
    "SNAPSHOT_SCHEMA_VERSION",
    "ReplicaView",
    "InProcessTransport",
    "ReplicationServer",
    "SocketTransport",
    "ChangefeedError",
    "EventDecodeError",
    "ReplayGapError",
    "ReplicaError",
    "ReplicaStaleError",
    "ReplicaDivergedError",
    "SnapshotError",
    "SnapshotSchemaError",
    "SnapshotMismatchError",
    "ReachabilityIndex",
    "SetReachabilityIndex",
    "BitsetReachabilityIndex",
    "build_index",
    "make_index",
    "DTD",
    "parse_dtd",
    "ReproError",
    "SideEffectError",
    "UpdateRejectedError",
    "ValidationError",
    "AttrType",
    "Database",
    "RelationSchema",
    "SPJQuery",
    "ViewStore",
    "build_registry",
    "parse_xpath",
    "__version__",
]
