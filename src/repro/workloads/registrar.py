"""The paper's running example: the registrar database and ATG σ0.

Relational schema ``R0`` (Example 1, keys underlined in the paper)::

    course(cno, title, dept)        project(cno, title, dept)
    student(ssn, name)              enroll(ssn, cno)
    prereq(cno1, cno2)

DTD ``D0``::

    db      → course*
    course  → cno, title, prereq, takenBy
    prereq  → course*
    takenBy → student*
    student → ssn, name

The ATG publishes the CS department's course-registration hierarchy: the
root lists CS courses; each course's ``prereq`` recursively embeds its
prerequisite courses (hence the recursive, shareable subtrees of Fig. 1),
and ``takenBy`` lists enrolled students.
"""

from __future__ import annotations

from repro.atg.model import ATG, ProjectionRule, QueryRule
from repro.dtd.parser import parse_dtd
from repro.relational.conditions import Col, Const, Eq, Param
from repro.relational.database import Database
from repro.relational.query import SPJQuery
from repro.relational.schema import AttrType, RelationSchema

REGISTRAR_DTD_TEXT = """
<!ELEMENT db (course*)>
<!ELEMENT course (cno, title, prereq, takenBy)>
<!ELEMENT prereq (course*)>
<!ELEMENT takenBy (student*)>
<!ELEMENT student (ssn, name)>
"""


def registrar_schemas() -> list[RelationSchema]:
    """The five base relations of ``R0``."""
    S = AttrType.STR
    return [
        RelationSchema("course", [("cno", S), ("title", S), ("dept", S)], ["cno"]),
        RelationSchema("project", [("cno", S), ("title", S), ("dept", S)], ["cno"]),
        RelationSchema("student", [("ssn", S), ("name", S)], ["ssn"]),
        RelationSchema("enroll", [("ssn", S), ("cno", S)], ["ssn", "cno"]),
        RelationSchema("prereq", [("cno1", S), ("cno2", S)], ["cno1", "cno2"]),
    ]


def registrar_atg() -> ATG:
    """The ATG σ0 of Fig. 2."""
    dtd = parse_dtd(REGISTRAR_DTD_TEXT)
    q_db_course = SPJQuery(
        "Qdb_course",
        [("course", "c")],
        [("cno", Col("c", "cno")), ("title", Col("c", "title"))],
        Eq(Col("c", "dept"), Const("CS")),
    )
    q_prereq_course = SPJQuery(
        "Qprereq_course",
        [("prereq", "p"), ("course", "c")],
        [("cno", Col("c", "cno")), ("title", Col("c", "title"))],
        where=_and(
            Eq(Col("p", "cno1"), Param("cno")),
            Eq(Col("p", "cno2"), Col("c", "cno")),
        ),
    )
    q_takenby_student = SPJQuery(
        "QtakenBy_student",
        [("enroll", "e"), ("student", "s")],
        [("ssn", Col("s", "ssn")), ("name", Col("s", "name"))],
        where=_and(
            Eq(Col("e", "cno"), Param("cno")),
            Eq(Col("e", "ssn"), Col("s", "ssn")),
        ),
    )
    signatures = {
        "db": (),
        "course": ("cno", "title"),
        "cno": ("cno",),
        "title": ("title",),
        "prereq": ("cno",),
        "takenBy": ("cno",),
        "student": ("ssn", "name"),
        "ssn": ("ssn",),
        "name": ("name",),
    }
    rules = [
        QueryRule("db", "course", q_db_course),
        ProjectionRule("course", "cno", ("cno",)),
        ProjectionRule("course", "title", ("title",)),
        ProjectionRule("course", "prereq", ("cno",)),
        ProjectionRule("course", "takenBy", ("cno",)),
        QueryRule("prereq", "course", q_prereq_course),
        QueryRule("takenBy", "student", q_takenby_student),
        ProjectionRule("student", "ssn", ("ssn",)),
        ProjectionRule("student", "name", ("name",)),
    ]
    return ATG(dtd, signatures, rules)


def _and(*parts):
    from repro.relational.conditions import And

    return And(*parts)


def build_registrar(populate: bool = True) -> tuple[ATG, Database]:
    """The registrar ATG plus a small instance shaped like Fig. 1.

    Courses: CS650 (prereq CS320), CS500, CS320 (prereq CS240), CS240,
    plus the non-CS MA100 (invisible in the view).  Student S02 is
    enrolled in both CS320 and CS500, so the S02 subtree is shared —
    the sharing the paper's Examples 4–7 rely on.
    """
    db = Database("registrar")
    for schema in registrar_schemas():
        db.create_table(schema)
    atg = registrar_atg()
    if not populate:
        return atg, db
    db.insert_all(
        "course",
        [
            ("CS650", "Advanced Databases", "CS"),
            ("CS500", "Operating Systems", "CS"),
            ("CS320", "Databases", "CS"),
            ("CS240", "Data Structures", "CS"),
            ("MA100", "Calculus", "MATH"),
        ],
    )
    db.insert_all(
        "prereq",
        [
            ("CS650", "CS320"),
            ("CS320", "CS240"),
        ],
    )
    db.insert_all(
        "student",
        [
            ("S01", "Ada"),
            ("S02", "Grace"),
            ("S03", "Edsger"),
        ],
    )
    db.insert_all(
        "enroll",
        [
            ("S01", "CS650"),
            ("S02", "CS320"),
            ("S02", "CS500"),
            ("S03", "CS240"),
        ],
    )
    return atg, db
