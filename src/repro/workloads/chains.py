"""Depth-stress workload: deep prerequisite chains.

The paper's distinguishing feature is support for *recursive* view
definitions; this dataset pushes the recursion depth to its extreme —
one long chain (optionally with short side branches), published through
the registrar ATG.  It exercises:

- the iterative (non-recursive) bottom-up pass of the DAG evaluator
  (a recursive implementation would exhaust Python's stack);
- Algorithm Reach on a path graph (|M| = Θ(n²) pairs — the worst case
  for the matrix size);
- maintenance after updates deep in the chain (swap distances, ancestor
  recomputation along the whole chain).
"""

from __future__ import annotations

from repro.atg.model import ATG
from repro.relational.database import Database
from repro.workloads.registrar import registrar_atg, registrar_schemas


def build_chain(
    depth: int = 200, branch_every: int = 0, students: int = 0
) -> tuple[ATG, Database]:
    """A prerequisite chain ``K0000 → K0001 → ... → K<depth-1>``.

    ``branch_every > 0`` adds a leaf side-prerequisite at every such
    interval; ``students`` enrolls that many students in the chain head
    (shared leaf subtrees at maximum depth distance).
    """
    db = Database("chain")
    for schema in registrar_schemas():
        db.create_table(schema)
    atg = registrar_atg()

    for i in range(depth):
        db.insert("course", (f"K{i:04d}", f"level-{i}", "CS" if i == 0 else "X"))
    for i in range(depth - 1):
        db.insert("prereq", (f"K{i:04d}", f"K{i + 1:04d}"))
    if branch_every > 0:
        for i in range(0, depth, branch_every):
            leaf = f"B{i:04d}"
            db.insert("course", (leaf, f"branch-{i}", "X"))
            db.insert("prereq", (f"K{i:04d}", leaf))
    for s in range(students):
        ssn = f"T{s:03d}"
        db.insert("student", (ssn, f"stud-{s}"))
        db.insert("enroll", (ssn, f"K{depth - 1:04d}"))
    return atg, db
