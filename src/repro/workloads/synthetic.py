"""The evaluation dataset of Section 5: relations C, F, H (and CU).

The paper's generator (reconstructed from its prose):

- ``C(c1, ..., c16)`` with key ``c1``; ``F(f1, ..., f16)`` with
  ``|F| = |C|`` and ``dom(f1) = dom(c1)``; attributes ``c2..c4`` /
  ``f2..f4`` control how many C ⋈ F pairs survive the join filter;
- ``H(h1, h2)`` with ``|H| ≈ 3·|C|`` (about three child edges per
  course) and ``h1 < h2`` (the hierarchy is acyclic);
- ``CU`` is a 100M-tuple universe guaranteeing that ``h2`` always joins.
  **Substitution:** we draw ``h2`` from C's own key space instead of
  materializing CU — the only property the paper uses is that the join
  never dangles, which holds by construction (see DESIGN.md §5).

The recursive view (Fig. 10(a)): the root lists *top-level* C nodes; a C
node's ``sub`` recursively embeds the C nodes reachable through ``H``,
each guarded by the C ⋈ F filter::

    π_{c1,f1,h1,h2}( σ_{c1=f1 ∧ f1=h1 ∧ h2=c'1 ∧ c2=f2 ∧ c3=f3 ∧ c4=f4}
                     (C × F × H × CU) )

Sharing (the paper reports 31.4% of C instances shared) arises when two
parents pick the same child; the generator uses a layered key space so
the DAG has bounded depth and sharing is controllable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.atg.model import ATG, ProjectionRule, QueryRule
from repro.dtd.parser import parse_dtd
from repro.relational.conditions import And, Col, Const, Eq, Param
from repro.relational.database import Database
from repro.relational.query import SPJQuery
from repro.relational.schema import AttrType, RelationSchema

SYNTHETIC_DTD_TEXT = """
<!ELEMENT root (cnode*)>
<!ELEMENT cnode (key, val, sub)>
<!ELEMENT sub (cnode*)>
<!ELEMENT key (#PCDATA)>
<!ELEMENT val (#PCDATA)>
"""


@dataclass
class SyntheticConfig:
    """Knobs of the synthetic generator.

    ``n_c`` is |C| (the size the paper reports); the other defaults are
    chosen to land near the paper's statistics (≈3 H edges per C tuple,
    ≈31% shared C instances, most C ⋈ F pairs surviving).
    """

    n_c: int = 1000
    seed: int = 42
    layers: int = 8
    children_per_node: float = 3.0
    pass_rate: float = 0.85
    """Fraction of C tuples whose F partner satisfies the join filter."""
    share_bias: float = 0.3
    """Probability a child edge targets the 'popular' slice of the next
    layer (drives subtree sharing up)."""
    popular_fraction: float = 0.25
    top_fraction: float = 1.0
    """Fraction of layer-0 nodes flagged top-level (root children)."""
    universe_fraction: float = 0.4
    """Fraction of H edges whose h2 lands in the CU universe outside C
    (the paper's 100M-tuple CU absorbed most edges; such edges dangle
    w.r.t. the published view).  Calibrated so ~31% of published C
    instances are shared, matching Fig. 10(b)."""

    def __post_init__(self) -> None:
        if self.n_c < self.layers * 2:
            self.layers = max(2, self.n_c // 2)


def synthetic_schemas() -> list[RelationSchema]:
    I, S = AttrType.INT, AttrType.STR
    c_cols = [("c1", I), ("c2", I), ("c3", I), ("c4", I), ("c5", S), ("c6", I)]
    c_cols += [(f"c{i}", I) for i in range(7, 17)]
    f_cols = [("f1", I), ("f2", I), ("f3", I), ("f4", I), ("f5", S), ("f6", I)]
    f_cols += [(f"f{i}", I) for i in range(7, 17)]
    return [
        RelationSchema("C", c_cols, ["c1"]),
        RelationSchema("F", f_cols, ["f1"]),
        RelationSchema("H", [("h1", I), ("h2", I)], ["h1", "h2"]),
    ]


def synthetic_atg() -> ATG:
    """The recursive ATG over C, F, H (Fig. 10(a))."""
    dtd = parse_dtd(SYNTHETIC_DTD_TEXT)
    join_filter = [
        Eq(Col("c", "c1"), Col("f", "f1")),
        Eq(Col("c", "c2"), Col("f", "f2")),
        Eq(Col("c", "c3"), Col("f", "f3")),
        Eq(Col("c", "c4"), Col("f", "f4")),
    ]
    q_root = SPJQuery(
        "Qroot_cnode",
        [("C", "c"), ("F", "f")],
        [("c1", Col("c", "c1")), ("c5", Col("c", "c5"))],
        And(*join_filter, Eq(Col("c", "c6"), Const(1))),
    )
    q_sub = SPJQuery(
        "Qsub_cnode",
        [("H", "h"), ("C", "c"), ("F", "f")],
        [("c1", Col("c", "c1")), ("c5", Col("c", "c5"))],
        And(
            Eq(Col("h", "h1"), Param("c1")),
            Eq(Col("h", "h2"), Col("c", "c1")),
            *join_filter,
        ),
    )
    signatures = {
        "root": (),
        "cnode": ("c1", "c5"),
        "key": ("c1",),
        "val": ("c5",),
        "sub": ("c1",),
    }
    rules = [
        QueryRule("root", "cnode", q_root),
        ProjectionRule("cnode", "key", ("c1",)),
        ProjectionRule("cnode", "val", ("c5",)),
        ProjectionRule("cnode", "sub", ("c1",)),
        QueryRule("sub", "cnode", q_sub),
    ]
    return ATG(dtd, signatures, rules)


@dataclass
class SyntheticDataset:
    """A generated instance plus bookkeeping the workloads need."""

    config: SyntheticConfig
    atg: ATG
    db: Database
    layer_of: dict[int, int] = field(default_factory=dict)
    passing: set[int] = field(default_factory=set)
    """C keys whose F partner satisfies the join filter."""
    top_level: set[int] = field(default_factory=set)


def build_synthetic(config: SyntheticConfig | None = None) -> SyntheticDataset:
    """Generate a dataset; deterministic for a given config."""
    config = config or SyntheticConfig()
    rng = random.Random(config.seed)
    db = Database("synthetic")
    for schema in synthetic_schemas():
        db.create_table(schema)
    dataset = SyntheticDataset(config, synthetic_atg(), db)

    n = config.n_c
    layers = config.layers
    layer_size = n // layers

    def layer(key: int) -> int:
        return min((key - 1) // layer_size, layers - 1)

    # --- C and F -----------------------------------------------------------
    for key in range(1, n + 1):
        lay = layer(key)
        dataset.layer_of[key] = lay
        passing = rng.random() < config.pass_rate
        top = lay == 0 and rng.random() < config.top_fraction
        if passing:
            dataset.passing.add(key)
        if top and passing:
            dataset.top_level.add(key)
        c2, c3, c4 = rng.randrange(100), rng.randrange(100), rng.randrange(100)
        payload = f"v{key % 97}"
        filler_c = tuple(rng.randrange(1000) for _ in range(10))
        db.insert(
            "C",
            (key, c2, c3, c4, payload, 1 if top else 0, *filler_c),
        )
        # F partner: equal join columns iff `passing`.
        f2 = c2 if passing else c2 + 1
        filler_f = tuple(rng.randrange(1000) for _ in range(10))
        db.insert("F", (key, f2, c3, c4, f"w{key % 89}", 0, *filler_f))

    # --- H: layered child edges with a popularity bias -----------------------
    for key in range(1, n + 1):
        lay = dataset.layer_of[key]
        if lay >= layers - 1:
            continue  # bottom layer: leaves
        next_lo = (lay + 1) * layer_size + 1
        next_hi = min((lay + 2) * layer_size, n)
        if next_lo > next_hi:
            continue
        span = next_hi - next_lo + 1
        popular_hi = next_lo + max(1, int(span * config.popular_fraction)) - 1
        n_children = _poissonish(rng, config.children_per_node)
        chosen: set[int] = set()
        for _ in range(n_children):
            if rng.random() < config.universe_fraction:
                # CU edge: h2 beyond C's key space; always joins CU in
                # the paper, never joins C here -> filtered in the view.
                child = rng.randint(n + 1, 2 * n + 1000)
            elif rng.random() < config.share_bias:
                child = rng.randint(next_lo, popular_hi)
            else:
                child = rng.randint(next_lo, next_hi)
            if child > key:  # h1 < h2 by layered construction
                chosen.add(child)
        for child in sorted(chosen):
            db.insert("H", (key, child))
    return dataset


def _poissonish(rng: random.Random, mean: float) -> int:
    """Small-integer child count with the given mean (2/3/4-ish spread)."""
    base = int(mean)
    frac = mean - base
    count = base + (1 if rng.random() < frac else 0)
    # ±1 jitter, clamped at 0
    jitter = rng.choice((-1, 0, 0, 1))
    return max(0, count + jitter)
