"""Update workloads W1/W2/W3 over the synthetic dataset (Section 5).

The paper's three classes, ten operations each:

- **W1** — XPath with ``//`` and value-based filters
  (``//cnode[key=A]//cnode[key=B]``);
- **W2** — XPath with ``/`` and value-based filters
  (``cnode[key=A]/sub/cnode[key=B]``);
- **W3** — XPath with ``/`` plus structural *and* value filters
  (``cnode[key=A and sub/cnode]/sub/cnode[key=B]``).

Deletion workloads use the paths directly; insertion workloads append
``/sub`` and insert a ``cnode`` subtree — by default an *existing* C key
(a sharing insert: only an ``H`` tuple is new), with a configurable
fraction of brand-new keys that exercise the SAT translation (and may be
rejected, as 22% of the paper's runs were).  Replacement workloads swap
the selected ``cnode`` for another one in a single composite operation.

Workloads are emitted as the typed operations of :mod:`repro.ops`
(``InsertOp`` / ``DeleteOp`` / ``ReplaceOp``), so a driver feeds them
straight into ``service.apply(op)`` — no per-kind dispatch.

:func:`make_query_set` / :data:`REGISTRAR_QUERIES` provide the *read*
side: diverse XPath sets over the same datasets, used as standing
queries by the subscription engine
(:meth:`repro.service.ViewService.subscribe`) and its benchmarks —
mostly value-anchored ``/``-paths whose per-step dependencies let the
engine skip unrelated ops, plus a few ``//`` paths that always pay a
re-evaluation.
"""

from __future__ import annotations

import random

from repro.ops import DeleteOp, InsertOp, ReplaceOp, UpdateOperation
from repro.workloads.synthetic import SyntheticDataset


def _children(dataset: SyntheticDataset, key: int) -> list[int]:
    """Passing child keys of ``key`` in the published hierarchy."""
    rows = dataset.db.table("H").lookup(("h1",), (key,))
    return sorted(h2 for _, h2 in rows if h2 in dataset.passing)


def _descendant_pairs(
    dataset: SyntheticDataset, rng: random.Random, want: int
) -> list[tuple[int, int]]:
    """(ancestor, strict descendant ≥2 levels down) pairs in the view."""
    pairs: list[tuple[int, int]] = []
    tops = sorted(dataset.top_level)
    rng.shuffle(tops)
    for top in tops:
        frontier = _children(dataset, top)
        depth = 0
        while frontier and depth < 4:
            depth += 1
            nxt: list[int] = []
            for node in frontier:
                nxt.extend(_children(dataset, node))
            frontier = sorted(set(nxt))
            if depth >= 2 and frontier:
                pairs.append((top, rng.choice(frontier)))
                break
        if len(pairs) >= want:
            break
    return pairs


def _parent_child_pairs(
    dataset: SyntheticDataset, rng: random.Random, want: int
) -> list[tuple[int, int]]:
    pairs: list[tuple[int, int]] = []
    tops = sorted(dataset.top_level)
    rng.shuffle(tops)
    for top in tops:
        children = _children(dataset, top)
        if children:
            pairs.append((top, rng.choice(children)))
        if len(pairs) >= want:
            break
    return pairs


def _payload_of(dataset: SyntheticDataset, key: int) -> str:
    row = dataset.db.table("C").get((key,))
    assert row is not None
    return row[4]


def make_workload(
    dataset: SyntheticDataset,
    kind: str,
    cls: str,
    count: int = 10,
    seed: int = 1,
    new_key_fraction: float = 0.3,
) -> list[UpdateOperation]:
    """Generate ``count`` typed operations of class ``cls``.

    ``kind`` is ``'insert'``, ``'delete'`` or ``'replace'``; the result
    is a list of :class:`~repro.ops.InsertOp` /
    :class:`~repro.ops.DeleteOp` / :class:`~repro.ops.ReplaceOp`.
    """
    # Deterministic per (seed, class): str hashes are randomized per
    # process, so derive the class salt from code points instead.
    cls_salt = sum(ord(ch) * (i + 1) for i, ch in enumerate(cls))
    rng = random.Random(seed * 1000 + cls_salt)
    if cls == "W1":
        pairs = _descendant_pairs(dataset, rng, count)
        paths = [f"//cnode[key={a}]//cnode[key={b}]" for a, b in pairs]
    elif cls == "W2":
        pairs = _parent_child_pairs(dataset, rng, count)
        paths = [f"cnode[key={a}]/sub/cnode[key={b}]" for a, b in pairs]
    elif cls == "W3":
        pairs = _parent_child_pairs(dataset, rng, count)
        paths = [
            f"cnode[key={a} and sub/cnode]/sub/cnode[key={b}]"
            for a, b in pairs
        ]
    else:
        raise ValueError(f"unknown workload class {cls!r}")

    if kind == "delete":
        return [DeleteOp(path) for path in paths[:count]]
    if kind not in ("insert", "replace"):
        raise ValueError(f"unknown workload kind {kind!r}")

    ops: list[UpdateOperation] = []
    next_new_key = dataset.config.n_c + 1000
    for index, path in enumerate(paths[:count]):
        if rng.random() < new_key_fraction:
            key = next_new_key + index
            sem = (key, f"new{index}")
        else:
            key = rng.choice(sorted(dataset.passing))
            sem = (key, _payload_of(dataset, key))
        if kind == "insert":
            ops.append(InsertOp(f"{path}/sub", element="cnode", sem=sem))
        else:
            ops.append(ReplaceOp(path, element="cnode", sem=sem))
    return ops


#: Standing queries over the registrar view (Example 1): value-anchored
#: child paths plus two ``//`` paths, the shapes the subscription
#: engine's skip / suffix / full decisions distinguish.
REGISTRAR_QUERIES = (
    "course[cno=CS650]/prereq/course",
    "course[cno=CS650]/prereq/course[cno=CS320]",
    "course[cno=CS320]/prereq/course",
    "course[cno=CS240]",
    "course[cno=CS650]/takenBy/student",
    "course[cno=CS240]/takenBy/student[ssn=S02]",
    "course[prereq/course]/takenBy",
    "//course",
    "//student[ssn=S02]",
)


def registrar_op_stream() -> list[UpdateOperation]:
    """A short all-accepted op stream over the registrar seed data.

    One op of every kind, in an order that keeps each accepted against
    :func:`~repro.workloads.registrar.build_registrar`'s instance —
    the canonical demo stream for subscriptions and the changefeed
    (examples, smoke tests, docs).  ``BaseUpdateOp`` rides at the end
    so the rest can be applied as one batch when a caller wants to.
    """
    from repro.ops import BaseUpdateOp

    return [
        DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"),
        InsertOp("course[cno=CS650]/prereq", "course",
                 ("CS500", "Operating Systems")),
        ReplaceOp("course[cno=CS650]/prereq/course[cno=CS500]",
                  "course", ("CS320", "Databases")),
        BaseUpdateOp(ops=(
            ("insert", "course", ("CS901", "Seminar", "CS")),
        )),
    ]


def make_query_set(
    dataset: SyntheticDataset,
    count: int = 12,
    seed: int = 1,
    descendant_fraction: float = 0.25,
) -> list[str]:
    """``count`` standing XPath queries over the synthetic dataset.

    Mirrors the W1/W2/W3 path shapes: roughly ``descendant_fraction``
    of the queries are W1-style ``//`` paths (never prunable — every
    structural change forces re-evaluation), the rest are W2/W3-style
    anchored ``/`` paths over sampled (parent, child) key pairs, whose
    value anchors make most unrelated updates skippable.
    """
    rng = random.Random(seed * 7919 + 11)
    pc_pairs = _parent_child_pairs(dataset, rng, count * 2)
    desc_pairs = _descendant_pairs(dataset, rng, count)
    queries: list[str] = []
    want_desc = max(1, int(count * descendant_fraction)) if count else 0
    for a, b in desc_pairs[:want_desc]:
        queries.append(f"//cnode[key={a}]//cnode[key={b}]")
    index = 0
    while len(queries) < count and index < len(pc_pairs):
        a, b = pc_pairs[index]
        index += 1
        shape = index % 3
        if shape == 0:
            queries.append(f"cnode[key={a}]/sub/cnode[key={b}]")
        elif shape == 1:
            queries.append(f"cnode[key={a}]/sub/cnode")
        else:
            queries.append(
                f"cnode[key={a} and sub/cnode]/sub/cnode[key={b}]"
            )
    while len(queries) < count:  # tiny datasets: pad with anchored paths
        key = rng.choice(sorted(dataset.passing))
        queries.append(f"cnode[key={key}]/sub/cnode")
    return queries
