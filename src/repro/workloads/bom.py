"""Bill-of-materials workload: a second recursive publishing domain.

Parts contain sub-parts (``contains`` is a DAG: shared components appear
under many assemblies — exactly the sharing the DAG compression targets).
Schema::

    part(pid, pname, kind)          # kind: 'assembly' | 'component'
    contains(parent, child)

View: the catalog lists assemblies; each part recursively embeds its
components.
"""

from __future__ import annotations

import random

from repro.atg.model import ATG, ProjectionRule, QueryRule
from repro.dtd.parser import parse_dtd
from repro.relational.conditions import And, Col, Const, Eq, Param
from repro.relational.database import Database
from repro.relational.query import SPJQuery
from repro.relational.schema import AttrType, RelationSchema

BOM_DTD_TEXT = """
<!ELEMENT catalog (part*)>
<!ELEMENT part (pid, pname, components)>
<!ELEMENT components (part*)>
<!ELEMENT pid (#PCDATA)>
<!ELEMENT pname (#PCDATA)>
"""


def bom_schemas() -> list[RelationSchema]:
    S = AttrType.STR
    return [
        RelationSchema(
            "part", [("pid", S), ("pname", S), ("kind", S)], ["pid"]
        ),
        RelationSchema(
            "contains", [("parent", S), ("child", S)], ["parent", "child"]
        ),
    ]


def bom_atg() -> ATG:
    dtd = parse_dtd(BOM_DTD_TEXT)
    q_catalog_part = SPJQuery(
        "Qcatalog_part",
        [("part", "p")],
        [("pid", Col("p", "pid")), ("pname", Col("p", "pname"))],
        Eq(Col("p", "kind"), Const("assembly")),
    )
    q_components_part = SPJQuery(
        "Qcomponents_part",
        [("contains", "x"), ("part", "p")],
        [("pid", Col("p", "pid")), ("pname", Col("p", "pname"))],
        And(
            Eq(Col("x", "parent"), Param("pid")),
            Eq(Col("x", "child"), Col("p", "pid")),
        ),
    )
    signatures = {
        "catalog": (),
        "part": ("pid", "pname"),
        "pid": ("pid",),
        "pname": ("pname",),
        "components": ("pid",),
    }
    rules = [
        QueryRule("catalog", "part", q_catalog_part),
        ProjectionRule("part", "pid", ("pid",)),
        ProjectionRule("part", "pname", ("pname",)),
        ProjectionRule("part", "components", ("pid",)),
        QueryRule("components", "part", q_components_part),
    ]
    return ATG(dtd, signatures, rules)


def build_bom(
    n_assemblies: int = 5,
    n_levels: int = 3,
    fanout: int = 3,
    seed: int = 7,
) -> tuple[ATG, Database]:
    """A layered BOM with heavily shared low-level components."""
    rng = random.Random(seed)
    db = Database("bom")
    for schema in bom_schemas():
        db.create_table(schema)

    levels: list[list[str]] = []
    counter = 0
    for level in range(n_levels + 1):
        width = n_assemblies * max(1, fanout // 2) ** level
        ids: list[str] = []
        for _ in range(width):
            counter += 1
            pid = f"P{counter:04d}"
            kind = "assembly" if level == 0 else "component"
            db.insert("part", (pid, f"part-{counter}", kind))
            ids.append(pid)
        levels.append(ids)

    for level in range(n_levels):
        for parent in levels[level]:
            children = rng.sample(
                levels[level + 1], k=min(fanout, len(levels[level + 1]))
            )
            for child in children:
                if not db.table("contains").has_key((parent, child)):
                    db.insert("contains", (parent, child))
    return bom_atg(), db
