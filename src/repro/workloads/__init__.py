"""Datasets, ATGs and update workloads.

- :mod:`repro.workloads.registrar` — the paper's running example
  (Example 1: registrar database, ATG σ0, Fig. 1 view);
- :mod:`repro.workloads.synthetic` — the evaluation dataset of Section 5
  (relations ``C``, ``F``, ``H``, ``CU`` with a recursive C hierarchy);
- :mod:`repro.workloads.bom` — a bill-of-materials domain exercising the
  public API on a second recursive schema;
- :mod:`repro.workloads.queries` — the W1/W2/W3 update workload
  generators of Section 5, emitting the typed ops of :mod:`repro.ops`.

:func:`named_workload` resolves a workload name from the command line
(``python -m repro.apply --workload NAME``) to an ``(atg, db)`` pair.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.workloads.bom import build_bom
from repro.workloads.chains import build_chain
from repro.workloads.queries import (
    REGISTRAR_QUERIES,
    make_query_set,
    make_workload,
    registrar_op_stream,
)
from repro.workloads.registrar import build_registrar, registrar_atg
from repro.workloads.synthetic import SyntheticConfig, build_synthetic


def named_workload(name: str):
    """Resolve a workload name to ``(atg, db)``.

    Formats: ``registrar``, ``bom``, ``synthetic[:n_c[:seed]]``,
    ``chain[:depth]`` — e.g. ``synthetic:300`` or ``chain:80``.
    """
    head, _, rest = name.partition(":")
    args = [a for a in rest.split(":") if a] if rest else []
    try:
        if head == "registrar" and not args:
            return build_registrar()
        if head == "bom" and not args:
            return build_bom()
        if head == "synthetic" and len(args) <= 2:
            n_c = int(args[0]) if args else 300
            seed = int(args[1]) if len(args) > 1 else 42
            dataset = build_synthetic(SyntheticConfig(n_c=n_c, seed=seed))
            return dataset.atg, dataset.db
        if head == "chain" and len(args) <= 1:
            depth = int(args[0]) if args else 50
            return build_chain(depth=depth)
    except ValueError:
        raise ReproError(
            f"bad numeric parameter in workload name {name!r}"
        ) from None
    raise ReproError(
        f"unknown workload {name!r}; expected registrar, bom, "
        "synthetic[:n_c[:seed]] or chain[:depth]"
    )


__all__ = [
    "build_registrar",
    "registrar_atg",
    "SyntheticConfig",
    "build_synthetic",
    "build_bom",
    "build_chain",
    "make_workload",
    "make_query_set",
    "registrar_op_stream",
    "REGISTRAR_QUERIES",
    "named_workload",
]
