"""Datasets, ATGs and update workloads.

- :mod:`repro.workloads.registrar` — the paper's running example
  (Example 1: registrar database, ATG σ0, Fig. 1 view);
- :mod:`repro.workloads.synthetic` — the evaluation dataset of Section 5
  (relations ``C``, ``F``, ``H``, ``CU`` with a recursive C hierarchy);
- :mod:`repro.workloads.bom` — a bill-of-materials domain exercising the
  public API on a second recursive schema;
- :mod:`repro.workloads.queries` — the W1/W2/W3 update workload
  generators of Section 5.
"""

from repro.workloads.registrar import build_registrar, registrar_atg
from repro.workloads.synthetic import SyntheticConfig, build_synthetic
from repro.workloads.bom import build_bom
from repro.workloads.chains import build_chain
from repro.workloads.queries import UpdateOp, make_workload

__all__ = [
    "build_registrar",
    "registrar_atg",
    "SyntheticConfig",
    "build_synthetic",
    "build_bom",
    "build_chain",
    "UpdateOp",
    "make_workload",
]
