"""XPath evaluation on (uncompressed) XML trees.

This is the reference evaluator: node-at-a-time, recursive, no indexes.
It serves two purposes:

- ground truth for the two-pass DAG evaluator
  (:mod:`repro.core.dag_eval`) — after unfolding a DAG to a tree, both
  must select the same set of ``(type, $A)`` node identities;
- the engine behind the uncompressed-tree baseline
  (:mod:`repro.baselines.tree_updater`) used in the ablation benchmarks.
"""

from __future__ import annotations

from repro.xmltree.tree import XMLNode
from repro.xpath.ast import (
    DescendantStep,
    ExistsPath,
    FAnd,
    FNot,
    FOr,
    Filter,
    FilterStep,
    LabelStep,
    LabelTest,
    ValueEq,
    WildcardStep,
    XPath,
)


def evaluate_on_tree(path: XPath, root: XMLNode) -> list[XMLNode]:
    """All nodes reached by ``path`` starting at ``root`` (document order)."""
    nodes, _ = evaluate_on_tree_with_parents(path, root)
    return nodes


def evaluate_on_tree_with_parents(
    path: XPath, root: XMLNode
) -> tuple[list[XMLNode], list[tuple[XMLNode | None, XMLNode]]]:
    """Evaluate ``path``; also return the parent edges used by the last step.

    The second component is the tree analogue of the paper's ``Ep(r)``:
    for each selected node ``v``, the pair ``(u, v)`` where ``p`` reaches
    ``v`` through parent ``u`` (``None`` if ``v`` is the root itself).
    """
    # Context: list of (parent_or_None, node) pairs, deduplicated per step.
    context: list[tuple[XMLNode | None, XMLNode]] = [(None, root)]
    for step in path.steps:
        next_context: list[tuple[XMLNode | None, XMLNode]] = []
        seen: set[tuple[int, int]] = set()

        def push(parent: XMLNode | None, node: XMLNode) -> None:
            key = (id(parent), id(node))
            if key not in seen:
                seen.add(key)
                next_context.append((parent, node))

        if isinstance(step, LabelStep):
            for _, node in _unique_nodes(context):
                for child in node.children:
                    if child.tag == step.label:
                        push(node, child)
        elif isinstance(step, WildcardStep):
            for _, node in _unique_nodes(context):
                for child in node.children:
                    push(node, child)
        elif isinstance(step, DescendantStep):
            for parent, node in _unique_nodes(context):
                push(parent, node)  # self
                _descend(node, push)
        elif isinstance(step, FilterStep):
            for parent, node in context:
                if _eval_filter(step.filter, node):
                    push(parent, node)
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown step {step!r}")
        context = next_context
    nodes: list[XMLNode] = []
    seen_nodes: set[int] = set()
    for _, node in context:
        if id(node) not in seen_nodes:
            seen_nodes.add(id(node))
            nodes.append(node)
    return nodes, context


def _unique_nodes(
    context: list[tuple[XMLNode | None, XMLNode]]
) -> list[tuple[XMLNode | None, XMLNode]]:
    """Deduplicate context by node (keep first parent), preserving order."""
    seen: set[int] = set()
    out: list[tuple[XMLNode | None, XMLNode]] = []
    for parent, node in context:
        if id(node) not in seen:
            seen.add(id(node))
            out.append((parent, node))
    return out


def _descend(node: XMLNode, push) -> None:
    for child in node.children:
        push(node, child)
        _descend(child, push)


def _eval_filter(filt: Filter, node: XMLNode) -> bool:
    if isinstance(filt, LabelTest):
        return node.tag == filt.label
    if isinstance(filt, ExistsPath):
        return bool(evaluate_on_tree(filt.path, node))
    if isinstance(filt, ValueEq):
        if not filt.path.steps:
            return node.value() == filt.value
        reached = evaluate_on_tree(filt.path, node)
        return any(n.value() == filt.value for n in reached)
    if isinstance(filt, FAnd):
        return all(_eval_filter(p, node) for p in filt.parts)
    if isinstance(filt, FOr):
        return any(_eval_filter(p, node) for p in filt.parts)
    if isinstance(filt, FNot):
        return not _eval_filter(filt.part, node)
    raise TypeError(f"unknown filter {filt!r}")
