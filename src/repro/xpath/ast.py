"""Normalized AST for the paper's XPath fragment.

A path is a sequence of *steps* in the paper's normal form; filters are a
small Boolean algebra over relative paths, value comparisons and label
tests.  All nodes are frozen dataclasses, hence hashable — the DAG
evaluator memoizes truth values keyed by (filter-expression, node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


# ---------------------------------------------------------------------------
# Steps (η in the paper's normal form)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LabelStep:
    """Child step selecting children with a given element type: ``A``."""

    label: str

    def __str__(self) -> str:
        return self.label


@dataclass(frozen=True)
class WildcardStep:
    """Child step selecting all children: ``*``."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class DescendantStep:
    """Descendant-or-self step: ``//``."""

    def __str__(self) -> str:
        return "//"


@dataclass(frozen=True)
class FilterStep:
    """Self step with a filter: ``ε[q]``."""

    filter: "Filter"

    def __str__(self) -> str:
        return f".[{self.filter}]"


Step = Union[LabelStep, WildcardStep, DescendantStep, FilterStep]


# ---------------------------------------------------------------------------
# Filters (q)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LabelTest:
    """``label() = A``."""

    label: str

    def __str__(self) -> str:
        return f"label()={self.label}"


@dataclass(frozen=True)
class ExistsPath:
    """Existential path filter: ``q ::= p`` (some node is reachable via p)."""

    path: "XPath"

    def __str__(self) -> str:
        return str(self.path)


def quote_literal(value: str) -> str:
    """Quote a string constant so the parser round-trips it exactly.

    Prefers double quotes; a value containing ``"`` switches to single
    quotes, and a value containing both styles doubles the delimiter
    (standard XPath escaping).
    """
    if '"' not in value:
        return f'"{value}"'
    if "'" not in value:
        return f"'{value}'"
    return '"' + value.replace('"', '""') + '"'


@dataclass(frozen=True)
class ValueEq:
    """Value filter ``p = "s"``: some node reached via p has string value s.

    An empty path compares the context node's own value.
    """

    path: "XPath"
    value: str

    def __str__(self) -> str:
        prefix = str(self.path) if self.path.steps else "."
        return f"{prefix}={quote_literal(self.value)}"


@dataclass(frozen=True)
class FAnd:
    parts: tuple["Filter", ...]

    def __str__(self) -> str:
        return " and ".join(f"({p})" for p in self.parts)


@dataclass(frozen=True)
class FOr:
    parts: tuple["Filter", ...]

    def __str__(self) -> str:
        return " or ".join(f"({p})" for p in self.parts)


@dataclass(frozen=True)
class FNot:
    part: "Filter"

    def __str__(self) -> str:
        return f"not({self.part})"


Filter = Union[LabelTest, ExistsPath, ValueEq, FAnd, FOr, FNot]


# ---------------------------------------------------------------------------
# Paths
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class XPath:
    """A normalized path: a tuple of steps."""

    steps: tuple[Step, ...]

    def __str__(self) -> str:
        parts: list[str] = []
        pending_sep = False
        for step in self.steps:
            if isinstance(step, DescendantStep):
                parts.append("//")
                pending_sep = False
                continue
            if isinstance(step, FilterStep):
                # Attach filters to the previous rendered step when possible.
                if parts and parts[-1] not in ("/", "//"):
                    parts[-1] = f"{parts[-1]}[{step.filter}]"
                else:
                    parts.append(f".[{step.filter}]")
                continue
            if pending_sep:
                parts.append("/")
            parts.append(str(step))
            pending_sep = True
        out = ""
        for part in parts:
            out += part
        return out

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def last_child_step_index(self) -> int | None:
        """Index of the final non-filter step, or ``None`` for pure filters."""
        for i in range(len(self.steps) - 1, -1, -1):
            if not isinstance(self.steps[i], FilterStep):
                return i
        return None

    def size(self) -> int:
        """|p|: total number of steps plus filter sub-expressions."""
        total = 0
        for step in self.steps:
            total += 1
            if isinstance(step, FilterStep):
                total += _filter_size(step.filter)
        return total


def _filter_size(filt: Filter) -> int:
    if isinstance(filt, (LabelTest,)):
        return 1
    if isinstance(filt, ExistsPath):
        return filt.path.size()
    if isinstance(filt, ValueEq):
        return 1 + filt.path.size()
    if isinstance(filt, (FAnd, FOr)):
        return 1 + sum(_filter_size(p) for p in filt.parts)
    if isinstance(filt, FNot):
        return 1 + _filter_size(filt.part)
    raise TypeError(f"unknown filter {filt!r}")


def normalize_steps(steps: list[Step]) -> tuple[Step, ...]:
    """Apply the paper's normal-form rewrites.

    - fuse consecutive filter steps: ``ε[q1]/ε[q2] → ε[q1 ∧ q2]``;
    - collapse consecutive ``//`` steps (``// // ≡ //``).
    """
    out: list[Step] = []
    for step in steps:
        if isinstance(step, DescendantStep) and out and isinstance(
            out[-1], DescendantStep
        ):
            continue
        if isinstance(step, FilterStep) and out and isinstance(out[-1], FilterStep):
            prev = out.pop()
            out.append(FilterStep(fand(prev.filter, step.filter)))
            continue
        out.append(step)
    return tuple(out)


def fand(*filters: Filter) -> Filter:
    """Conjunction smart-constructor (flattens, drops duplicates)."""
    parts: list[Filter] = []
    for filt in filters:
        if isinstance(filt, FAnd):
            parts.extend(filt.parts)
        else:
            parts.append(filt)
    if len(parts) == 1:
        return parts[0]
    return FAnd(tuple(parts))
