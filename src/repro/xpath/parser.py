"""Recursive-descent parser for the paper's XPath fragment.

Accepted syntax (examples from the paper)::

    course[cno=CS650]//course[cno=CS320]/prereq
    //course[cno=CS320]//student[sid=S02]
    //student[sid="S02"]
    course[prereq/course and not(label()=project)]/takenBy

Constants on the right of ``=`` may be quoted (single or double) or bare
alphanumeric tokens (the paper writes ``cno=CS650``); both denote string
values.  Quoted literals follow standard XPath string semantics: a
single-quoted literal may contain ``"`` and vice versa, and the
delimiting quote itself may appear doubled — 'it''s' denotes the string
``it's``.  ``and``/``or``/``not(...)`` build Boolean filters;
``label()=A`` tests the context node's type.
"""

from __future__ import annotations

import re

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    DescendantStep,
    ExistsPath,
    FAnd,
    FNot,
    FOr,
    Filter,
    FilterStep,
    LabelStep,
    LabelTest,
    Step,
    ValueEq,
    WildcardStep,
    XPath,
    fand,
    normalize_steps,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<dslash>//)
  | (?P<slash>/)
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<eq>=)
  | (?P<star>\*)
  | (?P<dot>\.)
  | (?P<string>"(?:[^"]|"")*"|'(?:[^']|'')*')
  | (?P<name>[A-Za-z_][A-Za-z0-9_\-]*)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<ws>\s+)
""",
    re.VERBOSE,
)


class _Tokens:
    def __init__(self, text: str):
        self.text = text
        self.items: list[tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                raise XPathSyntaxError(
                    f"unexpected character {text[pos]!r} at position {pos} in {text!r}"
                )
            kind = match.lastgroup
            if kind != "ws":
                self.items.append((kind, match.group()))
            pos = match.end()
        self.index = 0

    def peek(self) -> tuple[str, str] | None:
        if self.index < len(self.items):
            return self.items[self.index]
        return None

    def next(self) -> tuple[str, str]:
        item = self.peek()
        if item is None:
            raise XPathSyntaxError(f"unexpected end of input in {self.text!r}")
        self.index += 1
        return item

    def accept(self, kind: str) -> str | None:
        item = self.peek()
        if item is not None and item[0] == kind:
            self.index += 1
            return item[1]
        return None

    def expect(self, kind: str) -> str:
        value = self.accept(kind)
        if value is None:
            found = self.peek()
            raise XPathSyntaxError(
                f"expected {kind} but found {found!r} in {self.text!r}"
            )
        return value

    def done(self) -> bool:
        return self.index >= len(self.items)


def parse_xpath(text: str) -> XPath:
    """Parse an XPath expression of the supported fragment."""
    tokens = _Tokens(text)
    path = _parse_path(tokens)
    if not tokens.done():
        raise XPathSyntaxError(
            f"trailing tokens {tokens.items[tokens.index:]} in {text!r}"
        )
    return path


def _parse_path(tokens: _Tokens) -> XPath:
    steps: list[Step] = []
    # Optional leading separator.
    if tokens.accept("dslash") is not None:
        steps.append(DescendantStep())
        if tokens.done():  # bare "//": every node
            return XPath(normalize_steps(steps))
    else:
        tokens.accept("slash")
    _parse_step(tokens, steps)
    while True:
        if tokens.accept("dslash") is not None:
            steps.append(DescendantStep())
            if tokens.done():
                # The paper's abbreviation: p1// stands for p1/ //.
                break
            _parse_step(tokens, steps)
        elif tokens.accept("slash") is not None:
            _parse_step(tokens, steps)
        else:
            break
    return XPath(normalize_steps(steps))


def _parse_step(tokens: _Tokens, steps: list[Step]) -> None:
    if tokens.accept("star") is not None:
        steps.append(WildcardStep())
    elif tokens.accept("dot") is not None:
        pass  # self step: contributes nothing unless it has filters
    else:
        name = tokens.expect("name")
        steps.append(LabelStep(name))
    filters: list[Filter] = []
    while tokens.accept("lbracket") is not None:
        filters.append(_parse_filter(tokens))
        tokens.expect("rbracket")
    if filters:
        steps.append(FilterStep(fand(*filters)))


def _parse_filter(tokens: _Tokens) -> Filter:
    return _parse_or(tokens)


def _parse_or(tokens: _Tokens) -> Filter:
    parts = [_parse_and(tokens)]
    while _accept_keyword(tokens, "or"):
        parts.append(_parse_and(tokens))
    if len(parts) == 1:
        return parts[0]
    return FOr(tuple(parts))


def _parse_and(tokens: _Tokens) -> Filter:
    parts = [_parse_unary(tokens)]
    while _accept_keyword(tokens, "and"):
        parts.append(_parse_unary(tokens))
    if len(parts) == 1:
        return parts[0]
    return FAnd(tuple(parts))


def _accept_keyword(tokens: _Tokens, keyword: str) -> bool:
    item = tokens.peek()
    if item is not None and item[0] == "name" and item[1] == keyword:
        tokens.next()
        return True
    return False


def _parse_unary(tokens: _Tokens) -> Filter:
    item = tokens.peek()
    if item is not None and item[0] == "name" and item[1] == "not":
        after = (
            tokens.items[tokens.index + 1]
            if tokens.index + 1 < len(tokens.items)
            else None
        )
        if after is not None and after[0] == "lparen":
            tokens.next()  # not
            tokens.next()  # (
            inner = _parse_filter(tokens)
            tokens.expect("rparen")
            return FNot(inner)
    if tokens.accept("lparen") is not None:
        inner = _parse_filter(tokens)
        tokens.expect("rparen")
        return inner
    return _parse_comparison(tokens)


def _parse_comparison(tokens: _Tokens) -> Filter:
    # label() = A
    item = tokens.peek()
    if item is not None and item[0] == "name" and item[1] == "label":
        after = (
            tokens.items[tokens.index + 1]
            if tokens.index + 1 < len(tokens.items)
            else None
        )
        if after is not None and after[0] == "lparen":
            tokens.next()  # label
            tokens.next()  # (
            tokens.expect("rparen")
            tokens.expect("eq")
            label = tokens.expect("name")
            return LabelTest(label)
    # Relative path, optionally compared to a constant.
    before = tokens.index
    path = _parse_relative_path(tokens)
    if tokens.index == before:
        raise XPathSyntaxError(f"empty filter expression in {tokens.text!r}")
    if tokens.accept("eq") is not None:
        value = _parse_constant(tokens)
        return ValueEq(path, value)
    if not path.steps:
        raise XPathSyntaxError(f"empty filter expression in {tokens.text!r}")
    return ExistsPath(path)


def _parse_relative_path(tokens: _Tokens) -> XPath:
    steps: list[Step] = []
    if tokens.accept("dslash") is not None:
        steps.append(DescendantStep())
    item = tokens.peek()
    if item is None or item[0] not in ("star", "dot", "name"):
        if steps:
            raise XPathSyntaxError(f"dangling // in filter in {tokens.text!r}")
        return XPath(())
    _parse_step(tokens, steps)
    while True:
        item = tokens.peek()
        if item is None:
            break
        if item[0] == "dslash":
            tokens.next()
            steps.append(DescendantStep())
            _parse_step(tokens, steps)
        elif item[0] == "slash":
            tokens.next()
            _parse_step(tokens, steps)
        else:
            break
    return XPath(normalize_steps(steps))


def _parse_constant(tokens: _Tokens) -> str:
    item = tokens.peek()
    if item is None:
        raise XPathSyntaxError(f"expected a constant in {tokens.text!r}")
    kind, value = item
    if kind == "string":
        tokens.next()
        # Standard XPath string semantics: the delimiting quote may
        # appear inside the literal doubled ("" inside "..." and ''
        # inside '...'); the other quote style needs no escape.
        quote = value[0]
        return value[1:-1].replace(quote + quote, quote)
    if kind in ("name", "number"):
        tokens.next()
        return value
    raise XPathSyntaxError(f"expected a constant but found {value!r}")
