"""The paper's XPath fragment.

Syntax (Section 2.1)::

    p ::= ε | A | * | // | p/p | p[q]
    q ::= p | p = "s" | label() = A | q ∧ q | q ∨ q | ¬q

This package provides the normalized AST (:mod:`repro.xpath.ast`), a
recursive-descent parser (:mod:`repro.xpath.parser`) and a tree evaluator
used as the oracle for the DAG evaluator (:mod:`repro.xpath.tree_eval`).
Normalization follows the paper's rewriting ``p[q] ≡ p/ε[q]`` and
``ε[q1]...[qn] ≡ ε[q1 ∧ ... ∧ qn]``, yielding the normal form
``η1/.../ηn`` with ``ηi`` one of: a label ``A``, wildcard ``*``, ``//``,
or a filter step ``ε[q]``.
"""

from repro.xpath.ast import (
    DescendantStep,
    ExistsPath,
    FAnd,
    FNot,
    FOr,
    FilterStep,
    LabelStep,
    LabelTest,
    Step,
    ValueEq,
    WildcardStep,
    XPath,
    Filter,
)
from repro.xpath.parser import parse_xpath
from repro.xpath.tree_eval import evaluate_on_tree, evaluate_on_tree_with_parents

__all__ = [
    "XPath",
    "Step",
    "Filter",
    "LabelStep",
    "WildcardStep",
    "DescendantStep",
    "FilterStep",
    "LabelTest",
    "ExistsPath",
    "ValueEq",
    "FAnd",
    "FOr",
    "FNot",
    "parse_xpath",
    "evaluate_on_tree",
    "evaluate_on_tree_with_parents",
]
