"""DTDs in the paper's normal form, plus parsing, normalization, validation.

A DTD is a triple ``(E, P, r)`` — element types, productions, root —
where every production has one of the restricted forms (Section 2.2)::

    α ::= PCDATA | ε | B1, ..., Bn | B1 + ... + Bn | B*

Arbitrary content models are normalized into this form by introducing
synthetic element types (the paper's footnote ①).
"""

from repro.dtd.model import (
    DTD,
    Alternation,
    ContentModel,
    Empty,
    PCData,
    Production,
    Sequence,
    Star,
)
from repro.dtd.parser import parse_dtd
from repro.dtd.validate import StaticValidator, validate_update

__all__ = [
    "DTD",
    "Production",
    "ContentModel",
    "PCData",
    "Empty",
    "Sequence",
    "Alternation",
    "Star",
    "parse_dtd",
    "validate_update",
    "StaticValidator",
]
