"""DTD text parser with normalization to the paper's restricted form.

Accepts standard ``<!ELEMENT name (content)>`` declarations where content
is a regular expression over element names built from ``,`` (sequence),
``|`` (alternation), ``*`` (Kleene star on a name or group), ``#PCDATA``
and ``EMPTY``.  Content models outside the restricted normal form are
normalized by introducing synthetic element types named ``_gN`` (the
paper's footnote ①: normalization is linear and a post-publishing pass
can erase the synthetic wrappers).

Element types that are referenced but never declared are defaulted to
``PCDATA`` — the paper's examples omit those declarations.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import DTDError
from repro.dtd.model import (
    DTD,
    Alternation,
    ContentModel,
    Empty,
    PCData,
    Production,
    Sequence,
    Star,
)

# -- general content-model AST (pre-normalization) ---------------------------


@dataclass(frozen=True)
class _Name:
    name: str


@dataclass(frozen=True)
class _Seq:
    parts: tuple


@dataclass(frozen=True)
class _Alt:
    parts: tuple


@dataclass(frozen=True)
class _Star:
    part: object


@dataclass(frozen=True)
class _PCData:
    pass


@dataclass(frozen=True)
class _Empty:
    pass


_DECL_RE = re.compile(
    r"<!ELEMENT\s+(?P<name>[A-Za-z_][\w\-]*)\s+(?P<content>[^>]+?)\s*>",
    re.DOTALL,
)

_CONTENT_TOKEN_RE = re.compile(
    r"(?P<lparen>\()|(?P<rparen>\))|(?P<comma>,)|(?P<pipe>\|)|(?P<star>\*)"
    r"|(?P<pcdata>#PCDATA)|(?P<name>[A-Za-z_][\w\-]*)|(?P<ws>\s+)"
)


def parse_dtd(text: str, root: str | None = None) -> DTD:
    """Parse DTD declarations; the first declared element is the root
    unless ``root`` is given.  Undeclared referenced types default to
    PCDATA; non-normal content models are normalized with synthetic types.
    """
    declarations: list[tuple[str, object]] = []
    for match in _DECL_RE.finditer(text):
        name = match.group("name")
        content_text = match.group("content")
        declarations.append((name, _parse_content(content_text, name)))
    if not declarations:
        raise DTDError("no <!ELEMENT ...> declarations found")
    root_name = root if root is not None else declarations[0][0]

    productions: dict[str, Production] = {}
    counter = [0]
    for name, ast in declarations:
        if name in productions:
            raise DTDError(f"duplicate declaration for element {name!r}")
        _normalize_into(name, ast, productions, counter)

    # Default undeclared references to PCDATA.
    referenced: set[str] = set()
    for production in productions.values():
        referenced.update(production.content.child_types())
    for name in sorted(referenced):
        if name not in productions:
            productions[name] = Production(name, PCData())

    if root_name not in productions:
        raise DTDError(f"root type {root_name!r} was never declared")
    return DTD(root_name, productions)


def _parse_content(text: str, element: str) -> object:
    if text.strip() == "EMPTY":
        return _Empty()
    tokens = _tokenize(text, element)
    ast, pos = _parse_expr(tokens, 0, element)
    if pos != len(tokens):
        raise DTDError(f"trailing tokens in content model of {element!r}: {text!r}")
    return ast


def _tokenize(text: str, element: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _CONTENT_TOKEN_RE.match(text, pos)
        if match is None:
            raise DTDError(
                f"bad character {text[pos]!r} in content model of {element!r}"
            )
        if match.lastgroup != "ws":
            tokens.append((match.lastgroup, match.group()))
        pos = match.end()
    return tokens


def _parse_expr(tokens: list, pos: int, element: str) -> tuple[object, int]:
    """expr := atom (',' atom)* | atom ('|' atom)*  (no mixing)."""
    first, pos = _parse_atom(tokens, pos, element)
    if pos < len(tokens) and tokens[pos][0] == "comma":
        parts = [first]
        while pos < len(tokens) and tokens[pos][0] == "comma":
            part, pos = _parse_atom(tokens, pos + 1, element)
            parts.append(part)
        return _Seq(tuple(parts)), pos
    if pos < len(tokens) and tokens[pos][0] == "pipe":
        parts = [first]
        while pos < len(tokens) and tokens[pos][0] == "pipe":
            part, pos = _parse_atom(tokens, pos + 1, element)
            parts.append(part)
        return _Alt(tuple(parts)), pos
    return first, pos


def _parse_atom(tokens: list, pos: int, element: str) -> tuple[object, int]:
    if pos >= len(tokens):
        raise DTDError(f"unexpected end of content model of {element!r}")
    kind, value = tokens[pos]
    if kind == "lparen":
        inner, pos = _parse_expr(tokens, pos + 1, element)
        if pos >= len(tokens) or tokens[pos][0] != "rparen":
            raise DTDError(f"unbalanced parentheses in content model of {element!r}")
        pos += 1
        node: object = inner
    elif kind == "pcdata":
        node = _PCData()
        pos += 1
    elif kind == "name":
        node = _Name(value)
        pos += 1
    else:
        raise DTDError(
            f"unexpected token {value!r} in content model of {element!r}"
        )
    if pos < len(tokens) and tokens[pos][0] == "star":
        node = _Star(node)
        pos += 1
    return node, pos


def _normalize_into(
    name: str, ast: object, productions: dict[str, Production], counter: list[int]
) -> None:
    """Emit a restricted production for ``name``, adding synthetic types."""
    productions[name] = Production(name, _to_restricted(ast, productions, counter))


def _to_restricted(
    ast: object, productions: dict[str, Production], counter: list[int]
) -> ContentModel:
    if isinstance(ast, _Empty):
        return Empty()
    if isinstance(ast, _PCData):
        return PCData()
    if isinstance(ast, _Name):
        # A bare single name: a one-element sequence.
        return Sequence((ast.name,))
    if isinstance(ast, _Star):
        inner = ast.part
        if isinstance(inner, _Name):
            return Star(inner.name)
        synthetic = _fresh(productions, counter)
        _normalize_into(synthetic, inner, productions, counter)
        return Star(synthetic)
    if isinstance(ast, _Seq):
        names = [_name_of(part, productions, counter) for part in ast.parts]
        return Sequence(tuple(names))
    if isinstance(ast, _Alt):
        names = [_name_of(part, productions, counter) for part in ast.parts]
        return Alternation(tuple(names))
    raise DTDError(f"cannot normalize content model node {ast!r}")


def _name_of(
    part: object, productions: dict[str, Production], counter: list[int]
) -> str:
    """Reduce a sub-expression to a single element-type name."""
    if isinstance(part, _Name):
        return part.name
    synthetic = _fresh(productions, counter)
    _normalize_into(synthetic, part, productions, counter)
    return synthetic


def _fresh(productions: dict[str, Production], counter: list[int]) -> str:
    while True:
        counter[0] += 1
        name = f"_g{counter[0]}"
        if name not in productions:
            return name
