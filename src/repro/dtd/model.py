"""DTD data model: element types, restricted productions, recursion analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import DTDError


class ContentModel:
    """Base class of the restricted content models."""

    def child_types(self) -> tuple[str, ...]:
        """Element types that may appear as children, in declaration order."""
        return ()


@dataclass(frozen=True)
class PCData(ContentModel):
    """``A → PCDATA``: a text leaf."""

    def __str__(self) -> str:
        return "#PCDATA"


@dataclass(frozen=True)
class Empty(ContentModel):
    """``A → ε``: an empty element."""

    def __str__(self) -> str:
        return "EMPTY"


@dataclass(frozen=True)
class Sequence(ContentModel):
    """``A → B1, ..., Bn``: exactly one child of each type, in order."""

    types: tuple[str, ...]

    def child_types(self) -> tuple[str, ...]:
        return self.types

    def __str__(self) -> str:
        return "(" + ", ".join(self.types) + ")"


@dataclass(frozen=True)
class Alternation(ContentModel):
    """``A → B1 + ... + Bn``: exactly one child, of one of the types."""

    types: tuple[str, ...]

    def child_types(self) -> tuple[str, ...]:
        return self.types

    def __str__(self) -> str:
        return "(" + " | ".join(self.types) + ")"


@dataclass(frozen=True)
class Star(ContentModel):
    """``A → B*``: zero or more children of one type.

    The only production form under which XML view inserts/deletes of a
    ``B`` child are DTD-valid (Section 2.4).
    """

    type: str

    def child_types(self) -> tuple[str, ...]:
        return (self.type,)

    def __str__(self) -> str:
        return f"({self.type}*)"


@dataclass(frozen=True)
class Production:
    """One production ``element → content``."""

    element: str
    content: ContentModel

    def __str__(self) -> str:
        return f"<!ELEMENT {self.element} {self.content}>"


class DTD:
    """A DTD ``(E, P, r)`` in the paper's restricted normal form.

    Every type referenced in some content model must have a production;
    undeclared types can be defaulted to ``PCDATA`` via
    :meth:`with_implicit_pcdata` (the paper omits PCDATA declarations).
    """

    def __init__(self, root: str, productions: Mapping[str, Production] | list[Production]):
        if isinstance(productions, list):
            productions = {p.element: p for p in productions}
        self.root = root
        self.productions: dict[str, Production] = dict(productions)
        if root not in self.productions:
            raise DTDError(f"root type {root!r} has no production")
        self._check_references()

    def _check_references(self) -> None:
        for production in self.productions.values():
            for child in production.content.child_types():
                if child not in self.productions:
                    raise DTDError(
                        f"type {child!r} referenced by {production.element!r} "
                        "has no production (use with_implicit_pcdata to default)"
                    )

    # -- accessors --------------------------------------------------------------

    @property
    def types(self) -> tuple[str, ...]:
        return tuple(self.productions)

    def production(self, element: str) -> Production:
        try:
            return self.productions[element]
        except KeyError:
            raise DTDError(f"no production for element type {element!r}") from None

    def content(self, element: str) -> ContentModel:
        return self.production(element).content

    def child_types(self, element: str) -> tuple[str, ...]:
        return self.content(element).child_types()

    def is_star_child(self, parent: str, child: str) -> bool:
        """Whether ``parent → child*`` is the production of ``parent``."""
        content = self.content(parent)
        return isinstance(content, Star) and content.type == child

    def is_pcdata(self, element: str) -> bool:
        return isinstance(self.content(element), PCData)

    def edges(self) -> Iterator[tuple[str, str]]:
        """All (parent type, child type) pairs in the DTD graph."""
        for production in self.productions.values():
            for child in production.content.child_types():
                yield production.element, child

    # -- recursion analysis -------------------------------------------------------

    def reachable_types(self, start: str | None = None) -> set[str]:
        """Types reachable from ``start`` (default: root) in the DTD graph."""
        start = start if start is not None else self.root
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for child in self.child_types(node):
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return seen

    def recursive_types(self) -> set[str]:
        """Types defined (directly or indirectly) in terms of themselves."""
        # A type is recursive iff it lies on a cycle of the DTD graph:
        # iterative DFS-based detection of nodes reachable from themselves.
        adjacency = {t: set(self.child_types(t)) for t in self.productions}
        recursive: set[str] = set()
        for start in self.productions:
            stack = list(adjacency[start])
            seen: set[str] = set()
            while stack:
                node = stack.pop()
                if node == start:
                    recursive.add(start)
                    break
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(adjacency.get(node, ()))
        return recursive

    @property
    def is_recursive(self) -> bool:
        return bool(self.recursive_types())

    def size(self) -> int:
        """|D|: number of types plus DTD-graph edges."""
        return len(self.productions) + sum(1 for _ in self.edges())

    def parents_of(self, child: str) -> set[str]:
        """All types whose production mentions ``child``."""
        return {parent for parent, c in self.edges() if c == child}

    def __str__(self) -> str:
        ordered = [self.root] + [t for t in self.productions if t != self.root]
        return "\n".join(str(self.productions[t]) for t in ordered)
