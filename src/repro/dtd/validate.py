"""Static DTD validation of XML view updates (paper, Section 2.4).

Before touching any data, an update ``insert (A, t) into p`` /
``delete p`` is validated at the *schema* level: the XPath ``p`` is
evaluated over the DTD graph to find the element types it can reach, and
the update is rejected unless every affected production has the form
``parent → child*`` — the only form under which adding/removing one child
preserves DTD conformance.  The check runs in ``O(|p|·|D|²)``.

Value filters cannot be refuted statically, so they are ignored
(over-approximation: never rejects a valid update).  ``label() = A``
tests *are* applied, since they are purely structural.
"""

from __future__ import annotations

from repro.dtd.model import DTD
from repro.errors import ValidationError
from repro.xpath.ast import (
    DescendantStep,
    FAnd,
    Filter,
    FilterStep,
    LabelStep,
    LabelTest,
    WildcardStep,
    XPath,
)


class StaticValidator:
    """Schema-level evaluator/validator bound to one DTD."""

    def __init__(self, dtd: DTD):
        self.dtd = dtd

    # -- schema-level XPath evaluation --------------------------------------------

    def reachable_types(self, path: XPath) -> tuple[set[str], set[tuple[str, str]]]:
        """Evaluate ``path`` on the DTD graph.

        Returns ``(final_types, last_edges)`` where ``final_types`` are
        the element types the path may reach, and ``last_edges`` the
        ``(parent_type, child_type)`` pairs through which the final types
        may be reached (the schema analogue of ``Ep(r)``).
        """
        states: set[str] = {self.dtd.root}
        last_edges: set[tuple[str, str]] = set()
        for step in path.steps:
            if isinstance(step, LabelStep):
                next_states: set[str] = set()
                last_edges = set()
                for state in states:
                    for child in self.dtd.child_types(state):
                        if child == step.label:
                            next_states.add(child)
                            last_edges.add((state, child))
                states = next_states
            elif isinstance(step, WildcardStep):
                next_states = set()
                last_edges = set()
                for state in states:
                    for child in self.dtd.child_types(state):
                        next_states.add(child)
                        last_edges.add((state, child))
                states = next_states
            elif isinstance(step, DescendantStep):
                closure: set[str] = set()
                for state in states:
                    closure |= self.dtd.reachable_types(state)
                # Every DTD edge into a closure member is a candidate.
                last_edges = {
                    (parent, child)
                    for parent, child in self.dtd.edges()
                    if child in closure and parent in closure
                }
                # Self matches carry no new edge; keep the closure states.
                states = closure
            elif isinstance(step, FilterStep):
                refined = self._refine_by_labels(states, step.filter)
                last_edges = {(p, c) for p, c in last_edges if c in refined}
                states = refined
            else:  # pragma: no cover - exhaustive
                raise TypeError(f"unknown step {step!r}")
            if not states:
                break
        return states, last_edges

    def _refine_by_labels(self, states: set[str], filt: Filter) -> set[str]:
        """Apply structural ``label()=A`` tests; other filters are kept."""
        if isinstance(filt, LabelTest):
            return {s for s in states if s == filt.label}
        if isinstance(filt, FAnd):
            out = set(states)
            for part in filt.parts:
                out = self._refine_by_labels(out, part)
            return out
        return states

    # -- update validation -----------------------------------------------------------

    def validate_insert(self, path: XPath, subtree_type: str) -> set[str]:
        """Validate ``insert (subtree_type, t) into path``.

        Returns the possible parent types; raises
        :class:`ValidationError` if the insertion cannot conform to the
        DTD under any of them.
        """
        if subtree_type not in self.dtd.productions:
            raise ValidationError(
                f"insert of unknown element type {subtree_type!r}"
            )
        parents, _ = self.reachable_types(path)
        if not parents:
            raise ValidationError(
                f"path {path} reaches no element type in the DTD"
            )
        bad = [p for p in parents if not self.dtd.is_star_child(p, subtree_type)]
        if bad:
            raise ValidationError(
                f"inserting a {subtree_type!r} child under type(s) "
                f"{sorted(bad)} violates the DTD: production is not "
                f"'{subtree_type}*'"
            )
        return parents

    def validate_delete(self, path: XPath) -> set[tuple[str, str]]:
        """Validate ``delete path``.

        Returns the possible ``(parent_type, child_type)`` pairs; raises
        :class:`ValidationError` if removing a reached child can violate
        the DTD.
        """
        targets, last_edges = self.reachable_types(path)
        if not targets:
            raise ValidationError(
                f"path {path} reaches no element type in the DTD"
            )
        if self.dtd.root in targets:
            raise ValidationError("cannot delete the document root")
        bad = [
            (parent, child)
            for parent, child in last_edges
            if not self.dtd.is_star_child(parent, child)
        ]
        if bad:
            raise ValidationError(
                f"deleting child(ren) {sorted(bad)} violates the DTD: "
                "production is not of the form 'child*'"
            )
        return last_edges

    def validate_replace(
        self, path: XPath, subtree_type: str
    ) -> set[tuple[str, str]]:
        """Validate ``replace path with (subtree_type, t)``.

        The reached children must be deletable *and* the new subtree
        type must be insertable under every possible parent the path can
        reach through — both sides of the composite, checked statically.
        """
        last_edges = self.validate_delete(path)
        if subtree_type not in self.dtd.productions:
            raise ValidationError(
                f"replace with unknown element type {subtree_type!r}"
            )
        bad = sorted(
            parent
            for parent, _ in last_edges
            if not self.dtd.is_star_child(parent, subtree_type)
        )
        if bad:
            raise ValidationError(
                f"replacing with a {subtree_type!r} child under type(s) "
                f"{bad} violates the DTD: production is not "
                f"'{subtree_type}*'"
            )
        return last_edges


def validate_update(
    dtd: DTD, path: XPath, kind: str, subtree_type: str | None = None
):
    """Convenience wrapper: validate an insert (needs ``subtree_type``) or
    delete against ``dtd``.  Returns the affected types/edges."""
    validator = StaticValidator(dtd)
    if kind == "insert":
        if subtree_type is None:
            raise ValidationError("insert validation requires the subtree type")
        return validator.validate_insert(path, subtree_type)
    if kind == "delete":
        return validator.validate_delete(path)
    raise ValidationError(f"unknown update kind {kind!r}")
