"""Ordered XML tree substrate.

Trees are the *reference* representation of a published view ``σ(I)``:
the DAG store (:mod:`repro.views`) is the compressed form the paper
actually operates on, and unfolding the DAG must reproduce the tree.
Tests use this package as ground truth.
"""

from repro.xmltree.tree import XMLNode, subtree_signature, tree_equal, tree_size
from repro.xmltree.serialize import to_xml_string

__all__ = ["XMLNode", "subtree_signature", "tree_equal", "tree_size", "to_xml_string"]
