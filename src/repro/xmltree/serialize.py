"""Serialization of XML trees to text."""

from __future__ import annotations

from repro.xmltree.tree import XMLNode


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def to_xml_string(root: XMLNode, indent: int = 2) -> str:
    """Pretty-print a tree as an XML document fragment."""
    lines: list[str] = []
    _render(root, 0, indent, lines)
    return "\n".join(lines)


def _render(node: XMLNode, depth: int, indent: int, lines: list[str]) -> None:
    pad = " " * (depth * indent)
    text = node.value() if not node.children else None
    if text is not None:
        lines.append(f"{pad}<{node.tag}>{_escape(text)}</{node.tag}>")
        return
    if not node.children:
        lines.append(f"{pad}<{node.tag}/>")
        return
    lines.append(f"{pad}<{node.tag}>")
    for child in node.children:
        _render(child, depth + 1, indent, lines)
    lines.append(f"{pad}</{node.tag}>")
