"""XML tree nodes with semantic attributes.

Every node carries the *semantic attribute* tuple ``$A`` that governed its
generation (paper, Section 2.2).  The pair ``(tag, sem)`` identifies a
subtree uniquely — the *subtree property* of schema-directed publishing:
two nodes with the same type and semantic attribute value root identical
subtrees.  This is what makes DAG compression and the revised update
semantics well-defined.
"""

from __future__ import annotations

from typing import Callable, Iterator


class XMLNode:
    """One element node of an XML tree.

    Attributes
    ----------
    tag:
        Element type name.
    sem:
        The semantic-attribute tuple ``$A`` that generated this node.
    children:
        Ordered child elements.
    text:
        String content for ``PCDATA`` elements (``None`` otherwise).
    """

    __slots__ = ("tag", "sem", "children", "text")

    def __init__(
        self,
        tag: str,
        sem: tuple = (),
        children: list["XMLNode"] | None = None,
        text: str | None = None,
    ):
        self.tag = tag
        self.sem = tuple(sem)
        self.children: list[XMLNode] = children if children is not None else []
        self.text = text

    # -- identity ---------------------------------------------------------------

    @property
    def identity(self) -> tuple[str, tuple]:
        """The ``(type, $A)`` pair that determines this node's subtree."""
        return (self.tag, self.sem)

    def value(self) -> str | None:
        """String value used by XPath value filters (``p = "s"``).

        Only PCDATA leaves carry a value; the publisher sets ``text``
        for them.  Hand-built test trees should set ``text`` explicitly.
        """
        return self.text

    # -- traversal --------------------------------------------------------------

    def iter(self) -> Iterator["XMLNode"]:
        """Pre-order traversal of the subtree rooted here (self first)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def descendants_or_self(self) -> Iterator["XMLNode"]:
        return self.iter()

    def find_all(self, predicate: Callable[["XMLNode"], bool]) -> list["XMLNode"]:
        return [node for node in self.iter() if predicate(node)]

    def child_by_tag(self, tag: str) -> "XMLNode | None":
        for child in self.children:
            if child.tag == tag:
                return child
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.tag} sem={self.sem} children={len(self.children)}>"


def tree_size(root: XMLNode) -> int:
    """Number of element nodes in the tree."""
    return sum(1 for _ in root.iter())


def subtree_signature(root: XMLNode) -> tuple:
    """A hashable structural signature of a subtree (tag, text, children).

    Two subtrees with equal signatures are structurally identical
    including child order.  Used to verify the subtree property and to
    compare published trees.
    """
    return (
        root.tag,
        root.text,
        tuple(subtree_signature(child) for child in root.children),
    )


def tree_equal(a: XMLNode, b: XMLNode) -> bool:
    """Structural equality of two trees (tags, texts, ordered children)."""
    if a.tag != b.tag or a.text != b.text or len(a.children) != len(b.children):
        return False
    return all(tree_equal(x, y) for x, y in zip(a.children, b.children))
