"""Durable, generation-stamped snapshots of a published view.

A :class:`Snapshot` is the bootstrap half of the replication protocol
(the changefeed is the other half): it captures the writer's complete
:class:`~repro.views.store.ViewStore` state — interning table, ordered
edges, id-allocator watermark — at one generation, together with the
service's :class:`~repro.service.config.ViewConfig` and provenance
metadata.  A replica that restores the store and then folds
``changefeed(since=snapshot.generation)`` is gapless by construction.

The artifact is a JSON-safe dict wrapped in a versioned envelope, so the
same payload travels equally well as a gzip-compressed pickle on disk
(``save``/``load``, the ``snapshots/*.pkl.gz`` discipline) and as a JSON
frame over a socket (``to_json``/``from_json``).  The view definition
(ATG) is deliberately **not** serialized — view definitions are code,
not data — the artifact instead embeds :func:`atg_fingerprint` so a
loader constructing its own ATG can verify it matches the writer's.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import pickle
from dataclasses import dataclass, field
from datetime import datetime, timezone

from repro.atg.model import ATG, ProjectionRule, QueryRule
from repro.errors import (
    SnapshotError,
    SnapshotMismatchError,
    SnapshotSchemaError,
)
from repro.views.store import ViewStore

#: Version of the snapshot artifact envelope.  Bumped on incompatible
#: layout changes; :meth:`Snapshot.from_dict` (and thus ``load``)
#: refuses artifacts from a different version with a typed
#: :class:`~repro.errors.SnapshotSchemaError`.
SNAPSHOT_SCHEMA_VERSION = 1


def atg_fingerprint(atg: ATG) -> str:
    """SHA-256 fingerprint of a view definition.

    Built from a canonical text rendering of the DTD (root + content
    models), the semantic-attribute signatures, the root sem, and every
    child rule (projections by their column mapping, query rules by
    their SPJ query's tables/projection/predicate).  Two ATGs with equal
    fingerprints publish identical views from identical databases, which
    is exactly what a replica folding the writer's edge stream needs.
    """
    lines: list[str] = [f"root={atg.dtd.root}", f"root_sem={atg.root_sem!r}"]
    for element in sorted(atg.dtd.types):
        lines.append(f"type {element} := {atg.dtd.content(element)}")
        lines.append(f"sig {element} = {atg.signature(element)!r}")
    for (parent, child), rule in sorted(atg.rules.items()):
        if isinstance(rule, ProjectionRule):
            lines.append(f"rule {parent}->{child} proj {rule.mapping!r}")
        elif isinstance(rule, QueryRule):
            query = rule.query
            projected = tuple(
                (name, str(col)) for name, col in query.project
            )
            lines.append(
                f"rule {parent}->{child} query {query.name} "
                f"tables={query.tables!r} project={projected!r} "
                f"where={query.where}"
            )
        else:  # pragma: no cover - no third rule kind exists today
            lines.append(f"rule {parent}->{child} {rule!r}")
    blob = "\n".join(lines).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class Snapshot:
    """One generation-stamped, schema-versioned view snapshot.

    Attributes
    ----------
    generation:
        The writer's generation at capture time; resume the changefeed
        with ``changefeed(since=generation)`` for a gapless bootstrap.
    store_state:
        :meth:`repro.views.store.ViewStore.export_state` output — the
        complete store (interning table + ordered edges + allocator).
    config:
        The writer's :meth:`~repro.service.config.ViewConfig.to_dict`.
    provenance:
        Capture metadata: ``created_at`` (UTC ISO-8601),
        ``library_version``, ``atg_fingerprint``, ``nodes``, ``edges``,
        ``index_backend``.
    schema_version:
        The artifact envelope version (:data:`SNAPSHOT_SCHEMA_VERSION`).
    """

    generation: int
    store_state: dict
    config: dict
    provenance: dict = field(default_factory=dict)
    schema_version: int = SNAPSHOT_SCHEMA_VERSION

    # -- capture ------------------------------------------------------------------

    @classmethod
    def capture(
        cls,
        store: ViewStore,
        generation: int,
        config: dict,
        index_backend: str = "",
    ) -> "Snapshot":
        """Snapshot ``store`` as of ``generation``.

        The caller (normally :meth:`ViewService.snapshot
        <repro.service.facade.ViewService.snapshot>`, under its read
        lock) guarantees the store is at rest at ``generation``.
        """
        from repro import __version__

        return cls(
            generation=generation,
            store_state=store.export_state(),
            config=dict(config),
            provenance={
                "created_at": datetime.now(timezone.utc).isoformat(),
                "library_version": __version__,
                "atg_fingerprint": atg_fingerprint(store.atg),
                "nodes": store.num_nodes,
                "edges": store.num_edges,
                "index_backend": index_backend,
            },
        )

    # -- restore ------------------------------------------------------------------

    def restore_store(self, atg: ATG, verify_fingerprint: bool = True) -> ViewStore:
        """Rebuild the captured :class:`ViewStore` against ``atg``.

        ``verify_fingerprint=True`` (default) checks ``atg`` against the
        embedded :func:`atg_fingerprint` first and raises
        :class:`~repro.errors.SnapshotMismatchError` on a different view
        definition — folding the writer's edge stream into the wrong
        schema would diverge silently otherwise.
        """
        if verify_fingerprint:
            expected = self.provenance.get("atg_fingerprint")
            actual = atg_fingerprint(atg)
            if expected is not None and expected != actual:
                raise SnapshotMismatchError(
                    f"snapshot was captured from a view definition with "
                    f"fingerprint {expected[:12]}..., but the supplied "
                    f"ATG has fingerprint {actual[:12]}..."
                )
        return ViewStore.from_state(atg, self.store_state)

    # -- wire format --------------------------------------------------------------

    def to_dict(self) -> dict:
        """The JSON-safe envelope (inverse of :meth:`from_dict`)."""
        return {
            "format": "repro-snapshot",
            "schema_version": self.schema_version,
            "generation": self.generation,
            "store_state": self.store_state,
            "config": self.config,
            "provenance": self.provenance,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Snapshot":
        """Decode an envelope; strict on shape and schema version."""
        if not isinstance(payload, dict):
            raise SnapshotError(
                f"snapshot envelope must be an object, got {type(payload).__name__}"
            )
        if payload.get("format") != "repro-snapshot":
            raise SnapshotError(
                f"not a repro snapshot envelope (format="
                f"{payload.get('format')!r})"
            )
        version = payload.get("schema_version")
        if version != SNAPSHOT_SCHEMA_VERSION:
            raise SnapshotSchemaError(version, SNAPSHOT_SCHEMA_VERSION)
        try:
            generation = payload["generation"]
            store_state = payload["store_state"]
            config = payload["config"]
            provenance = payload.get("provenance", {})
        except KeyError as exc:
            raise SnapshotError(
                f"snapshot envelope is missing required key {exc.args[0]!r}"
            ) from None
        if not isinstance(generation, int) or isinstance(generation, bool):
            raise SnapshotError(
                f"snapshot generation must be an integer, got {generation!r}"
            )
        for key, value in (
            ("store_state", store_state),
            ("config", config),
            ("provenance", provenance),
        ):
            if not isinstance(value, dict):
                raise SnapshotError(
                    f"snapshot key {key!r} must be an object, got {value!r}"
                )
        return cls(
            generation=generation,
            store_state=store_state,
            config=config,
            provenance=provenance,
        )

    def to_json(self) -> str:
        """One compact JSON object (the socket transport's wire unit)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Snapshot":
        """Decode :meth:`to_json` output (round-trip tested)."""
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise SnapshotError(
                f"snapshot is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(payload)

    # -- durable artifacts ---------------------------------------------------------

    def save(self, path) -> str:
        """Write the artifact to ``path`` (gzip-compressed pickle).

        Returns the path written, as a string.  The payload under the
        compression is exactly :meth:`to_dict`, so artifacts survive
        library upgrades as long as the envelope version matches.
        """
        with gzip.open(path, "wb") as fh:
            pickle.dump(self.to_dict(), fh, protocol=pickle.HIGHEST_PROTOCOL)
        return str(path)

    @classmethod
    def load(cls, path) -> "Snapshot":
        """Read an artifact written by :meth:`save`.

        Unreadable or corrupt files raise
        :class:`~repro.errors.SnapshotError`; a mismatched envelope
        version raises :class:`~repro.errors.SnapshotSchemaError`.
        """
        try:
            with gzip.open(path, "rb") as fh:
                payload = pickle.load(fh)
        except (OSError, EOFError, pickle.UnpicklingError) as exc:
            raise SnapshotError(
                f"cannot read snapshot artifact {path!s}: {exc}"
            ) from exc
        return cls.from_dict(payload)

    # -- convenience ---------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Captured node count (from the store state, not provenance)."""
        return len(self.store_state.get("nodes", ()))

    @property
    def num_edges(self) -> int:
        """Captured edge count (from the store state, not provenance)."""
        return sum(
            len(kids) for _, kids in self.store_state.get("children", ())
        )

    def describe(self) -> str:
        """One human-readable line (the CLI's ``--inspect`` output)."""
        prov = self.provenance
        return (
            f"snapshot generation {self.generation}: {self.num_nodes} "
            f"nodes, {self.num_edges} edges; schema v{self.schema_version}; "
            f"created {prov.get('created_at', '?')} by repro "
            f"{prov.get('library_version', '?')} "
            f"(atg {str(prov.get('atg_fingerprint', '?'))[:12]})"
        )
