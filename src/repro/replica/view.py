"""The replica: bootstrap from a snapshot, fold the changefeed, serve reads.

A :class:`ReplicaView` owns a mirrored :class:`~repro.views.store.ViewStore`
and keeps it converged with the writer by folding published
:class:`~repro.subscribe.delta.ViewEvent` objects in generation order:

1. install every :class:`~repro.subscribe.delta.NodeRecord` (the
   interning side channel — id ↔ ``(element, sem)`` bindings for nodes
   the replica has never seen);
2. apply every :class:`~repro.subscribe.delta.EdgeRecord` in order
   (``add_edge`` appends rightmost exactly like the writer's, so child
   order — XML document order — is reproduced, not approximated);
3. mirror garbage collection: any touched non-root node left with no
   incident edges is dropped, which is precisely the writer's at-rest
   invariant (events record *every* edge removal, including the GC
   pass's — see ``docs/event-schema.md``).

Folding is strict — an event referencing unknown state raises
:class:`~repro.errors.ReplicaDivergedError` rather than papering over a
gap — and coarse events (store rebuilds) raise
:class:`~repro.errors.ReplicaStaleError`, which the background fold loop
answers by re-bootstrapping from a fresh snapshot.  Reads run the same
:class:`~repro.core.dag_eval.DagXPathEvaluator` as the writer, against a
lazily rebuilt topological order (no reachability index — descendant
regions fall back to edge walks, the writer's own mid-batch strategy).
"""

from __future__ import annotations

import threading

from repro.atg.model import ATG
from repro.core.dag_eval import DagXPathEvaluator, EvalResult
from repro.core.topo import TopoOrder
from repro.errors import (
    ChangefeedError,
    ReplayGapError,
    ReplicaDivergedError,
    ReplicaError,
    ReplicaStaleError,
)
from repro.replica.fold import fold_event
from repro.subscribe.delta import ViewEvent
from repro.views.store import ViewStore
from repro.xpath.ast import XPath
from repro.xpath.parser import parse_xpath


class ReplicaView:
    """A read-only mirror of one published view, fed by the changefeed.

    Parameters
    ----------
    atg:
        The view definition σ.  Replicas construct their own ATG (view
        definitions are code, not data); it is verified against the
        snapshot's embedded fingerprint at bootstrap.
    transport:
        Where snapshots and events come from: an
        :class:`~repro.replica.transport.InProcessTransport` around a
        local service, or a
        :class:`~repro.replica.transport.SocketTransport` to a
        :class:`~repro.replica.transport.ReplicationServer`.
    auto_rebootstrap:
        Whether the background fold loop answers staleness (a coarse
        event, a replay gap) with a fresh bootstrap instead of stopping
        with the error recorded on :attr:`error`.
    max_bootstrap_attempts:
        How many snapshot+attach rounds :meth:`bootstrap` tries before
        giving up (each :class:`~repro.errors.ReplayGapError` retries
        with a fresh snapshot at or past ``oldest_available``).
    """

    def __init__(
        self,
        atg: ATG,
        transport,
        auto_rebootstrap: bool = True,
        max_bootstrap_attempts: int = 5,
    ):
        self.atg = atg
        self.transport = transport
        self.auto_rebootstrap = auto_rebootstrap
        self.max_bootstrap_attempts = max_bootstrap_attempts
        self._cond = threading.Condition()
        self._stop = False
        self._thread: threading.Thread | None = None
        self._feed = None
        self._topo: TopoOrder | None = None
        self._topo_dirty = True
        self.store: ViewStore | None = None
        """The mirrored store (``None`` until :meth:`bootstrap`)."""
        self.generation = -1
        """Generation of the last state folded in (-1 = not bootstrapped);
        reads at :meth:`wait_for` ``(g)`` see every write up to ``g``."""
        self.events_folded = 0
        """Events applied since construction (across re-bootstraps)."""
        self.snapshots_loaded = 0
        """Bootstrap rounds completed (>1 means re-bootstrapped)."""
        self.error: BaseException | None = None
        """Why the background fold loop stopped, if it stopped sadly."""

    # -- bootstrap ----------------------------------------------------------------

    @classmethod
    def from_snapshot(cls, atg: ATG, snapshot) -> "ReplicaView":
        """An offline replica serving reads from a loaded artifact.

        No transport, no feed — the mirror is frozen at
        ``snapshot.generation``.  Useful for point-in-time queries over
        a saved ``snapshots/*.pkl.gz`` artifact
        (``python -m repro.replica --snapshot PATH``).
        """
        replica = cls(atg, transport=None)
        store = snapshot.restore_store(atg)
        with replica._cond:
            replica.store = store
            replica.generation = snapshot.generation
            replica.snapshots_loaded = 1
        return replica

    @classmethod
    def from_wal(cls, atg: ATG, wal_dir: str, fs=None) -> "ReplicaView":
        """An offline replica bootstrapped from a durable changefeed log.

        Opens the WAL directory read-only (safe against a live writer:
        no truncation, no cleanup), restores the newest checkpoint's
        snapshot, and folds every logged event past it — landing the
        mirror at the log's last durable generation without any writer
        process running.  No transport, no feed; the mirror is frozen
        until the caller supplies one.
        """
        from repro.replica.snapshot import Snapshot
        from repro.wal.log import WriteAheadLog

        wal = WriteAheadLog(str(wal_dir), readonly=True, fs=fs)
        try:
            payload = wal.latest_checkpoint()
            if payload is None:
                raise ReplicaError(
                    f"WAL at {wal_dir} holds no checkpoint to "
                    f"bootstrap from"
                )
            snapshot = Snapshot.from_dict(payload["state"]["snapshot"])
            replica = cls.from_snapshot(atg, snapshot)
            for event in wal.events_since(snapshot.generation):
                replica.apply_event(event)
            return replica
        finally:
            wal.close()

    def bootstrap(self) -> int:
        """Fetch a snapshot, restore the store, attach the feed gaplessly.

        Returns the snapshot generation the replica is now at.  When the
        writer's replay buffer has already evicted that generation the
        attach raises :class:`~repro.errors.ReplayGapError`; the retry
        loop uses its ``oldest_available`` field to insist on a fresh
        enough snapshot instead of string-parsing the message.  Safe to
        call again at any time (re-bootstrap): the mirror is replaced
        wholesale.
        """
        floor_needed = 0
        last_gap: ReplayGapError | None = None
        for _ in range(self.max_bootstrap_attempts):
            snapshot = self.transport.snapshot()
            if snapshot.generation < floor_needed:
                # The transport handed back a snapshot older than the
                # writer's replay floor (e.g. a cached artifact); an
                # attach would only raise the same gap again.
                continue
            store = snapshot.restore_store(self.atg)
            try:
                feed = self.transport.subscribe(snapshot.generation)
            except ReplayGapError as exc:
                floor_needed = exc.oldest_available
                last_gap = exc
                continue
            with self._cond:
                if self._feed is not None:
                    self._feed.close()
                self._feed = feed
                self.store = store
                self.generation = snapshot.generation
                self.snapshots_loaded += 1
                self._topo_dirty = True
                self.error = None
                self._cond.notify_all()
            return snapshot.generation
        raise ReplicaStaleError(
            f"could not bootstrap within {self.max_bootstrap_attempts} "
            f"attempts: snapshots kept trailing the writer's replay floor "
            f"({floor_needed})"
        ) from last_gap

    # -- folding ------------------------------------------------------------------

    def apply_event(self, event: ViewEvent) -> bool:
        """Fold one published event into the mirror.

        Returns ``False`` for events at or before the replica's current
        generation (replay overlap during attach is normal), ``True``
        when state advanced.  Strict: unknown endpoints raise
        :class:`~repro.errors.ReplicaDivergedError`, coarse events raise
        :class:`~repro.errors.ReplicaStaleError`.
        """
        with self._cond:
            if self.store is None:
                raise ReplicaError("bootstrap() the replica before folding")
            if event.generation <= self.generation:
                return False
            if event.coarse:
                raise ReplicaStaleError(
                    f"coarse event at generation {event.generation} "
                    f"(reason={event.reason!r}): the edge list does not "
                    f"describe the change; re-bootstrap from a snapshot"
                )
            fold_event(self.store, event)
            self.generation = event.generation
            self.events_folded += 1
            self._topo_dirty = True
            self._cond.notify_all()
            return True

    def pump(self, timeout: float = 0.0) -> int:
        """Fold every event currently available on the feed (foreground).

        ``timeout`` is the per-event wait passed to the feed; ``0.0``
        drains without blocking.  Returns the number of events folded.
        Staleness is handled like the background loop: re-bootstrap when
        :attr:`auto_rebootstrap` is set, raise otherwise.
        """
        folded = 0
        while True:
            feed = self._feed
            if feed is None:
                raise ReplicaError("bootstrap() the replica before pumping")
            event = feed.next_event(timeout=timeout)
            if event is None:
                return folded
            try:
                if self.apply_event(event):
                    folded += 1
            except ReplicaStaleError:
                if not self.auto_rebootstrap:
                    raise
                self.bootstrap()
                folded += 1

    def start(self) -> threading.Thread:
        """Fold the feed on a daemon thread until :meth:`close`.

        Staleness (coarse events, replay gaps) triggers a re-bootstrap
        when :attr:`auto_rebootstrap` is set; a terminal error lands on
        :attr:`error` and stops the loop.  Returns the thread.
        """
        if self.store is None:
            self.bootstrap()
        if self._thread is not None and self._thread.is_alive():
            return self._thread
        self._stop = False
        self._thread = threading.Thread(
            target=self._run, name="repro-replica-fold", daemon=True
        )
        self._thread.start()
        return self._thread

    def _run(self) -> None:
        while not self._stop:
            feed = self._feed
            if feed is None:
                return
            try:
                event = feed.next_event(timeout=0.25)
            except ChangefeedError:
                # The feed was closed under us mid-pull (replica close,
                # or a re-bootstrap swapping feeds); loop — the stop
                # flag / fresh feed decide what happens next.
                continue
            except Exception as exc:  # noqa: BLE001 - recorded, not hidden
                self.error = exc
                return
            if event is None:
                continue
            try:
                self.apply_event(event)
            except (ReplicaStaleError, ReplicaDivergedError) as exc:
                if not self.auto_rebootstrap:
                    self.error = exc
                    return
                try:
                    self.bootstrap()
                except Exception as boot_exc:  # noqa: BLE001
                    self.error = boot_exc
                    return

    # -- reads --------------------------------------------------------------------

    def xpath(self, path: str | XPath) -> EvalResult:
        """Evaluate an XPath locally on the mirrored store.

        Same evaluator as the writer's read path; the topological order
        is rebuilt lazily after folds, and descendant regions walk edges
        (no reachability index on replicas).  Results therefore match
        the writer's at the same generation exactly.
        """
        parsed = path if isinstance(path, XPath) else parse_xpath(path)
        with self._cond:
            if self.store is None:
                raise ReplicaError("bootstrap() the replica before reading")
            if self._topo_dirty or self._topo is None:
                self._topo = TopoOrder.from_store(self.store)
                self._topo_dirty = False
            evaluator = DagXPathEvaluator(self.store, self._topo, None)
            return evaluator.evaluate(parsed)

    def wait_for(self, generation: int, timeout: float | None = None) -> int:
        """Read-your-generation fencing: block until ``generation`` folded.

        A client that observed the writer accept generation ``g`` calls
        ``wait_for(g)`` before reading, guaranteeing the replica's
        answers include that write.  Returns the replica's current
        generation (>= ``generation``); raises :class:`TimeoutError`
        when ``timeout`` (seconds) elapses first.
        """
        with self._cond:
            reached = self._cond.wait_for(
                lambda: self.generation >= generation, timeout=timeout
            )
            if not reached:
                raise TimeoutError(
                    f"replica is at generation {self.generation}, did not "
                    f"reach {generation} within {timeout}s"
                )
            return self.generation

    def lag(self) -> int:
        """Generations behind the writer (via the transport's head)."""
        return max(0, self.transport.head() - self.generation)

    # -- state --------------------------------------------------------------------

    def export_state(self) -> dict:
        """The mirror's :meth:`~repro.views.store.ViewStore.export_state`."""
        with self._cond:
            if self.store is None:
                raise ReplicaError("bootstrap() the replica first")
            return self.store.export_state()

    def digest(self) -> str:
        """The mirror's store digest (equal to the writer's ⇔ converged)."""
        with self._cond:
            if self.store is None:
                raise ReplicaError("bootstrap() the replica first")
            return self.store.digest()

    def stats(self) -> dict:
        """JSON-safe replica statistics (generation, folds, bootstraps)."""
        with self._cond:
            return {
                "generation": self.generation,
                "events_folded": self.events_folded,
                "snapshots_loaded": self.snapshots_loaded,
                "nodes": self.store.num_nodes if self.store else 0,
                "edges": self.store.num_edges if self.store else 0,
                "running": bool(self._thread and self._thread.is_alive()),
            }

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Stop the fold loop and detach from the feed (idempotent)."""
        self._stop = True
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        with self._cond:
            if self._feed is not None:
                self._feed.close()
                self._feed = None
            self._cond.notify_all()

    def __enter__(self) -> "ReplicaView":
        """Context-manager entry (bootstraps if needed)."""
        if self.store is None:
            self.bootstrap()
        return self

    def __exit__(self, *exc) -> bool:
        """Context-manager exit: :meth:`close`."""
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReplicaView(gen={self.generation} folded={self.events_folded} "
            f"snapshots={self.snapshots_loaded})"
        )
