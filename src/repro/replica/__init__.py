"""Out-of-process read replicas for a published XML view.

The writer stays exactly what it was — one :class:`~repro.service.facade.ViewService`
maintaining the view incrementally — and this package adds the fan-out
story around it, in three layers:

- **snapshot protocol** (:mod:`repro.replica.snapshot`) —
  ``service.snapshot()`` produces a generation-stamped, schema-versioned
  :class:`Snapshot` artifact (the complete interned store state plus
  view config and provenance metadata) with a lossless gzip-compressed
  ``save``/``load`` round-trip;
- **bootstrap + fold** (:mod:`repro.replica.view`) — a
  :class:`ReplicaView` loads a snapshot at generation ``g``, attaches
  ``changefeed(since=g)`` gaplessly, folds each event's
  :class:`~repro.subscribe.delta.EdgeRecord` list (with the
  :class:`~repro.subscribe.delta.NodeRecord` interning side channel for
  nodes unseen at snapshot time) into a full mirrored
  :class:`~repro.views.store.ViewStore`, and serves ``xpath()`` locally
  with read-your-generation fencing (``replica.wait_for(gen)``);
- **transport** (:mod:`repro.replica.transport`) — pluggable:
  :class:`InProcessTransport` for tests and same-process mirrors,
  :class:`ReplicationServer`/:class:`SocketTransport` speaking
  length-prefixed JSON frames over TCP for real out-of-process replicas
  (see ``examples/replication_demo.py`` and ``python -m repro.replica``).

Semantics in one paragraph: the changefeed's event stream is *complete*
(``docs/event-schema.md``) — node bindings are immutable once interned
and edges are the only mutable state — so a replica that folds every
event after its snapshot generation converges to a store byte-identical
to the writer's (``replica.digest() == writer.store.digest()``), and
reads at a fenced generation return exactly what the writer would have
returned at that generation.  See ``docs/replication.md``.
"""

from repro.replica.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    Snapshot,
    atg_fingerprint,
)
from repro.replica.transport import (
    InProcessTransport,
    ReplicationServer,
    SocketTransport,
)
from repro.replica.view import ReplicaView

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "Snapshot",
    "atg_fingerprint",
    "InProcessTransport",
    "ReplicationServer",
    "SocketTransport",
    "ReplicaView",
]
