"""Run or inspect a read replica from the command line.

Three modes::

    # Inspect a snapshot artifact's envelope (no workload needed):
    python -m repro.replica --inspect snapshots/view.pkl.gz

    # Serve reads from a local artifact (no writer connection):
    python -m repro.replica --snapshot snapshots/view.pkl.gz \\
        --workload registrar --query "course[cno=CS650]/prereq/course"

    # Live replica: bootstrap over TCP and fold until generation N:
    python -m repro.replica --connect 127.0.0.1:7007 \\
        --workload registrar --until 40

The ``--workload`` flag names the view definition the replica constructs
for itself (view definitions are code, not data); the snapshot's
embedded ATG fingerprint is verified against it at bootstrap.  Exit
status: 0 on success, 2 on usage/environment errors (bad address,
unreadable artifact, fingerprint mismatch, timeout).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import ReproError
from repro.replica.snapshot import Snapshot
from repro.replica.transport import SocketTransport
from repro.replica.view import ReplicaView
from repro.workloads import named_workload


def _parse_address(text: str) -> tuple[str, int]:
    """Split ``HOST:PORT`` (IPv4/hostname) into its parts."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ReproError(f"--connect expects HOST:PORT, got {text!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ReproError(f"bad port in --connect address {text!r}") from None


def _serve_queries(replica: ReplicaView, queries: list[str]) -> None:
    """Print each query's sorted target ids at the current generation."""
    for query in queries:
        result = replica.xpath(query)
        print(
            f"[gen {replica.generation}] {query} -> "
            f"{sorted(result.targets)}"
        )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.replica",
        description="Run or inspect an out-of-process view read replica.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--inspect",
        metavar="PATH",
        help="print a snapshot artifact's envelope metadata and exit",
    )
    mode.add_argument(
        "--snapshot",
        metavar="PATH",
        help="bootstrap from a local artifact (no writer connection)",
    )
    mode.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="bootstrap from a live ReplicationServer and fold its feed",
    )
    parser.add_argument(
        "--workload",
        default="registrar",
        help="view definition to construct locally (registrar | bom | "
        "synthetic[:n_c[:seed]] | chain[:depth])",
    )
    parser.add_argument(
        "--query",
        action="append",
        default=[],
        help="XPath to evaluate on the replica (repeatable)",
    )
    parser.add_argument(
        "--until",
        type=int,
        default=None,
        metavar="GEN",
        help="with --connect: fold until this generation, then exit "
        "(default: fold until the writer's head at attach time)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="with --connect: seconds to wait for --until (default 30)",
    )
    args = parser.parse_args(argv)
    try:
        if args.inspect:
            print(Snapshot.load(args.inspect).describe())
            return 0
        atg, _db = named_workload(args.workload)
        if args.snapshot:
            snapshot = Snapshot.load(args.snapshot)
            replica = ReplicaView.from_snapshot(atg, snapshot)
            print(snapshot.describe())
            _serve_queries(replica, args.query)
            return 0
        host, port = _parse_address(args.connect)
        transport = SocketTransport(host, port)
        replica = ReplicaView(atg, transport)
        started = replica.bootstrap()
        target = args.until if args.until is not None else transport.head()
        print(
            f"bootstrapped at generation {started}; folding to {target}"
        )
        deadline = time.monotonic() + args.timeout
        while replica.generation < target:
            if time.monotonic() > deadline:
                print(
                    f"timeout: replica at generation {replica.generation}, "
                    f"target {target}",
                    file=sys.stderr,
                )
                return 2
            replica.pump(timeout=0.25)
        stats = replica.stats()
        print(
            f"replica at generation {stats['generation']}: "
            f"{stats['nodes']} nodes / {stats['edges']} edges, "
            f"{stats['events_folded']} event(s) folded, "
            f"lag {replica.lag()}; digest {replica.digest()[:12]}"
        )
        _serve_queries(replica, args.query)
        replica.close()
        return 0
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
