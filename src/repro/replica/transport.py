"""Pluggable replication transports: in-process, and JSONL over TCP.

The :class:`~repro.replica.view.ReplicaView` only needs three verbs from
a transport — ``snapshot()`` (a :class:`~repro.replica.snapshot.Snapshot`),
``subscribe(since)`` (a feed with ``next_event(timeout)``/``close()``),
and ``head()`` (the writer's current generation, for lag reporting):

- :class:`InProcessTransport` binds those verbs straight to a local
  :class:`~repro.service.facade.ViewService` — the test/demo transport,
  also useful for same-process mirrors (e.g. a read pool that must not
  contend on the writer's lock);
- :class:`ReplicationServer` + :class:`SocketTransport` speak
  length-prefixed JSONL over TCP: each frame is a 4-byte big-endian
  length followed by one newline-terminated JSON object.  A connection
  carries one request (``snapshot`` / ``head`` / ``subscribe``); a
  successful ``subscribe`` turns the connection into an event stream.

Wire errors stay typed end-to-end: a replay gap on the server crosses
the socket as ``{"ok": false, "error": "replay_gap", ...}`` and is
re-raised client-side as :class:`~repro.errors.ReplayGapError` with its
``oldest_available`` field intact, so the replica's re-bootstrap logic
is transport-agnostic.
"""

from __future__ import annotations

import json
import socket
import threading

from repro.errors import ChangefeedError, ReplayGapError, ReplicaError
from repro.replica.snapshot import Snapshot
from repro.subscribe.delta import ViewEvent

#: Max accepted frame size (a snapshot of a very large view travels as
#: one frame; 256 MiB is far past any benchmark while still bounding a
#: malformed length prefix).
MAX_FRAME_BYTES = 256 * 1024 * 1024


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Write one length-prefixed JSONL frame to ``sock``."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    sock.sendall(len(body).to_bytes(4, "big") + body)


class _FrameReader:
    """Incremental frame decoder over one socket.

    Keeps partially received bytes across calls, so a read timeout
    mid-frame loses nothing: the next call resumes where it stopped.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._buf = bytearray()

    def _fill(self, timeout: float | None) -> bool:
        """Receive more bytes; ``False`` means clean EOF."""
        self._sock.settimeout(timeout)
        chunk = self._sock.recv(65536)
        if not chunk:
            return False
        self._buf += chunk
        return True

    def read_frame(self, timeout: float | None = None) -> dict | None:
        """Decode one frame; ``None`` on clean EOF.

        A timeout raises :class:`TimeoutError` (the builtin
        ``socket.timeout`` alias) without consuming anything.
        """
        while len(self._buf) < 4:
            if not self._fill(timeout):
                return None
        length = int.from_bytes(self._buf[:4], "big")
        if length > MAX_FRAME_BYTES:
            raise ReplicaError(
                f"replication frame of {length} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte bound (corrupt stream?)"
            )
        while len(self._buf) < 4 + length:
            if not self._fill(timeout):
                return None
        body = bytes(self._buf[4 : 4 + length])
        del self._buf[: 4 + length]
        try:
            payload = json.loads(body)
        except ValueError as exc:
            raise ReplicaError(
                f"replication frame is not valid JSON: {exc}"
            ) from None
        if not isinstance(payload, dict):
            raise ReplicaError(
                f"replication frame must be a JSON object, got {payload!r}"
            )
        return payload


class InProcessTransport:
    """Replication verbs bound directly to a local service (no sockets)."""

    def __init__(self, service):
        self.service = service

    def snapshot(self) -> Snapshot:
        """A fresh :meth:`ViewService.snapshot` artifact."""
        return self.service.snapshot()

    def subscribe(self, since: int):
        """A pull-mode ``changefeed(since=...)`` consumer."""
        return self.service.changefeed(since=since)

    def head(self) -> int:
        """The writer's current generation."""
        return self.service.stats()["generation"]

    def close(self) -> None:
        """Nothing to release (the service is not owned)."""


class SocketFeed:
    """Client side of one subscribed event stream."""

    def __init__(self, sock: socket.socket, reader: _FrameReader):
        self._sock = sock
        self._reader = reader
        self._closed = False
        self.generation = 0
        """Generation of the last event taken (resume-point parity with
        :class:`~repro.changefeed.consumer.ChangefeedConsumer`)."""

    def next_event(self, timeout: float | None = None) -> ViewEvent | None:
        """Take the next event; ``None`` on timeout or end of stream."""
        if self._closed:
            return None
        try:
            frame = self._reader.read_frame(timeout=timeout)
        except TimeoutError:
            return None
        except OSError:
            self.close()
            return None
        if frame is None:
            self.close()
            return None
        if "event" in frame:
            event = ViewEvent.from_dict(frame["event"])
            self.generation = event.generation
            return event
        raise _error_from_frame(frame)

    def __iter__(self):
        """Yield events until the stream ends (blocking reads)."""
        while True:
            event = self.next_event()
            if event is None:
                return
            yield event

    @property
    def closed(self) -> bool:
        """Whether the stream has ended or :meth:`close` was called."""
        return self._closed

    def close(self) -> None:
        """Drop the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def _error_from_frame(frame: dict) -> Exception:
    """Map a server error frame back to the typed exception."""
    kind = frame.get("error")
    if kind == "replay_gap":
        return ReplayGapError(
            since=int(frame.get("since", 0)),
            floor=int(frame.get("oldest_available", 0)),
        )
    if kind == "changefeed":
        return ChangefeedError(str(frame.get("message", "changefeed error")))
    return ReplicaError(
        f"replication server error: {frame.get('message', frame)!r}"
    )


class SocketTransport:
    """Client transport speaking length-prefixed JSONL to a server."""

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connect(self) -> socket.socket:
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def _request_once(self, payload: dict) -> dict:
        """One request/reply round trip on a throwaway connection."""
        sock = self._connect()
        try:
            send_frame(sock, payload)
            reply = _FrameReader(sock).read_frame(timeout=self.timeout)
        finally:
            sock.close()
        if reply is None:
            raise ReplicaError(
                f"replication server at {self.host}:{self.port} closed "
                f"the connection without replying"
            )
        if not reply.get("ok", False):
            raise _error_from_frame(reply)
        return reply

    def snapshot(self) -> Snapshot:
        """Fetch a fresh snapshot artifact from the writer."""
        reply = self._request_once({"op": "snapshot"})
        return Snapshot.from_dict(reply["snapshot"])

    def head(self) -> int:
        """The writer's current generation (for lag reporting)."""
        return int(self._request_once({"op": "head"})["generation"])

    def subscribe(self, since: int) -> SocketFeed:
        """Open an event stream resuming after generation ``since``.

        Raises :class:`~repro.errors.ReplayGapError` (with
        ``oldest_available``) when the writer has evicted that resume
        point — same contract as ``service.changefeed(since=...)``.
        """
        sock = self._connect()
        try:
            send_frame(sock, {"op": "subscribe", "since": since})
            reader = _FrameReader(sock)
            reply = reader.read_frame(timeout=self.timeout)
        except BaseException:
            sock.close()
            raise
        if reply is None:
            sock.close()
            raise ReplicaError(
                f"replication server at {self.host}:{self.port} closed "
                f"the connection during subscribe"
            )
        if not reply.get("ok", False):
            sock.close()
            raise _error_from_frame(reply)
        return SocketFeed(sock, reader)

    def close(self) -> None:
        """Nothing persistent to release (connections are per-call)."""


class ReplicationServer:
    """Serve snapshots and the changefeed over TCP for remote replicas.

    One server per writer service.  ``port=0`` (default) binds an
    ephemeral port; read it back from :attr:`port` or :attr:`address`.
    Each accepted connection is handled on a daemon thread: one request
    frame in, then either a single reply (``snapshot`` / ``head``) or a
    long-lived event stream (``subscribe``).
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._sock = socket.create_server((host, port))
        self._sock.settimeout(0.25)
        self.host, self.port = self._sock.getsockname()[:2]
        self._stop = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` pair."""
        return (self.host, self.port)

    def start(self) -> "ReplicationServer":
        """Begin accepting connections (idempotent); returns ``self``."""
        if self._accept_thread is not None and self._accept_thread.is_alive():
            return self
        self._stop.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-replication-accept",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._handle, args=(conn,),
                name="repro-replication-conn", daemon=True,
            )
            thread.start()
            self._conn_threads.append(thread)

    def _handle(self, conn: socket.socket) -> None:
        try:
            request = _FrameReader(conn).read_frame(timeout=10.0)
            if request is None:
                return
            op = request.get("op")
            if op == "snapshot":
                send_frame(conn, {
                    "ok": True,
                    "snapshot": self.service.snapshot().to_dict(),
                })
            elif op == "head":
                send_frame(conn, {
                    "ok": True,
                    "generation": self.service.stats()["generation"],
                })
            elif op == "subscribe":
                self._stream(conn, request)
            else:
                send_frame(conn, {
                    "ok": False,
                    "error": "bad_request",
                    "message": f"unknown op {op!r}",
                })
        except (OSError, TimeoutError):
            pass  # client went away; nothing to clean beyond the socket
        finally:
            conn.close()

    def _stream(self, conn: socket.socket, request: dict) -> None:
        since = request.get("since")
        try:
            consumer = self.service.changefeed(since=since)
        except ReplayGapError as exc:
            send_frame(conn, {
                "ok": False,
                "error": "replay_gap",
                "since": exc.since,
                "oldest_available": exc.oldest_available,
            })
            return
        except ChangefeedError as exc:
            send_frame(conn, {
                "ok": False,
                "error": "changefeed",
                "message": str(exc),
            })
            return
        try:
            send_frame(conn, {"ok": True})
            while not self._stop.is_set():
                event = consumer.next_event(timeout=0.25)
                if event is not None:
                    send_frame(conn, {"event": event.to_dict()})
                elif consumer.error is not None:
                    send_frame(conn, {
                        "error": "changefeed",
                        "message": str(consumer.error),
                    })
                    return
                elif consumer.closed:
                    return
        except (OSError, TimeoutError):
            pass  # replica disconnected; detach below
        finally:
            consumer.close()

    def close(self) -> None:
        """Stop accepting, drop the listener, end live streams."""
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in self._conn_threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "ReplicationServer":
        """Context-manager entry: :meth:`start`."""
        return self.start()

    def __exit__(self, *exc) -> bool:
        """Context-manager exit: :meth:`close`."""
        self.close()
        return False
