"""Folding one published event into a mirrored store.

The fold algorithm is shared verbatim by the two consumers that rebuild
writer state from the event stream — :class:`~repro.replica.view.ReplicaView`
(live changefeed) and :mod:`repro.wal.recover` (crash recovery from the
durable log) — so the two can never drift apart.  The steps, in order:

1. install every :class:`~repro.subscribe.delta.NodeRecord` (the
   interning side channel — id ↔ ``(element, sem)`` bindings for nodes
   the mirror has never seen);
2. apply every :class:`~repro.subscribe.delta.EdgeRecord` in order
   (``add_edge`` appends rightmost exactly like the writer's, so child
   order — XML document order — is reproduced, not approximated);
3. mirror garbage collection: any touched non-root node left with no
   incident edges is dropped, the writer's at-rest invariant (events
   record *every* edge removal, the GC pass's included — see
   ``docs/event-schema.md``).
"""

from __future__ import annotations

from repro.errors import ReplicaDivergedError
from repro.subscribe.delta import ViewEvent
from repro.views.store import ViewStore


def fold_event(store: ViewStore, event: ViewEvent) -> None:
    """Apply one fine-grained event's records to ``store``, in place.

    Strict: an edge record referencing a node the store does not hold
    raises :class:`~repro.errors.ReplicaDivergedError` rather than
    papering over a gap.  The caller owns ordering (events must arrive
    in generation order), locking, and the coarse-event policy — a
    coarse event's edge list does not describe the change and must not
    reach this function.
    """
    for rec in event.nodes:
        store.ensure_node(rec.node, rec.element, rec.sem)
    touched: set[int] = set()
    for rec in event.edges:
        if not store.has_node(rec.parent) or not store.has_node(rec.child):
            raise ReplicaDivergedError(
                f"event at generation {event.generation} references "
                f"unknown node(s) {rec.parent}->{rec.child}; the "
                f"mirror has drifted — re-bootstrap"
            )
        if rec.kind == "insert":
            store.add_edge(rec.parent, rec.child)
        else:
            store.remove_edge(rec.parent, rec.child)
        touched.add(rec.parent)
        touched.add(rec.child)
    # Mirror the writer's GC invariant: at rest, every non-root node has
    # at least one incident edge.  Events record every edge removal (the
    # GC pass's included), so any touched node left isolated here is
    # exactly a node the writer collected.
    for node in sorted(touched):
        if (
            node != store.root_id
            and store.has_node(node)
            and not store.children_of(node)
            and not store.parents_of(node)
        ):
            store.remove_node(node)
