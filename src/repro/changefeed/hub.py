"""The publisher side of the changefeed: one hub per published view.

The :class:`ChangefeedHub` turns the engine-internal commit observer
stream (:meth:`repro.core.updater.XMLViewUpdater.add_observer`, no
stability contract) into the stable public feed:

- it attaches to the updater **once**, on the first
  :meth:`ChangefeedHub.open`, and stays attached for the life of the
  service — retention must be continuous for replay to be trustworthy;
- mid-batch ``deferred`` events are buffered and **coalesced** with the
  session's flush event, so consumers see exactly one event per
  committed generation that was observable at rest (the same batch
  semantics the subscription registry uses);
- every published event lands in the generation-indexed
  :class:`~repro.changefeed.buffer.ReplayBuffer` *before* fan-out, so a
  consumer attached with ``since=`` can never miss an event between its
  replay and its first live delivery (both happen under the writer's
  critical section).

Generations are the updater's version counter: strictly increasing,
not necessarily dense (failed commits bump without publishing; batches
publish once).  ``open(since=g)`` means "I have processed every event
with generation ≤ g" — the hub replays the retained events after ``g``
and raises :class:`~repro.errors.ReplayGapError` when eviction has made
that impossible.
"""

from __future__ import annotations

import threading

from repro.changefeed.buffer import ReplayBuffer
from repro.changefeed.consumer import ChangefeedConsumer
from repro.errors import ChangefeedError, ReplayGapError
from repro.subscribe.delta import ViewEvent, coalesce

#: Default number of published events retained for replay.
DEFAULT_RETENTION = 256


class _Staged:
    """A staged publication: the sealed event + its fan-out snapshot."""

    __slots__ = ("event", "consumers")

    def __init__(self, event: ViewEvent, consumers: list):
        self.event = event
        self.consumers = consumers


class ChangefeedHub:
    """Publishes one view's ΔV event stream to attached consumers."""

    def __init__(self, updater, retention: int = DEFAULT_RETENTION, wal=None,
                 metrics=None):
        from repro.metrics import NULL_METRICS

        if retention < 1:
            raise ValueError(f"retention must be >= 1, got {retention}")
        metrics = metrics if metrics is not None else NULL_METRICS
        self.updater = updater
        self.retention = retention
        self.wal = wal
        """The durable log (:class:`~repro.wal.log.WriteAheadLog`) every
        staged event is appended to, or ``None``.  With a WAL the replay
        floor extends below the in-memory buffer: ``open(since=g)``
        falls back to the log when ``g`` predates the buffer."""
        self.checkpoint_fn = None
        """Callback (set by the façade) that cuts a WAL checkpoint of
        the writer's current state; invoked under the writer's critical
        section when the log's interval elapses or a coarse event is
        staged."""
        self._members = threading.Lock()
        self._consumers: list[ChangefeedConsumer] = []
        self._buffer: ReplayBuffer | None = None
        self._pending: list[ViewEvent] = []
        self.events_published = 0
        """Events published since the hub attached (coalesced batches
        count once)."""
        self.callback_errors = 0
        """Live deliveries that raised; each detached its consumer (the
        exception is kept on ``consumer.error``)."""
        self.overflows = 0
        """Pull consumers detached for falling further behind than the
        queue bound (twice the retention window)."""
        self.drops = 0
        """Events discarded by ``backpressure='drop_oldest'`` consumers
        (summed across all of them, detached ones included)."""
        self.parks = 0
        """Deliveries that had to wait (``backpressure='block_writer'``)
        for a full pull queue to drain a slot — each park delayed the
        publisher by up to ``block_timeout`` seconds."""
        self._m_published = metrics.counter(
            "repro_events_published_total",
            "Events published to the changefeed (coalesced batches "
            "count once).",
        )
        self._m_overflows = metrics.counter(
            "repro_consumer_overflows_total",
            "Pull consumers detached for exceeding their queue bound.",
        )
        self._m_drops = metrics.counter(
            "repro_consumer_drops_total",
            "Events discarded by drop_oldest backpressure consumers.",
        )
        self._m_parks = metrics.counter(
            "repro_consumer_parks_total",
            "Deliveries parked waiting for a full pull queue to drain "
            "(block_writer backpressure).",
        )
        self._m_callback_errors = metrics.counter(
            "repro_consumer_callback_errors_total",
            "Live deliveries that raised and detached their consumer.",
        )
        for instrument in (
            self._m_published, self._m_overflows, self._m_drops,
            self._m_parks, self._m_callback_errors,
        ):
            instrument.inc(0)  # materialize at 0 in the exposition

    # -- attachment -----------------------------------------------------------------

    @property
    def attached(self) -> bool:
        """Whether the hub observes commits (true after the first open)."""
        return self._buffer is not None

    @property
    def floor(self) -> int:
        """Oldest resumable generation (the attach generation until the
        replay buffer evicts; with a WAL, the log's compaction floor —
        whichever reaches further back)."""
        if self._buffer is None:
            base = self.updater._version
        else:
            base = self._buffer.floor
        if self.wal is not None:
            return min(base, self.wal.floor)
        return base

    def _ensure_attached(self) -> None:
        if self._buffer is None:
            # Attach exactly once and never detach: replay is only
            # trustworthy while retention is continuous.  Events before
            # the first open are unobservable (floor = attach version).
            self._buffer = ReplayBuffer(
                self.retention, floor=self.updater._version
            )
            self.updater.add_observer(self.handle)

    # -- the consumer-facing API -----------------------------------------------------

    def validate_since(self, since: int | None) -> None:
        """Raise exactly what :meth:`open` would for this resume point.

        Side-effect free, so callers (the façade) can reject a bad
        ``since`` *before* attach/pin side effects stick — a failed
        ``changefeed()`` call must not switch on per-commit event
        construction for the life of the service.
        """
        if since is None:
            return
        current = self.updater._version
        if since > current:
            raise ChangefeedError(
                f"since={since} is ahead of the feed (current "
                f"generation is {current})"
            )
        if since < self.floor:
            raise ReplayGapError(since=since, floor=self.floor)

    def open(
        self,
        since: int | None = None,
        on_event=None,
        backpressure: str = "block_writer",
        block_timeout: float | None = None,
    ) -> ChangefeedConsumer:
        """Attach a consumer, optionally replaying from ``since``.

        Callers must hold the writer side of the service lock (the
        :class:`~repro.service.facade.ViewService` façade does), which
        makes replay-then-live gapless: no commit can interleave between
        the replayed batch and the consumer joining the fan-out list.

        ``backpressure``/``block_timeout`` set the pull consumer's
        full-queue policy (see :class:`ChangefeedConsumer`).
        """
        self.validate_since(since)  # before the attach side effect
        self._ensure_attached()
        assert self._buffer is not None
        if since is None:
            replayed: list[ViewEvent] = []
            start = self.updater._version
        elif self.wal is not None and since < self._buffer.floor:
            # The buffer has evicted this range but the durable log
            # still covers it (validate_since checked the WAL floor):
            # replay the logged wire-form events instead.  Identical
            # stream — the buffer and the log are appended together.
            replayed = self.wal.events_since(since)
            start = since
        else:
            replayed = self._buffer.since(since)
            start = since
        consumer = ChangefeedConsumer(
            self, on_event, generation=start,
            # Bound pull queues at twice the retention window — a
            # consumer lagging beyond another window on top of a full
            # replay could no longer resume via replay anyway.  A
            # log-backed replay can exceed the buffer window (the WAL
            # floor sits below the buffer's), so the bound must always
            # cover the attach batch itself plus one retention window
            # of live slack, or the attach would block on its own
            # replay and detach the consumer it is creating.
            max_pending=max(2 * self.retention,
                            len(replayed) + self.retention),
            backpressure=backpressure,
            block_timeout=block_timeout,
        )
        for event in replayed:
            consumer._deliver(event)
        with self._members:
            self._consumers.append(consumer)
        return consumer

    def _discard(self, consumer: ChangefeedConsumer) -> None:
        with self._members:
            if consumer in self._consumers:
                self._consumers.remove(consumer)

    def __len__(self) -> int:
        return len(self._consumers)

    # -- the publish path (writer's critical section) ---------------------------------

    def handle(self, event: ViewEvent) -> None:
        """Commit observer: coalesce batches, retain, fan out inline.

        The legacy single-phase path (no staged pipeline, or direct
        updater use): staging and delivery both run inside the writer's
        critical section.
        """
        if event.deferred:
            self._pending.append(event)
            return
        self.deliver(self.stage(event))

    def stage(self, event: ViewEvent):
        """Retain ``event`` and snapshot its fan-out list (under the lock).

        The staged pipeline's half of publication that *must* stay in
        the writer's critical section: coalescing with any buffered
        mid-batch events, the replay-buffer append (so a consumer
        attaching right after the lock is released replays this event
        instead of missing it) and the consumer-list snapshot (so that
        same late consumer is not *also* delivered to live — no gaps, no
        duplicates).  Returns an opaque staging token for
        :meth:`deliver`, or ``None`` when the hub never attached.
        """
        if self._buffer is None:
            return None
        if self._pending:
            self._pending.append(event)
            event = coalesce(self._pending)
            self._pending.clear()
        self._buffer.append(event)
        if self.wal is not None:
            self.wal.append(event)
            if event.coarse or self.wal.should_checkpoint():
                # Coarse events are not replayable (their edge list does
                # not describe the change), so a checkpoint lands right
                # behind them; otherwise the periodic interval decides.
                # Still inside the writer's critical section: the store
                # and base database are at rest at this generation.
                if self.checkpoint_fn is not None:
                    self.checkpoint_fn()
        self.events_published += 1
        self._m_published.inc()
        with self._members:
            consumers = list(self._consumers)
        return _Staged(event, consumers)

    def deliver(self, staged) -> None:
        """Fan a staged event out to its snapshot of consumers.

        Runs *outside* the write lock on the staged pipeline (in commit
        order — the pipeline's ticket fence serializes concurrent
        publishers), inline under the lock on the legacy path.
        """
        if staged is None:
            return
        event = staged.event
        for consumer in staged.consumers:
            try:
                if not consumer._deliver(event):
                    self.overflows += 1
                    self._m_overflows.inc()
            except Exception as exc:
                # The commit already happened; letting a consumer bug
                # propagate here would tell the writer its (successful)
                # update failed.  Record and detach the consumer instead.
                consumer.error = exc
                self.callback_errors += 1
                self._m_callback_errors.inc()
                consumer.close()

    # -- backpressure accounting (called by consumers) ----------------------------

    def _on_drop(self) -> None:
        """One event discarded by a ``drop_oldest`` consumer."""
        self.drops += 1
        self._m_drops.inc()

    def _on_park(self) -> None:
        """One ``block_writer`` delivery parked on a full queue."""
        self.parks += 1
        self._m_parks.inc()

    # -- diagnostics ------------------------------------------------------------------

    def stats(self) -> dict:
        """JSON-safe hub statistics (for ``service.stats()``)."""
        return {
            "attached": self.attached,
            "consumers": len(self._consumers),
            "events_published": self.events_published,
            "callback_errors": self.callback_errors,
            "overflows": self.overflows,
            "drops": self.drops,
            "parks": self.parks,
            "retention": self.retention,
            "retained": len(self._buffer) if self._buffer else 0,
            "floor": self.floor,
            "durable": self.wal is not None,
        }
