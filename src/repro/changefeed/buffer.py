"""The bounded, generation-indexed replay buffer behind the changefeed.

One :class:`ReplayBuffer` per :class:`~repro.changefeed.hub.ChangefeedHub`
retains the last ``capacity`` published events so that a consumer can
resume from any retained generation (``service.changefeed(since=g)``)
and receive exactly the events it missed.  The buffer tracks a
:attr:`ReplayBuffer.floor` — the oldest resumable generation: every
event after it is retained — and refuses (with a typed
:class:`~repro.errors.ReplayGapError`) any resume point below it:
silently skipping evicted events would corrupt every replica folding
the stream.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ReplayGapError
from repro.subscribe.delta import ViewEvent


class ReplayBuffer:
    """Bounded FIFO of published events, indexed by generation.

    Generations are strictly increasing but need not be dense: a batch
    publishes one coalesced event carrying the flush generation, and a
    failed commit bumps the version without publishing.  Replay
    semantics therefore use generation *ordering*, never arithmetic:
    ``since(g)`` returns every retained event with generation > ``g``.
    """

    def __init__(self, capacity: int, floor: int = 0):
        if capacity < 1:
            raise ValueError(f"replay capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[ViewEvent] = deque()
        self._floor = floor

    @property
    def floor(self) -> int:
        """The oldest generation a consumer may still resume from.

        ``since(g)`` is complete iff ``g >= floor``: every event with a
        generation above the floor is retained.  Starts at the hub's
        attach generation and rises as events are evicted.
        """
        return self._floor

    @property
    def latest(self) -> int:
        """Generation of the newest retained event (``floor`` if empty)."""
        return self._events[-1].generation if self._events else self._floor

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(tuple(self._events))

    def append(self, event: ViewEvent) -> None:
        """Retain ``event``, evicting (and raising the floor past) the
        oldest event when the buffer is full."""
        if len(self._events) >= self.capacity:
            evicted = self._events.popleft()
            self._floor = max(self._floor, evicted.generation)
        self._events.append(event)

    def since(self, generation: int) -> list[ViewEvent]:
        """Every retained event after ``generation``, oldest first.

        Raises :class:`~repro.errors.ReplayGapError` when events in
        ``(generation, floor]`` have been evicted — the returned list
        would be silently incomplete.
        """
        if generation < self._floor:
            raise ReplayGapError(since=generation, floor=self._floor)
        return [e for e in self._events if e.generation > generation]

    def generations(self) -> list[int]:
        """The retained generations, oldest first (diagnostics/tests)."""
        return [e.generation for e in self._events]
