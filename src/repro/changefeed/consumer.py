"""The consumer handle returned by ``service.changefeed()``.

A :class:`ChangefeedConsumer` operates in exactly one of two modes,
chosen at creation time:

- **callback mode** (``changefeed(on_event=fn)``) — ``fn(event)`` runs
  synchronously for every published event, *inside the writer's
  critical section*.  The callback sees the view, the subscription
  registry and the event in a mutually consistent state, but it must be
  fast and must not write back into the service — a nested
  ``apply``/``plan``/``apply_base_update`` raises
  :class:`~repro.errors.PlanError` (the write lock is reentrant, so the
  nested commit would otherwise publish events out of order
  mid-delivery).  Replayed events are delivered through the same
  callback during attach.  A live delivery that *raises* detaches the
  consumer (the exception lands on :attr:`ChangefeedConsumer.error`)
  instead of failing the writer's already-committed update.
- **pull mode** (the default) — events queue on the consumer;
  :meth:`ChangefeedConsumer.next_event` blocks (with optional timeout),
  :meth:`ChangefeedConsumer.events` drains without blocking, and
  iterating the consumer yields events until :meth:`close`.  Pull mode
  decouples the consumer's pace from the writer entirely: the writer
  only pays one lock-protected append per event.  Queues are bounded at
  twice the hub's retention window — a consumer that has fallen further
  behind than replay could cover is detached (overflow sets
  :attr:`ChangefeedConsumer.error`; the queued backlog stays drainable)
  rather than growing without bound.

Either way the consumer tracks :attr:`ChangefeedConsumer.generation` —
the generation of the last event it has *taken* — which is exactly the
value to hand back as ``changefeed(since=...)`` after a disconnect.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import ChangefeedError
from repro.subscribe.delta import ViewEvent


class ChangefeedConsumer:
    """One attached consumer of a view's published event stream."""

    def __init__(
        self, hub, on_event=None, generation: int = 0,
        max_pending: int = 0,
    ):
        self._hub = hub
        self._callback = on_event
        self._queue: deque[ViewEvent] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._max_pending = max_pending
        """Pull-queue bound (0 = unbounded); the hub passes its
        retention window — beyond it, replay could not cover the
        backlog either, so the consumer is detached on overflow."""
        self.generation = generation
        """Generation of the last event taken (callback mode: delivered);
        pass as ``since=`` to resume after a disconnect."""
        self.delivered = 0
        """Events handed to this consumer (both modes), replay included."""
        self.error: BaseException | None = None
        """Why this consumer was force-detached, when it was: a live
        callback delivery raised (the hub records the exception rather
        than letting a consumer bug poison the writer's commit path),
        or a pull queue overflowed its bound."""

    # -- delivery (called by the hub) ---------------------------------------------

    def _deliver(self, event: ViewEvent) -> bool:
        """Hand one event over; ``False`` means the pull queue
        overflowed and the consumer detached itself."""
        if self._callback is not None:
            if self._closed:
                return True
            self.delivered += 1
            self._callback(event)
            self.generation = event.generation
            return True
        with self._cond:
            if self._closed:
                return True
            if self._max_pending and len(self._queue) >= self._max_pending:
                self.error = ChangefeedError(
                    f"pull consumer fell behind: {len(self._queue)} "
                    f"events pending reached the queue bound of "
                    f"{self._max_pending} (2x the retention window); "
                    f"drain the backlog, then reattach with "
                    f"changefeed(since=<last generation>)"
                )
                self._closed = True
                self._cond.notify_all()
            else:
                self.delivered += 1
                self._queue.append(event)
                self._cond.notify_all()
                return True
        self._hub._discard(self)
        return False

    # -- the pull contract ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has detached this consumer."""
        return self._closed

    @property
    def pending(self) -> int:
        """Queued events not yet taken (always 0 in callback mode)."""
        with self._cond:
            return len(self._queue)

    def _require_pull(self, what: str) -> None:
        if self._callback is not None:
            raise ChangefeedError(
                f"{what} is a pull-mode operation; this consumer was "
                "opened with on_event= and receives events through its "
                "callback"
            )

    def next_event(self, timeout: float | None = None) -> ViewEvent | None:
        """Take the next event, blocking until one arrives.

        Returns ``None`` when ``timeout`` (seconds) elapses with no
        event, or when the consumer is closed and its queue is drained.
        """
        self._require_pull("next_event()")
        with self._cond:
            if not self._queue and not self._closed:
                self._cond.wait_for(
                    lambda: self._queue or self._closed, timeout=timeout
                )
            if not self._queue:
                return None
            event = self._queue.popleft()
            self.generation = event.generation
            return event

    def events(self) -> list[ViewEvent]:
        """Drain every queued event without blocking (may be empty)."""
        self._require_pull("events()")
        with self._cond:
            drained = list(self._queue)
            self._queue.clear()
            if drained:
                self.generation = drained[-1].generation
            return drained

    def __iter__(self):
        """Yield events as they arrive until the consumer is closed."""
        self._require_pull("iteration")
        while True:
            event = self.next_event()
            if event is None:
                return
            yield event

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        """Detach from the feed (idempotent); wakes blocked pullers.

        Queued events already delivered remain drainable via
        :meth:`events`; :meth:`next_event` returns ``None`` once the
        queue is empty.
        """
        if self._closed:
            return
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._hub._discard(self)

    def __enter__(self) -> "ChangefeedConsumer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "callback" if self._callback is not None else "pull"
        return (
            f"ChangefeedConsumer({mode} gen={self.generation} "
            f"delivered={self.delivered}{' closed' if self._closed else ''})"
        )
