"""The consumer handle returned by ``service.changefeed()``.

A :class:`ChangefeedConsumer` operates in exactly one of two modes,
chosen at creation time:

- **callback mode** (``changefeed(on_event=fn)``) — ``fn(event)`` runs
  synchronously for every published event, *inside the writer's
  critical section*.  The callback sees the view, the subscription
  registry and the event in a mutually consistent state, but it must be
  fast and must not write back into the service — a nested
  ``apply``/``plan``/``apply_base_update`` raises
  :class:`~repro.errors.PlanError` (the write lock is reentrant, so the
  nested commit would otherwise publish events out of order
  mid-delivery).  Replayed events are delivered through the same
  callback during attach.  A live delivery that *raises* detaches the
  consumer (the exception lands on :attr:`ChangefeedConsumer.error`)
  instead of failing the writer's already-committed update.
- **pull mode** (the default) — events queue on the consumer;
  :meth:`ChangefeedConsumer.next_event` blocks (with optional timeout),
  :meth:`ChangefeedConsumer.events` drains without blocking, and
  iterating the consumer yields events until :meth:`close`.  Pull mode
  decouples the consumer's pace from the writer: queues are bounded at
  twice the hub's retention window, and what happens at the bound is
  the consumer's **backpressure policy**:

  - ``backpressure='block_writer'`` (the default) — delivery waits up
    to ``block_timeout`` seconds for the consumer to drain a slot; a
    consumer still full after that is detached (overflow sets
    :attr:`ChangefeedConsumer.error`; the queued backlog stays
    drainable) rather than wedging the publisher forever.  On the
    staged commit pipeline, delivery runs *outside* the writer's
    critical section, so a blocked delivery delays the publisher — not
    readers, and not the next writer's mutation.
  - ``backpressure='drop_oldest'`` — the oldest queued event is
    discarded to make room (counted on :attr:`ChangefeedConsumer.drops`
    and the hub's ``drops`` stat) and the consumer stays attached; the
    consumer must treat a generation gap between consecutive events as
    "resync via ``changefeed(since=...)``" if it needs every event.

Either way the consumer tracks :attr:`ChangefeedConsumer.generation` —
the generation of the last event it has *taken* — which is exactly the
value to hand back as ``changefeed(since=...)`` after a disconnect.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import ChangefeedError
from repro.subscribe.delta import ViewEvent

#: How long a ``block_writer`` delivery waits for queue space before
#: giving up and detaching the consumer (seconds).
DEFAULT_BLOCK_TIMEOUT = 1.0

#: The recognized full-queue policies.
BACKPRESSURE_POLICIES = ("block_writer", "drop_oldest")


class ChangefeedConsumer:
    """One attached consumer of a view's published event stream."""

    def __init__(
        self, hub, on_event=None, generation: int = 0,
        max_pending: int = 0,
        backpressure: str = "block_writer",
        block_timeout: float | None = None,
    ):
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ChangefeedError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {backpressure!r}"
            )
        self._hub = hub
        self._callback = on_event
        self._queue: deque[ViewEvent] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._max_pending = max_pending
        """Pull-queue bound (0 = unbounded); the hub passes its
        retention window — beyond it, replay could not cover the
        backlog either, so the consumer is detached on overflow."""
        self.backpressure = backpressure
        """Full-queue policy: ``'block_writer'`` or ``'drop_oldest'``."""
        self._block_timeout = (
            DEFAULT_BLOCK_TIMEOUT if block_timeout is None else block_timeout
        )
        self.drops = 0
        """Events this consumer discarded under ``'drop_oldest'``."""
        self.generation = generation
        """Generation of the last event taken (callback mode: delivered);
        pass as ``since=`` to resume after a disconnect."""
        self.delivered = 0
        """Events handed to this consumer (both modes), replay included."""
        self.error: BaseException | None = None
        """Why this consumer was force-detached, when it was: a live
        callback delivery raised (the hub records the exception rather
        than letting a consumer bug poison the writer's commit path),
        or a pull queue overflowed its bound."""

    # -- delivery (called by the hub) ---------------------------------------------

    def _deliver(self, event: ViewEvent) -> bool:
        """Hand one event over; ``False`` means the pull queue
        overflowed and the consumer detached itself."""
        if self._callback is not None:
            if self._closed:
                return True
            self.delivered += 1
            self._callback(event)
            self.generation = event.generation
            return True
        overflowed = False
        with self._cond:
            if self._closed:
                return True
            if self._max_pending and len(self._queue) >= self._max_pending:
                if self.backpressure == "drop_oldest":
                    # Lossy consumer: sacrifice the oldest queued event
                    # and stay attached.
                    self._queue.popleft()
                    self.drops += 1
                    self._hub._on_drop()
                else:
                    # block_writer: give the consumer a chance to drain
                    # a slot (next_event()/events() notify on take).
                    self._hub._on_park()
                    self._cond.wait_for(
                        lambda: self._closed
                        or len(self._queue) < self._max_pending,
                        timeout=self._block_timeout,
                    )
                    if self._closed:
                        return True
                    if len(self._queue) >= self._max_pending:
                        self.error = ChangefeedError(
                            f"pull consumer fell behind: {len(self._queue)} "
                            f"events pending reached the queue bound of "
                            f"{self._max_pending} "
                            f"and no slot freed within "
                            f"{self._block_timeout}s; drain the backlog, "
                            f"then reattach with "
                            f"changefeed(since=<last generation>)"
                        )
                        self._closed = True
                        self._cond.notify_all()
                        overflowed = True
            if not overflowed:
                self.delivered += 1
                self._queue.append(event)
                self._cond.notify_all()
                return True
        self._hub._discard(self)
        return False

    # -- the pull contract ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has detached this consumer."""
        return self._closed

    @property
    def pending(self) -> int:
        """Queued events not yet taken (always 0 in callback mode)."""
        with self._cond:
            return len(self._queue)

    def _require_pull(self, what: str) -> None:
        if self._callback is not None:
            raise ChangefeedError(
                f"{what} is a pull-mode operation; this consumer was "
                "opened with on_event= and receives events through its "
                "callback"
            )

    def next_event(self, timeout: float | None = None) -> ViewEvent | None:
        """Take the next event, blocking until one arrives.

        Returns ``None`` when ``timeout`` (seconds) elapses with no
        event, or — without blocking — when the consumer is already
        closed and its queue is drained.  A :meth:`close` that lands
        *while this call is blocked* raises
        :class:`~repro.errors.ChangefeedError` instead, so a puller
        parked on a long timeout learns about the close immediately
        rather than timing out into an indistinguishable ``None``.
        """
        self._require_pull("next_event()")
        with self._cond:
            if not self._queue and not self._closed:
                self._cond.wait_for(
                    lambda: self._queue or self._closed, timeout=timeout
                )
                if not self._queue and self._closed:
                    raise ChangefeedError(
                        "consumer closed while blocked in next_event()"
                    )
            if not self._queue:
                return None
            event = self._queue.popleft()
            self.generation = event.generation
            # A block_writer delivery may be parked on a full queue.
            self._cond.notify_all()
            return event

    def events(self) -> list[ViewEvent]:
        """Drain every queued event without blocking (may be empty)."""
        self._require_pull("events()")
        with self._cond:
            drained = list(self._queue)
            self._queue.clear()
            if drained:
                self.generation = drained[-1].generation
                # A block_writer delivery may be parked on a full queue.
                self._cond.notify_all()
            return drained

    def __iter__(self):
        """Yield events as they arrive until the consumer is closed."""
        self._require_pull("iteration")
        while True:
            try:
                event = self.next_event()
            except ChangefeedError:
                # Closed while blocked: iteration ends normally.
                return
            if event is None:
                return
            yield event

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        """Detach from the feed (idempotent); wakes blocked pullers.

        Queued events already delivered remain drainable via
        :meth:`events`; a *subsequent* :meth:`next_event` returns
        ``None`` once the queue is empty, while a call blocked *right
        now* is woken with :class:`~repro.errors.ChangefeedError`.
        """
        if self._closed:
            return
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._hub._discard(self)

    def __enter__(self) -> "ChangefeedConsumer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "callback" if self._callback is not None else "pull"
        return (
            f"ChangefeedConsumer({mode} gen={self.generation} "
            f"delivered={self.delivered}{' closed' if self._closed else ''})"
        )
