"""The public, versioned changefeed over one view's ΔV event stream.

Where :meth:`repro.core.updater.XMLViewUpdater.add_observer` is an
engine-internal hook with no stability contract, this package is the
supported way for external consumers — caches, materialized replicas,
audit logs — to follow a published view:

- :mod:`repro.changefeed.hub` — the per-view publisher
  (:class:`ChangefeedHub`): batch coalescing, the replay buffer, fan-out;
- :mod:`repro.changefeed.consumer` — the handle
  (:class:`ChangefeedConsumer`): callback contract or blocking/pull
  iterator, resume bookkeeping;
- :mod:`repro.changefeed.buffer` — the bounded generation-indexed
  :class:`ReplayBuffer` with typed gap detection.

Entry point: :meth:`repro.service.ViewService.changefeed`.  The event
unit is the JSON-serializable :class:`~repro.subscribe.delta.ViewEvent`
(schema version :data:`~repro.subscribe.delta.SCHEMA_VERSION`), specified
normatively in ``docs/event-schema.md``.
"""

from repro.changefeed.buffer import ReplayBuffer
from repro.changefeed.consumer import ChangefeedConsumer
from repro.changefeed.hub import DEFAULT_RETENTION, ChangefeedHub
from repro.errors import ChangefeedError, EventDecodeError, ReplayGapError
from repro.subscribe.delta import SCHEMA_VERSION, EdgeRecord, ViewEvent

__all__ = [
    "ChangefeedConsumer",
    "ChangefeedError",
    "ChangefeedHub",
    "DEFAULT_RETENTION",
    "EdgeRecord",
    "EventDecodeError",
    "ReplayBuffer",
    "ReplayGapError",
    "SCHEMA_VERSION",
    "ViewEvent",
]
