"""Schema-directed publishing: materialize ``σ(I)`` (paper, Section 2.2).

Three entry points:

- :func:`publish_store` — publish directly into the DAG representation:
  a worklist over ``(type, $A)`` pairs; each pair is expanded exactly
  once no matter how often its subtree occurs, so publishing terminates
  even for recursive DTDs (as long as the data's derivation graph is a
  DAG) and the result is the compressed view.
- :func:`publish_subtree` — publish ``ST(A, t)`` for an insertion: new
  nodes are interned into the main store's id space (gen_id is global)
  but *no edges are added to the store*; the caller decides (Xinsert) or
  rolls back (:meth:`SubtreeResult.rollback`).
- :func:`publish_tree` / :func:`unfold_to_tree` — the uncompressed tree,
  used by baselines and as the oracle in tests.  Unfolding detects
  cycles (a cyclic derivation has no finite tree).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atg.model import ATG, ProjectionRule, QueryRule
from repro.dtd.model import Alternation
from repro.errors import ATGError, CycleError
from repro.relational.database import Database
from repro.views.store import ViewStore
from repro.xmltree.tree import XMLNode


def _child_sems(
    atg: ATG, db: Database, element: str, sem: tuple, child: str
) -> list[tuple]:
    """The ``$child`` tuples of an ``element`` node with attribute ``sem``."""
    rule = atg.rule(element, child)
    parent_columns = atg.signature(element)
    if isinstance(rule, ProjectionRule):
        return [rule.project(parent_columns, sem)]
    if isinstance(rule, QueryRule):
        bindings = rule.bindings_for(parent_columns, sem)
        result = rule.query.evaluate(db, bindings)
        return sorted(result.rows, key=_sort_key)
    raise ATGError(f"unknown rule type {type(rule).__name__}")


def _sort_key(row: tuple):
    return tuple((type(v).__name__, v) for v in row)


def _expand_children(
    atg: ATG, db: Database, element: str, sem: tuple
) -> list[tuple[str, tuple]]:
    """All ``(child_type, child_sem)`` pairs of a node, in document order."""
    content = atg.dtd.content(element)
    out: list[tuple[str, tuple]] = []
    if isinstance(content, Alternation):
        # Exactly one alternative applies: the first whose projection is
        # defined (by convention, alternation rules map disjoint columns;
        # see the model validation).  We emit each declared alternative
        # whose projected tuple is non-None-filled.
        for child in content.child_types():
            for child_sem in _child_sems(atg, db, element, sem, child):
                if all(v is not None for v in child_sem):
                    out.append((child, child_sem))
                    break
            else:
                continue
            break
        return out
    for child in content.child_types():
        for child_sem in _child_sems(atg, db, element, sem, child):
            out.append((child, child_sem))
    return out


# ---------------------------------------------------------------------------
# DAG publishing
# ---------------------------------------------------------------------------


def publish_store(atg: ATG, db: Database) -> ViewStore:
    """Publish ``σ(I)`` as a DAG view store."""
    store = ViewStore(atg)
    root_id, _ = store.intern(atg.root, atg.root_sem)
    store.root_id = root_id
    worklist: list[int] = [root_id]
    while worklist:
        node = worklist.pop()
        element = store.type_of(node)
        sem = store.sem_of(node)
        for child_type, child_sem in _expand_children(atg, db, element, sem):
            child_id, is_new = store.intern(child_type, child_sem)
            store.add_edge(node, child_id)
            if is_new:
                worklist.append(child_id)
    return store


@dataclass
class SubtreeResult:
    """Result of publishing ``ST(A, t)`` against the main store's id space.

    Attributes
    ----------
    root:
        id of the subtree root (``r_A`` in Algorithm Xinsert).
    new_nodes:
        ids interned by this publish (in creation order); they have no
        edges in the main store yet.
    edges:
        The subtree's internal edges ``E_A`` as
        ``(parent_type, parent_id, child_type, child_id)``, restricted to
        edges not already present in the main store (edges below an
        already-interned node are shared and already stored).
    node_count / edge_count:
        |N_A| and |E_A| of the *full* subtree DAG (including shared parts).
    """

    root: int
    new_nodes: list[int] = field(default_factory=list)
    edges: list[tuple[str, int, str, int]] = field(default_factory=list)
    node_count: int = 0
    edge_count: int = 0
    all_nodes: set[int] = field(default_factory=set)
    """Every node of the subtree DAG N_A, including shared regions."""

    def rollback(self, store: ViewStore) -> None:
        """Remove the newly interned (still edge-less) nodes from the store.

        When the interned ids are still the top of the id space (nothing
        interned since — guaranteed inside a rejected update or an
        aborted :class:`~repro.core.updater.UpdatePlan`), the id counter
        is wound back too (:meth:`ViewStore.release_ids`), so an aborted
        plan leaves the store byte-identical and later inserts allocate
        the same ids a never-planned store would.
        """
        removed: list[int] = []
        for node in reversed(self.new_nodes):
            if store.has_node(node):
                store.remove_node(node)
                removed.append(node)
        store.release_ids(removed)


def publish_subtree(
    atg: ATG, db: Database, store: ViewStore, element: str, sem: tuple
) -> SubtreeResult:
    """Publish ``ST(element, sem)``, interning nodes into ``store``.

    Expansion stops at nodes that already exist in the store — their
    subtrees are already published (subtree property), so their edges
    are shared rather than recreated.
    """
    sem = tuple(sem)
    existing = store.lookup(element, sem)
    if existing is not None:
        nodes, edge_count = _subtree_nodes(store, existing)
        return SubtreeResult(
            root=existing,
            node_count=len(nodes),
            edge_count=edge_count,
            all_nodes=nodes,
        )
    result = SubtreeResult(root=-1)
    root_id, _ = store.intern(element, sem)
    result.root = root_id
    result.new_nodes.append(root_id)
    worklist: list[int] = [root_id]
    internal_nodes: set[int] = {root_id}
    while worklist:
        node = worklist.pop()
        node_type = store.type_of(node)
        node_sem = store.sem_of(node)
        for child_type, child_sem in _expand_children(
            atg, db, node_type, node_sem
        ):
            child_id, is_new = store.intern(child_type, child_sem)
            result.edges.append((node_type, node, child_type, child_id))
            internal_nodes.add(child_id)
            if is_new:
                result.new_nodes.append(child_id)
                worklist.append(child_id)
    nodes, edge_count = _subtree_nodes_from(store, result)
    result.all_nodes = nodes
    result.node_count, result.edge_count = len(nodes), edge_count
    return result


def _subtree_nodes(store: ViewStore, root: int) -> tuple[set[int], int]:
    """Nodes and edge count of the DAG under an existing node."""
    seen = {root}
    stack = [root]
    edge_count = 0
    while stack:
        node = stack.pop()
        for child in store.children_of(node):
            edge_count += 1
            if child not in seen:
                seen.add(child)
                stack.append(child)
    return seen, edge_count


def _subtree_nodes_from(
    store: ViewStore, result: SubtreeResult
) -> tuple[set[int], int]:
    """Nodes and edge count of ST including shared regions below new edges."""
    seen: set[int] = {result.root}
    edge_count = len(result.edges)
    frontier: list[int] = []
    for _, parent, _, child in result.edges:
        seen.add(parent)
        if child not in seen:
            seen.add(child)
            frontier.append(child)
    while frontier:
        node = frontier.pop()
        for child in store.children_of(node):
            edge_count += 1
            if child not in seen:
                seen.add(child)
                frontier.append(child)
    return seen, edge_count


# ---------------------------------------------------------------------------
# Tree publishing / unfolding
# ---------------------------------------------------------------------------


def publish_tree(atg: ATG, db: Database, max_nodes: int = 10_000_000) -> XMLNode:
    """Publish ``σ(I)`` as an uncompressed tree (baseline/oracle).

    Raises :class:`CycleError` if the derivation is cyclic (the tree
    would be infinite) and :class:`ATGError` past ``max_nodes``.
    """
    budget = [max_nodes]

    def build(element: str, sem: tuple, on_path: frozenset) -> XMLNode:
        identity = (element, sem)
        if identity in on_path:
            raise CycleError(
                f"cyclic derivation at {identity!r}: view has no finite tree"
            )
        budget[0] -= 1
        if budget[0] < 0:
            raise ATGError(f"tree exceeds max_nodes={max_nodes}")
        node = XMLNode(element, sem)
        if atg.dtd.is_pcdata(element):
            node.text = str(sem[0]) if sem else ""
            return node
        child_path = on_path | {identity}
        for child_type, child_sem in _expand_children(atg, db, element, sem):
            node.children.append(build(child_type, child_sem, child_path))
        return node

    return build(atg.root, atg.root_sem, frozenset())


def unfold_to_tree(
    store: ViewStore, root: int | None = None, max_nodes: int = 10_000_000
) -> XMLNode:
    """Unfold the DAG to the XML tree it compresses.

    Shared nodes are expanded once per occurrence; cycles raise
    :class:`CycleError`.
    """
    if root is None:
        if store.root_id is None:
            raise ATGError("store has no root")
        root = store.root_id
    budget = [max_nodes]

    def build(node: int, on_path: frozenset) -> XMLNode:
        if node in on_path:
            raise CycleError(f"cycle through node {node} in view store")
        budget[0] -= 1
        if budget[0] < 0:
            raise ATGError(f"unfolded tree exceeds max_nodes={max_nodes}")
        element = store.type_of(node)
        sem = store.sem_of(node)
        xml = XMLNode(element, sem)
        if store.atg.dtd.is_pcdata(element):
            xml.text = str(sem[0]) if sem else ""
            return xml
        child_path = on_path | {node}
        for child in store.children_of(node):
            xml.children.append(build(child, child_path))
        return xml

    return build(root, frozenset())
