"""Attribute Translation Grammars (ATGs): schema-directed XML publishing.

An ATG ``σ : R → D`` (paper, Section 2.2) pairs a DTD ``D`` with, for
every production edge ``A → ... B ...``, a rule that computes the
semantic attribute ``$B`` of the ``B`` children from ``$A``:

- :class:`~repro.atg.model.ProjectionRule` for sequence/alternation
  children (``$cno = $course.cno`` style assignments);
- :class:`~repro.atg.model.QueryRule` for starred children
  (``$B ← Q($A)``, an SPJ query parameterized by the parent's tuple).

The publisher (:mod:`repro.atg.publisher`) materializes ``σ(I)`` directly
as a DAG (:class:`~repro.views.store.ViewStore`) — one node per
``(type, $A)`` pair — or as an uncompressed tree for the baselines.
"""

from repro.atg.model import ATG, ProjectionRule, QueryRule, ChildRule
from repro.atg.publisher import (
    publish_store,
    publish_subtree,
    publish_tree,
    unfold_to_tree,
    SubtreeResult,
)

__all__ = [
    "ATG",
    "ChildRule",
    "ProjectionRule",
    "QueryRule",
    "publish_store",
    "publish_tree",
    "publish_subtree",
    "unfold_to_tree",
    "SubtreeResult",
]
