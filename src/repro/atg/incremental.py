"""Incremental propagation of *base* updates into the published view.

The reverse direction of the paper's pipeline: the paper translates XML
updates down to ``ΔR``; this module keeps the DAG view synchronized when
the base database is updated directly (the paper builds on exactly this
machinery — its reference [8], "Incremental evaluation of schema-directed
XML publishing" — and notes that commercial systems of the time only
propagated base updates into *non-recursive* views).

Given a group base update ``ΔR``:

1. **diff the edge views** — for every edge view and every touched base
   tuple, the view rows referencing it before (losses) and after (gains)
   the update are computed with indexed point queries; set semantics
   dedupes overlaps;
2. **apply losses** — for every existing parent node whose parameter
   projection matches a lost row, the corresponding child edge is
   removed;
3. **apply gains to a fixpoint** — a gained edge materializes only under
   parent nodes that exist in the view; attaching a child may publish a
   new subtree whose nodes are parents for further pending gains, so
   gains are processed with a worklist until no progress (rows whose
   parents never materialize are unreachable and correctly ignored);
4. **maintain** ``M`` and ``L`` with the paper's incremental algorithms
   (Δ(M,L)insert per attachment, one Δ(M,L)delete pass for all removals,
   which also garbage-collects unreachable remains).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atg.model import ATG
from repro.atg.publisher import publish_subtree
from repro.core.maintenance import maintain_delete, maintain_insert
from repro.core.topo import TopoOrder
from repro.errors import ReproError
from repro.index import ReachabilityIndex
from repro.relational.database import Database, RelationalDelta
from repro.subscribe.delta import (
    EdgeRecord,
    NodeRecord,
    edge_records_from_delta,
    node_records_for,
)
from repro.views.registry import EdgeView, EdgeViewRegistry
from repro.views.store import ViewStore


@dataclass
class PropagationReport:
    """What a propagation pass changed in the view."""

    edges_added: list[tuple[int, int]] = field(default_factory=list)
    edges_removed: list[tuple[int, int]] = field(default_factory=list)
    nodes_created: int = 0
    nodes_collected: int = 0
    unreachable_gains: int = 0
    """Gained view rows whose parents never materialized (not published)."""

    edge_records: list[EdgeRecord] = field(default_factory=list)
    """Every edge change, typed and valued
    (:class:`~repro.subscribe.delta.EdgeRecord`): the loss removals, the
    gain attachments, and the closing GC pass.  A complete description
    of the store mutation — base updates can therefore emit fine-grained
    events, extending the subscription engine's skip/suffix pruning to
    the reverse pipeline instead of forcing full re-evaluations.  Only
    populated when the propagation ran with ``want_records=True`` (the
    updater passes it iff commit observers are attached, so
    observer-less services pay nothing)."""

    node_records: list[NodeRecord] = field(default_factory=list)
    """Interning records for the insert-edge endpoints (the replication
    side channel, :class:`~repro.subscribe.delta.NodeRecord`), captured
    *before* the closing GC pass so endpoints collected in the same
    propagation are still described.  Populated only with
    ``want_records=True``, like :attr:`edge_records`."""


def propagate_base_update(
    atg: ATG,
    registry: EdgeViewRegistry,
    db: Database,
    store: ViewStore,
    topo: TopoOrder,
    reach: ReachabilityIndex,
    delta_r: RelationalDelta,
    want_records: bool = False,
) -> PropagationReport:
    """Apply ``ΔR`` to ``db`` and synchronize the view incrementally.

    ``want_records=True`` additionally captures typed
    :attr:`PropagationReport.edge_records` for event consumers; off by
    default so observer-less updaters pay no per-edge construction cost.
    """
    report = PropagationReport()
    if not delta_r:
        return report

    # -- 1. view-row losses (pre-image) and gains (post-image) ---------------
    lost: dict[str, set[tuple]] = {}
    touched = _touched_keys(db, delta_r)
    for view in registry.views():
        lost[view.name] = _referencing_rows(view, db, touched)
    db.apply(delta_r)
    gained: dict[str, set[tuple]] = {}
    for view in registry.views():
        gained[view.name] = _referencing_rows(view, db, touched)
    for view in registry.views():
        both = lost[view.name] & gained[view.name]
        lost[view.name] -= both
        gained[view.name] -= both

    # -- 2. losses: remove edges under existing parents -----------------------
    removed_children: list[int] = []
    for view in registry.views():
        for row in sorted(lost[view.name]):
            params, child_sem = view.visible(row)
            child = store.lookup(view.child_type, child_sem)
            if child is None:
                continue
            # The edge survives if another derivation still exists.
            if view.matching_rows(db, params, child_sem):
                continue
            for parent in _matching_parents(atg, store, view, params):
                if store.remove_edge(parent, child):
                    report.edges_removed.append((parent, child))
                    removed_children.append(child)
                    if want_records:
                        # The child stays interned until the closing GC
                        # pass, so its type/value are still resolvable.
                        report.edge_records.append(EdgeRecord(
                            kind="delete",
                            parent_type=store.type_of(parent),
                            child_type=store.type_of(child),
                            parent=parent,
                            child=child,
                            child_value=store.value_of(child),
                        ))

    # -- 3. gains: attach under existing parents, to a fixpoint ----------------
    pending: list[tuple[EdgeView, tuple, tuple]] = []
    for view in registry.views():
        for row in sorted(gained[view.name]):
            params, child_sem = view.visible(row)
            pending.append((view, params, child_sem))
    progress = True
    while pending and progress:
        progress = False
        remaining: list[tuple[EdgeView, tuple, tuple]] = []
        for view, params, child_sem in pending:
            parents = _matching_parents(atg, store, view, params)
            if not parents:
                remaining.append((view, params, child_sem))
                continue
            progress = True
            subtree = publish_subtree(
                atg, db, store, view.child_type, child_sem
            )
            report.nodes_created += len(subtree.new_nodes)
            for ptype, parent, ctype, child in subtree.edges:
                if store.add_edge(parent, child):
                    report.edges_added.append((parent, child))
                    if want_records:
                        report.edge_records.append(EdgeRecord(
                            kind="insert",
                            parent_type=ptype,
                            child_type=ctype,
                            parent=parent,
                            child=child,
                            child_value=store.value_of(child),
                        ))
            attach_targets = []
            root_type = store.type_of(subtree.root)
            for parent in parents:
                if store.add_edge(parent, subtree.root):
                    report.edges_added.append((parent, subtree.root))
                    attach_targets.append(parent)
                    if want_records:
                        report.edge_records.append(EdgeRecord(
                            kind="insert",
                            parent_type=store.type_of(parent),
                            child_type=root_type,
                            parent=parent,
                            child=subtree.root,
                            child_value=store.value_of(subtree.root),
                        ))
            if attach_targets or subtree.new_nodes:
                maintain_insert(
                    store, topo, reach, subtree, attach_targets
                )
        pending = remaining
    report.unreachable_gains = len(pending)

    # Interning records must be captured while the gain endpoints are
    # still alive: the GC pass below may collect a node that one of this
    # propagation's own insert records references.
    if want_records:
        report.node_records = node_records_for(store, report.edge_records)

    # -- 4. one delete-maintenance pass for all removals -----------------------
    if removed_children:
        gc = maintain_delete(store, topo, reach, sorted(set(removed_children)))
        report.nodes_collected = len(gc.removed_nodes)
        if want_records:
            report.edge_records.extend(
                edge_records_from_delta(store, gc.gc_delta, gc.removed_info)
            )
    return report


def _touched_keys(
    db: Database, delta_r: RelationalDelta
) -> dict[str, set[tuple]]:
    """Primary keys touched per relation."""
    touched: dict[str, set[tuple]] = {}
    for op in delta_r:
        schema = db.schema(op.relation)
        touched.setdefault(op.relation, set()).add(schema.key_of(op.row))
    return touched


def _referencing_rows(
    view: EdgeView, db: Database, touched: dict[str, set[tuple]]
) -> set[tuple]:
    """View rows referencing any touched base tuple (current db state)."""
    rows: set[tuple] = set()
    for alias, (relation, _) in view.key_layout.items():
        for key in touched.get(relation, ()):
            rows.update(view.rows_referencing(db, alias, key))
    return rows


def _matching_parents(
    atg: ATG, store: ViewStore, view: EdgeView, params: tuple
) -> list[int]:
    """Existing parent nodes whose semantic attribute matches ``params``."""
    signature = atg.signature(view.parent_type)
    try:
        indexes = [signature.index(p) for p in view.param_names]
    except ValueError as exc:  # pragma: no cover - registry validates
        raise ReproError(str(exc)) from exc
    out = []
    for node, sem in store.gen.get(view.parent_type, {}).items():
        if tuple(sem[i] for i in indexes) == params:
            out.append(node)
    return sorted(out)
