"""ATG definition: DTD + per-edge semantic-attribute rules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.dtd.model import DTD, Alternation, Sequence as SeqContent, Star
from repro.errors import ATGError
from repro.relational.query import SPJQuery


class ChildRule:
    """Base class: computes the ``$B`` tuples of the B children of an A node."""

    parent: str
    child: str


@dataclass(frozen=True)
class ProjectionRule(ChildRule):
    """Sequence/alternation child: ``$B`` is a projection of ``$A``.

    ``mapping`` lists, for each column of ``$B``, the name of the parent
    column it copies (e.g. ``$cno = $course.cno`` becomes
    ``ProjectionRule('course', 'cno', ('cno',))``).
    """

    parent: str
    child: str
    mapping: tuple[str, ...]

    def project(self, parent_columns: Sequence[str], parent_sem: tuple) -> tuple:
        index = {name: i for i, name in enumerate(parent_columns)}
        try:
            return tuple(parent_sem[index[name]] for name in self.mapping)
        except KeyError as exc:
            raise ATGError(
                f"rule {self.parent}->{self.child} references unknown parent "
                f"column {exc.args[0]!r}"
            ) from None


@dataclass(frozen=True)
class QueryRule(ChildRule):
    """Starred child: ``$B ← Q($A)``.

    The SPJ query's parameters are named after columns of the parent's
    semantic attribute; its output columns define ``$B``'s signature.
    """

    parent: str
    child: str
    query: SPJQuery

    def bindings_for(
        self, parent_columns: Sequence[str], parent_sem: tuple
    ) -> dict[str, object]:
        index = {name: i for i, name in enumerate(parent_columns)}
        bindings: dict[str, object] = {}
        for param in self.query.params():
            if param not in index:
                raise ATGError(
                    f"rule {self.parent}->{self.child}: query parameter "
                    f"{param!r} is not a column of ${self.parent}"
                )
            bindings[param] = parent_sem[index[param]]
        return bindings


class ATG:
    """An attribute translation grammar ``σ : R → D``.

    Parameters
    ----------
    dtd:
        The (possibly recursive) DTD the published views conform to.
    signatures:
        For each element type, the column names of its semantic attribute
        ``$A``.  PCDATA leaves conventionally have a single column whose
        value is the element's text.
    rules:
        One :class:`ChildRule` per DTD edge ``(parent, child)``.  Starred
        children must use :class:`QueryRule`; sequence and alternation
        children must use :class:`ProjectionRule`.
    root_sem:
        The semantic attribute of the root element (usually ``()``).
    """

    def __init__(
        self,
        dtd: DTD,
        signatures: Mapping[str, Sequence[str]],
        rules: Sequence[ChildRule],
        root_sem: tuple = (),
    ):
        self.dtd = dtd
        self.signatures: dict[str, tuple[str, ...]] = {
            t: tuple(cols) for t, cols in signatures.items()
        }
        self.root_sem = tuple(root_sem)
        self.rules: dict[tuple[str, str], ChildRule] = {}
        for rule in rules:
            key = (rule.parent, rule.child)
            if key in self.rules:
                raise ATGError(f"duplicate rule for edge {key}")
            self.rules[key] = rule
        self._validate()

    def _validate(self) -> None:
        for element in self.dtd.types:
            if element not in self.signatures:
                raise ATGError(f"no semantic-attribute signature for {element!r}")
        for parent, child in self.dtd.edges():
            rule = self.rules.get((parent, child))
            if rule is None:
                raise ATGError(f"no rule for DTD edge {parent}->{child}")
            content = self.dtd.content(parent)
            if isinstance(content, Star) and not isinstance(rule, QueryRule):
                raise ATGError(
                    f"starred edge {parent}->{child} requires a QueryRule"
                )
            if isinstance(content, (SeqContent, Alternation)) and not isinstance(
                rule, ProjectionRule
            ):
                raise ATGError(
                    f"sequence edge {parent}->{child} requires a ProjectionRule"
                )
            if isinstance(rule, ProjectionRule):
                if len(rule.mapping) != len(self.signatures[child]):
                    raise ATGError(
                        f"rule {parent}->{child}: mapping arity "
                        f"{len(rule.mapping)} != ${child} arity "
                        f"{len(self.signatures[child])}"
                    )
            if isinstance(rule, QueryRule):
                if len(rule.query.project) != len(self.signatures[child]):
                    raise ATGError(
                        f"rule {parent}->{child}: query projects "
                        f"{len(rule.query.project)} columns but ${child} has "
                        f"{len(self.signatures[child])}"
                    )
        extra = set(self.rules) - set(self.dtd.edges())
        if extra:
            raise ATGError(f"rules for non-DTD edges: {sorted(extra)}")

    # -- accessors --------------------------------------------------------------

    def rule(self, parent: str, child: str) -> ChildRule:
        try:
            return self.rules[(parent, child)]
        except KeyError:
            raise ATGError(f"no rule for edge {parent}->{child}") from None

    def signature(self, element: str) -> tuple[str, ...]:
        try:
            return self.signatures[element]
        except KeyError:
            raise ATGError(f"no signature for element type {element!r}") from None

    def query_rules(self) -> list[QueryRule]:
        """All star-child rules, in deterministic order."""
        return sorted(
            (r for r in self.rules.values() if isinstance(r, QueryRule)),
            key=lambda r: (r.parent, r.child),
        )

    @property
    def root(self) -> str:
        return self.dtd.root
