"""Benchmark harness regenerating the paper's tables and figures.

:mod:`repro.bench.experiments` has one function per paper artifact
(Fig. 10(b), Fig. 11(a)–(h), Table 1) plus the ablations; each returns
structured rows and can print them in the paper's layout.  The
``benchmarks/`` directory wires them into pytest-benchmark;
``python -m repro.bench`` runs everything standalone and prints the
report used to fill EXPERIMENTS.md.
"""

from repro.bench.harness import PhaseAccumulator, format_table
from repro.bench.experiments import (
    ablation_chain_depth,
    ablation_dag_vs_tree,
    ablation_minimal_delete,
    ablation_reach,
    fig10b_dataset_stats,
    fig11_series,
    fig11g_vary_selectivity,
    fig11h_vary_subtree,
    table1_incremental_vs_recompute,
)

__all__ = [
    "PhaseAccumulator",
    "format_table",
    "fig10b_dataset_stats",
    "fig11_series",
    "fig11g_vary_selectivity",
    "fig11h_vary_subtree",
    "table1_incremental_vs_recompute",
    "ablation_reach",
    "ablation_chain_depth",
    "ablation_dag_vs_tree",
    "ablation_minimal_delete",
]
