"""One function per paper artifact (see DESIGN.md §3 for the index).

Each function is pure measurement: it builds its dataset(s), runs the
workload, and returns structured rows; ``print_report=True`` renders the
paper-shaped table.  Absolute numbers are environment-bound; the *shape*
(linearity, class ordering, crossovers) is what EXPERIMENTS.md compares
against the paper.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.baselines.naive_reach import squaring_reachability
from repro.baselines.recompute import recompute_structures
from repro.baselines.tree_updater import TreeUpdater
from repro.bench.harness import PhaseAccumulator, format_table
from repro.core.reachability import compute_reach
from repro.core.topo import TopoOrder
from repro.index import BACKENDS, build_index
from repro.ops import DeleteOp, InsertOp
from repro.service import ViewConfig, ViewService, open_view
from repro.relview.delete import expand_view_deletions, translate_deletions
from repro.relview.minimal import minimal_deletion_exact, minimal_deletion_greedy
from repro.workloads.queries import make_workload
from repro.workloads.synthetic import SyntheticConfig, build_synthetic

DEFAULT_SIZES = (300, 1000, 3000)
CLASSES = ("W1", "W2", "W3")


def _updater_for(
    n_c: int, seed: int = 42, index_backend: str = "auto"
) -> tuple[ViewService, object]:
    dataset = build_synthetic(SyntheticConfig(n_c=n_c, seed=seed))
    service = open_view(
        dataset.atg,
        dataset.db,
        config=ViewConfig(
            side_effects="propagate",
            strict=False,
            sat_solver="auto",
            index_backend=index_backend,
        ),
    )
    return service, dataset


# ---------------------------------------------------------------------------
# Fig. 10(b): dataset statistics
# ---------------------------------------------------------------------------


def fig10b_dataset_stats(
    sizes: Sequence[int] = DEFAULT_SIZES, print_report: bool = True
) -> list[dict]:
    """#C subtrees vs DAG size, |M|, |L|, sharing rate per |C|."""
    rows = []
    for n_c in sizes:
        updater, dataset = _updater_for(n_c)
        store = updater.store
        cnodes = [n for n in store.nodes() if store.type_of(n) == "cnode"]
        shared = sum(1 for n in cnodes if store.in_degree(n) > 1)
        tree_nodes = None
        if n_c <= 300:
            try:
                tree_nodes = TreeUpdater(
                    dataset.atg, dataset.db, max_nodes=2_000_000
                ).size
            except Exception:
                tree_nodes = None
        rows.append(
            {
                "C": n_c,
                "published_c": len(cnodes),
                "dag_nodes": store.num_nodes,
                "dag_edges": store.num_edges,
                "tree_nodes": tree_nodes,
                "shared_c_pct": 100.0 * shared / max(1, len(cnodes)),
                "M_pairs": len(updater.reach),
                "L_len": len(updater.topo),
            }
        )
    if print_report:
        print(
            format_table(
                ["|C|", "#C-nodes", "DAG nodes", "DAG edges", "tree nodes",
                 "shared C %", "|M|", "|L|"],
                [
                    [r["C"], r["published_c"], r["dag_nodes"], r["dag_edges"],
                     r["tree_nodes"] if r["tree_nodes"] is not None else "-",
                     round(r["shared_c_pct"], 1), r["M_pairs"], r["L_len"]]
                    for r in rows
                ],
                title="Fig. 10(b): dataset statistics",
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 11(a)-(f): update performance vs database size
# ---------------------------------------------------------------------------


def fig11_series(
    kind: str,
    classes: Sequence[str] = CLASSES,
    sizes: Sequence[int] = DEFAULT_SIZES,
    ops_per_class: int = 10,
    print_report: bool = True,
) -> list[dict]:
    """Fig. 11(a)-(c) (kind='delete') / (d)-(f) (kind='insert').

    Per (class, |C|): summed phase times over the class's operations,
    broken into (a) XPath evaluation, (b) translation+execution,
    (c) maintenance — the paper's three constituents.
    """
    rows = []
    for cls in classes:
        for n_c in sizes:
            updater, dataset = _updater_for(n_c)
            ops = make_workload(dataset, kind, cls, count=ops_per_class)
            acc = PhaseAccumulator()
            for op in ops:
                acc.add(updater.apply(op))
            row = {"class": cls, "C": n_c, "kind": kind, **acc.as_row()}
            rows.append(row)
    if print_report:
        label = "deletion" if kind == "delete" else "insertion"
        print(
            format_table(
                ["class", "|C|", "(a) xpath", "(b) translate", "(c) maintain",
                 "total", "ops", "accepted"],
                [
                    [r["class"], r["C"], r["xpath_s"], r["translate_s"],
                     r["maintain_s"], r["total_s"], r["ops"], r["accepted"]]
                    for r in rows
                ],
                title=f"Fig. 11 ({label}s): runtime vs |C| per workload class",
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 11(g): varying |r[[p]]| / |Ep(r)|
# ---------------------------------------------------------------------------


def fig11g_vary_selectivity(
    n_c: int = 1000,
    fanouts: Sequence[int] = (1, 2, 4, 8),
    print_report: bool = True,
) -> list[dict]:
    """Runtime as the number of selected nodes grows, fixed |C| and ST.

    Deletions: |Ep(r)| grows; insertions: |r[[p]]| grows.  The paths use
    a disjunctive filter matching ``fanout`` distinct keys.
    """
    rows = []
    for kind in ("delete", "insert"):
        for fanout in fanouts:
            updater, dataset = _updater_for(n_c)
            if kind == "delete":
                # A shared cnode with ≥ fanout parents: deleting it from
                # //sub yields |Ep(r)| ≈ its in-degree.
                key = _key_with_indegree(updater, fanout)
                if key is None:
                    continue
                path = f"//sub/cnode[key={key}]"
                outcome = updater.apply(DeleteOp(path))
                selected = outcome.stats.get("ep_edges", 0)
            else:
                keys = _keys_with_children(updater, dataset, fanout)
                if len(keys) < fanout:
                    continue
                filt = " or ".join(f"key={k}" for k in keys[:fanout])
                child_key = _existing_key(dataset)
                row_c = dataset.db.table("C").get((child_key,))
                path = f"//cnode[{filt}]/sub"
                outcome = updater.apply(
                    InsertOp(path, "cnode", (child_key, row_c[4]))
                )
                selected = len(outcome.targets)
            acc = PhaseAccumulator()
            acc.add(outcome)
            rows.append(
                {
                    "kind": kind,
                    "fanout": fanout,
                    "selected": selected,
                    "accepted": outcome.accepted,
                    **acc.as_row(),
                }
            )
    if print_report:
        print(
            format_table(
                ["kind", "fanout", "|r[[p]]|", "xpath", "translate",
                 "maintain", "ok"],
                [
                    [r["kind"], r["fanout"], r["selected"], r["xpath_s"],
                     r["translate_s"], r["maintain_s"], r["accepted"]]
                    for r in rows
                ],
                title="Fig. 11(g): varying |r[[p]]| / |Ep(r)| at fixed |C|",
            )
        )
    return rows


def _keys_with_children(updater, dataset, want: int) -> list[int]:
    """Keys of published cnodes that have sub-children, layer-0 first."""
    store = updater.store
    out = []
    for node in sorted(store.nodes()):
        if store.type_of(node) != "sub":
            continue
        if store.children_of(node):
            out.append(store.sem_of(node)[0])
        if len(out) >= want * 3:
            break
    return out


def _key_with_indegree(updater, want: int) -> int | None:
    """Key of a published cnode with at least ``want`` sub-parents.

    Falls back to the highest-in-degree cnode when no node reaches the
    requested fan-in.
    """
    store = updater.store
    candidates: list[tuple[int, int]] = []  # (degree, key)
    for node in sorted(store.nodes()):
        if store.type_of(node) != "cnode":
            continue
        degree = sum(
            1 for p in store.parents_of(node) if store.type_of(p) == "sub"
        )
        if degree >= 1:
            candidates.append((degree, store.sem_of(node)[0]))
    if not candidates:
        return None
    # Exact fan-in when available, else the closest from above, else the
    # largest available.
    exact = [k for d, k in candidates if d == want]
    if exact:
        return exact[0]
    above = sorted((d, k) for d, k in candidates if d > want)
    if above:
        return above[0][1]
    return max(candidates)[1]


def _existing_key(dataset) -> int:
    """A bottom-layer (leaf) key: tiny ST(A,t), no cycle risk."""
    return max(dataset.passing)


# ---------------------------------------------------------------------------
# Fig. 11(h): varying |ST(A, t)|
# ---------------------------------------------------------------------------


def fig11h_vary_subtree(
    n_c: int = 1000,
    print_report: bool = True,
) -> list[dict]:
    """Runtime vs size of the inserted subtree, |r[[p]]| = |Ep(r)| = 1.

    Inserting an existing cnode whose subtree hangs deeper in the layer
    hierarchy yields progressively larger ``ST(A, t)`` — layer-7 nodes
    are leaves (small ST), layer-1 nodes root large subtree DAGs.
    """
    rows = []
    updater, dataset = _updater_for(n_c)
    layers = dataset.config.layers
    store = updater.store
    by_layer: dict[int, list[int]] = {}
    for node in sorted(store.nodes()):
        if store.type_of(node) != "cnode":
            continue
        key = store.sem_of(node)[0]
        by_layer.setdefault(dataset.layer_of[key], []).append(key)
    target_key = None
    # One fixed shallow insertion point (a layer-0 sub with children).
    for node in sorted(store.nodes()):
        if store.type_of(node) == "sub" and dataset.layer_of[
            store.sem_of(node)[0]
        ] == 0:
            target_key = store.sem_of(node)[0]
            break
    assert target_key is not None
    for layer in range(layers - 1, 0, -1):
        keys = by_layer.get(layer, [])
        if not keys:
            continue
        key = keys[0]
        row_c = dataset.db.table("C").get((key,))
        updater_fresh, dataset_fresh = _updater_for(n_c)
        outcome = updater_fresh.apply(
            InsertOp(f"cnode[key={target_key}]/sub", "cnode", (key, row_c[4]))
        )
        acc = PhaseAccumulator()
        acc.add(outcome)
        rows.append(
            {
                "layer": layer,
                "st_nodes": outcome.stats.get("subtree_nodes", 0),
                "st_edges": outcome.stats.get("subtree_edges", 0),
                "accepted": outcome.accepted,
                **acc.as_row(),
            }
        )
    if print_report:
        print(
            format_table(
                ["layer", "|ST| nodes", "|ST| edges", "xpath", "translate",
                 "maintain", "ok"],
                [
                    [r["layer"], r["st_nodes"], r["st_edges"], r["xpath_s"],
                     r["translate_s"], r["maintain_s"], r["accepted"]]
                    for r in rows
                ],
                title="Fig. 11(h): varying |ST(A,t)| at |r[[p]]|=1",
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table 1: incremental maintenance vs recomputation
# ---------------------------------------------------------------------------


def table1_incremental_vs_recompute(
    sizes: Sequence[int] = DEFAULT_SIZES,
    ops: int = 5,
    print_report: bool = True,
) -> list[dict]:
    """Maintenance seconds (incremental insert / delete) vs recompute."""
    rows = []
    for n_c in sizes:
        updater, dataset = _updater_for(n_c)
        ins = make_workload(dataset, "insert", "W2", count=ops)
        inc_insert = 0.0
        for op in ins:
            outcome = updater.apply(op)
            inc_insert += outcome.timings.get("maintain", 0.0)
        dels = make_workload(dataset, "delete", "W2", count=ops)
        inc_delete = 0.0
        for op in dels:
            outcome = updater.apply(op)
            inc_delete += outcome.timings.get("maintain", 0.0)
        timings = recompute_structures(updater.store)
        rows.append(
            {
                "C": n_c,
                "incremental_insert_s": inc_insert,
                "incremental_delete_s": inc_delete,
                "recompute_L_s": timings.topo_seconds * ops,
                "recompute_M_s": timings.reach_seconds * ops,
            }
        )
    if print_report:
        print(
            format_table(
                ["|C|", "incr insert", "incr delete", "recompute L",
                 "recompute M"],
                [
                    [r["C"], r["incremental_insert_s"],
                     r["incremental_delete_s"], r["recompute_L_s"],
                     r["recompute_M_s"]]
                    for r in rows
                ],
                title=f"Table 1: incremental vs recomputation ({ops} ops)",
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------


def ablation_reach(
    sizes: Sequence[int] = (300, 1000), print_report: bool = True
) -> list[dict]:
    """A-1: Algorithm Reach vs semi-naive transitive closure."""
    rows = []
    for n_c in sizes:
        updater, _ = _updater_for(n_c)
        store = updater.store
        t0 = time.perf_counter()
        topo = TopoOrder.from_store(store)
        reach = compute_reach(store, topo)
        t1 = time.perf_counter()
        squared = squaring_reachability(store)
        t2 = time.perf_counter()
        assert reach.equals(squared)
        rows.append(
            {
                "C": n_c,
                "reach_s": t1 - t0,
                "squaring_s": t2 - t1,
                "pairs": len(reach),
            }
        )
    if print_report:
        print(
            format_table(
                ["|C|", "Reach (s)", "semi-naive (s)", "|M|"],
                [[r["C"], r["reach_s"], r["squaring_s"], r["pairs"]] for r in rows],
                title="A-1: Algorithm Reach vs semi-naive closure",
            )
        )
    return rows


def ablation_index_backends(
    sizes: Sequence[int] = (300, 1000),
    ops: int = 5,
    print_report: bool = True,
) -> list[dict]:
    """A-5: reachability-index backends (sets vs bitset rows).

    Per |C| and backend: Algorithm Reach build time, maintenance time
    over a W1–W3 deletion workload, and the resulting |M| (identical by
    construction — the cross-backend tests enforce it).
    """
    rows = []
    for n_c in sizes:
        for backend in sorted(BACKENDS):
            updater, dataset = _updater_for(n_c, index_backend=backend)
            t0 = time.perf_counter()
            reach = build_index(updater.store, updater.topo, backend)
            t1 = time.perf_counter()
            maintain = 0.0
            for cls in CLASSES:
                for op in make_workload(dataset, "delete", cls, count=ops):
                    outcome = updater.apply(op)
                    maintain += outcome.timings.get("maintain", 0.0)
            rows.append(
                {
                    "C": n_c,
                    "backend": backend,
                    "reach_s": t1 - t0,
                    "maintain_s": maintain,
                    "pairs": len(reach),
                }
            )
    if print_report:
        print(
            format_table(
                ["|C|", "backend", "Reach (s)", "maintain (s)", "|M|"],
                [
                    [r["C"], r["backend"], r["reach_s"], r["maintain_s"],
                     r["pairs"]]
                    for r in rows
                ],
                title="A-5: reachability-index backends",
            )
        )
    return rows


def ablation_dag_vs_tree(
    sizes: Sequence[int] = (100, 300, 1000),
    path: str = "//cnode[key=7]//cnode",
    print_report: bool = True,
) -> list[dict]:
    """A-2: DAG evaluation vs uncompressed-tree evaluation."""
    rows = []
    for n_c in sizes:
        updater, dataset = _updater_for(n_c)
        t0 = time.perf_counter()
        dag_result = updater.xpath(path)
        t1 = time.perf_counter()
        try:
            tree = TreeUpdater(dataset.atg, dataset.db, max_nodes=2_000_000)
            t2 = time.perf_counter()
            tree_nodes = tree.evaluate(path)
            t3 = time.perf_counter()
            tree_size_val: object = tree.size
            tree_publish = t2 - t1
            tree_eval = t3 - t2
            tree_hits = len(tree_nodes)
        except Exception:
            # The unfolded tree blew past the node budget: the paper's
            # "at times even exponentially smaller" claim in action.
            tree_size_val = ">2M (blowup)"
            tree_publish = float("nan")
            tree_eval = float("nan")
            tree_hits = -1
        rows.append(
            {
                "C": n_c,
                "dag_nodes": updater.store.num_nodes,
                "tree_nodes": tree_size_val,
                "dag_eval_s": t1 - t0,
                "tree_publish_s": tree_publish,
                "tree_eval_s": tree_eval,
                "dag_hits": len(dag_result.targets),
                "tree_hits": tree_hits,
            }
        )
    if print_report:
        print(
            format_table(
                ["|C|", "DAG nodes", "tree nodes", "DAG eval", "tree eval",
                 "tree publish"],
                [
                    [r["C"], r["dag_nodes"], r["tree_nodes"], r["dag_eval_s"],
                     r["tree_eval_s"], r["tree_publish_s"]]
                    for r in rows
                ],
                title="A-2: DAG vs uncompressed tree",
            )
        )
    return rows


def ablation_chain_depth(
    depths: Sequence[int] = (50, 150, 300), print_report: bool = True
) -> list[dict]:
    """A-4: sensitivity to recursion depth (prerequisite chains)."""
    from repro.workloads.chains import build_chain

    rows = []
    for depth in depths:
        atg, db = build_chain(depth=depth, students=1)
        t0 = time.perf_counter()
        updater = open_view(
            atg, db,
            config=ViewConfig(side_effects="propagate", strict=False),
        )
        t1 = time.perf_counter()
        result = updater.xpath(f"//course[cno=K{depth - 1:04d}]")
        t2 = time.perf_counter()
        outcome = updater.apply(DeleteOp(
            f"//course[cno=K{max(0, depth - 2):04d}]//student[ssn=T000]"
        ))
        rows.append(
            {
                "depth": depth,
                "build_s": t1 - t0,
                "deep_query_s": t2 - t1,
                "deep_update_s": outcome.total_time,
                "M_pairs": len(updater.reach),
                "hit": len(result.targets),
            }
        )
    if print_report:
        print(
            format_table(
                ["depth", "build (s)", "deep query (s)", "deep update (s)",
                 "|M|"],
                [
                    [r["depth"], r["build_s"], r["deep_query_s"],
                     r["deep_update_s"], r["M_pairs"]]
                    for r in rows
                ],
                title="A-4: recursion-depth sensitivity (chains)",
            )
        )
    return rows


def ablation_minimal_delete(
    n_c: int = 300, ops: int = 5, print_report: bool = True
) -> list[dict]:
    """A-3: Algorithm delete vs minimal deletion (greedy and exact)."""
    updater, dataset = _updater_for(n_c)
    dels = make_workload(dataset, "delete", "W2", count=ops)
    rows = []
    for op in dels:
        result = updater.xpath(op.path)
        if not result.targets:
            continue
        from repro.core.translate import xdelete

        delta_v = xdelete(updater.store, result)
        deletions = expand_view_deletions(
            updater.registry, updater.store, updater.db, delta_v
        )
        t0 = time.perf_counter()
        plan = translate_deletions(updater.registry, updater.db, deletions)
        t1 = time.perf_counter()
        greedy = minimal_deletion_greedy(updater.registry, updater.db, deletions)
        t2 = time.perf_counter()
        try:
            exact = minimal_deletion_exact(
                updater.registry, updater.db, deletions
            )
            exact_n = len(exact) if exact is not None else -1
        except ValueError:
            exact = None
            exact_n = -1
        t3 = time.perf_counter()
        rows.append(
            {
                "path": op.path,
                "algorithm_delete_n": len(plan.delta_r),
                "greedy_n": len(greedy) if greedy is not None else -1,
                "exact_n": exact_n,
                "algorithm_delete_s": t1 - t0,
                "greedy_s": t2 - t1,
                "exact_s": t3 - t2,
            }
        )
    if print_report:
        print(
            format_table(
                ["|ΔR| alg.delete", "|ΔR| greedy", "|ΔR| exact",
                 "alg (s)", "greedy (s)", "exact (s)"],
                [
                    [r["algorithm_delete_n"], r["greedy_n"], r["exact_n"],
                     r["algorithm_delete_s"], r["greedy_s"], r["exact_s"]]
                    for r in rows
                ],
                title="A-3: Algorithm delete vs minimal deletion",
            )
        )
    return rows
