"""Standalone benchmark report: ``python -m repro.bench [--quick] [--csv DIR]``.

Regenerates every paper artifact (Fig. 10(b), Fig. 11(a)-(h), Table 1)
plus the ablations, printing paper-shaped tables.  ``--quick`` shrinks
sizes for CI smoke runs; ``--csv DIR`` additionally writes one CSV per
experiment into ``DIR`` (for external plotting).

``repro-bench generate ...`` is a subcommand: it dispatches to the
workload generator (:mod:`repro.bench.workload_gen`), emitting a
reproducible op-stream JSONL with a provenance header — see
``docs/observability.md``.
"""

from __future__ import annotations

import csv
import pathlib
import sys


def _write_csv(directory: str | None, name: str, rows: list[dict]) -> None:
    if directory is None or not rows:
        return
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(path / f"{name}.csv", "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def main(argv: list[str] | None = None) -> int:
    if argv is None:  # console-script entry point
        argv = sys.argv[1:]
    if argv and argv[0] == "generate":
        from repro.bench.workload_gen import main as generate_main

        return generate_main(argv[1:])
    from repro.bench.experiments import (
        ablation_chain_depth,
        ablation_dag_vs_tree,
        ablation_index_backends,
        ablation_minimal_delete,
        ablation_reach,
        fig10b_dataset_stats,
        fig11_series,
        fig11g_vary_selectivity,
        fig11h_vary_subtree,
        table1_incremental_vs_recompute,
    )

    quick = "--quick" in argv
    csv_dir = None
    if "--csv" in argv:
        index = argv.index("--csv")
        if index + 1 >= len(argv):
            print("--csv requires a directory argument", file=sys.stderr)
            return 2
        csv_dir = argv[index + 1]
    sizes = (100, 300) if quick else (300, 1000, 3000)
    ops = 3 if quick else 10

    print("=" * 72)
    _write_csv(csv_dir, "fig10b", fig10b_dataset_stats(sizes))
    print()
    _write_csv(
        csv_dir, "fig11_deletions",
        fig11_series("delete", sizes=sizes, ops_per_class=ops),
    )
    print()
    _write_csv(
        csv_dir, "fig11_insertions",
        fig11_series("insert", sizes=sizes, ops_per_class=ops),
    )
    print()
    _write_csv(csv_dir, "fig11g", fig11g_vary_selectivity(n_c=sizes[-1]))
    print()
    _write_csv(csv_dir, "fig11h", fig11h_vary_subtree(n_c=sizes[-1]))
    print()
    _write_csv(
        csv_dir, "table1",
        table1_incremental_vs_recompute(sizes=sizes, ops=max(3, ops // 2)),
    )
    print()
    _write_csv(csv_dir, "ablation_reach", ablation_reach(sizes=sizes[:2]))
    print()
    _write_csv(
        csv_dir,
        "ablation_index_backends",
        ablation_index_backends(sizes=sizes[:2], ops=max(3, ops // 2)),
    )
    print()
    _write_csv(
        csv_dir, "ablation_dag_vs_tree", ablation_dag_vs_tree(sizes=sizes[:2])
    )
    print()
    _write_csv(
        csv_dir, "ablation_minimal_delete",
        ablation_minimal_delete(n_c=sizes[0]),
    )
    print()
    depths = (30, 80) if quick else (50, 150, 300)
    _write_csv(csv_dir, "ablation_chain_depth", ablation_chain_depth(depths))
    print("=" * 72)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
