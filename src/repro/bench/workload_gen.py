"""Scale-parameterized workload generation: ``repro-bench generate``.

Every benchmark and soak run used to hand-roll its own op stream; this
module makes workloads first-class *artifacts* instead (modeled on the
adaptive-hashmap-studio workload inventory — scale-parameterized files
whose provenance rides with the data).  A generated stream is JSONL:

- line 1 is a **provenance header** — a JSON object whose
  ``"workload_stream"`` key carries the format version, plus the seed,
  the full parameter set, the generating command line and the library
  version.  ``python -m repro.apply`` recognizes and consumes the
  header; :func:`regenerate_from_header` rebuilds the *entire* stream
  byte-for-byte from nothing but this line, so any artifact on disk is
  reproducible from its own first record;
- every following line is one typed operation of :mod:`repro.ops`
  (``insert`` / ``delete`` / ``replace``), directly consumable by
  ``python -m repro.apply`` and ``service.apply``.

Tunable axes (all recorded in the header):

- **scale** — the dataset (``synthetic[:n_c[:seed]]``) and the op count;
- **key skew** — a Zipf(s) distribution over live target keys
  (``--key-skew 0`` is uniform; 1.2 is a heavy hot-set);
- **read/write ratio and subscriptions** — the header carries derived
  XPath ``queries`` and ``subscriptions`` lists so a soak/bench harness
  can stand up readers and standing subscriptions matching the stream
  (the op lines stay pure writes: the apply CLI has no read op);
- **batch shape** — ``batch_size`` tells the harness how many
  consecutive ops to group per ``service.batch()`` session;
- **adversarial patterns** — named generators stressing a specific
  subsystem (:data:`PATTERNS`): ``deep_chain`` (ever-deeper insertion
  chains — recursion depth, |M| growth), ``dense_dag`` (sharing inserts
  onto a popular hot-set — DAG density, closure fan-out), ``churn``
  (insert/delete cycling — GC, id reuse, WAL growth), ``replace_storm``
  (delete+re-attach composites on skewed targets), and the default
  ``mixed`` blend.

Determinism is a hard contract (golden-tested): one shared
:class:`random.Random`, sorted containers everywhere, no dict-order or
hash dependence — the same header always yields the same bytes.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from bisect import bisect_left
from dataclasses import asdict, dataclass, fields
from typing import Iterator, TextIO

from repro.errors import ReproError
from repro.workloads.queries import make_query_set
from repro.workloads.synthetic import SyntheticConfig, build_synthetic

#: Format version of the provenance header (bump on layout changes).
STREAM_VERSION = 1

#: The named op-stream shapes the generator understands.
PATTERNS = ("mixed", "deep_chain", "dense_dag", "churn", "replace_storm")

#: New keys start this far above the dataset's key space, so generated
#: inserts never collide with seeded C keys.
NEW_KEY_OFFSET = 5000

#: ``deep_chain`` restarts from a fresh anchor after this many links
#: (unbounded chains would make every later op depend on one node).
CHAIN_RESTART = 12

#: ``churn`` deletes the oldest of its own inserts once this many are
#: outstanding (keeps the live set near-constant while ids cycle).
CHURN_LAG = 8


@dataclass(frozen=True)
class WorkloadSpec:
    """Every knob of one generated stream (the header's ``params``)."""

    workload: str = "synthetic:300"
    ops: int = 100
    seed: int = 42
    pattern: str = "mixed"
    key_skew: float = 0.0
    read_ratio: float = 0.0
    batch_size: int = 1
    subscriptions: int = 0
    new_key_fraction: float = 0.2

    def __post_init__(self):
        if self.ops < 0:
            raise ReproError(f"ops must be >= 0, got {self.ops!r}")
        if self.pattern not in PATTERNS:
            raise ReproError(
                f"pattern must be one of {PATTERNS}, got {self.pattern!r}"
            )
        if self.key_skew < 0:
            raise ReproError(
                f"key_skew must be >= 0, got {self.key_skew!r}"
            )
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ReproError(
                f"read_ratio must be in [0, 1], got {self.read_ratio!r}"
            )
        if self.batch_size < 1:
            raise ReproError(
                f"batch_size must be >= 1, got {self.batch_size!r}"
            )
        if self.subscriptions < 0:
            raise ReproError(
                f"subscriptions must be >= 0, got {self.subscriptions!r}"
            )
        if not 0.0 <= self.new_key_fraction <= 1.0:
            raise ReproError(
                f"new_key_fraction must be in [0, 1], "
                f"got {self.new_key_fraction!r}"
            )

    def to_dict(self) -> dict:
        """JSON-safe form (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkloadSpec":
        """Decode :meth:`to_dict` output; unknown keys raise."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ReproError(f"unknown WorkloadSpec field(s): {unknown}")
        return cls(**payload)


def parse_header_line(line: str) -> dict | None:
    """The provenance header, if ``line`` is one; ``None`` otherwise.

    A header is a JSON object carrying the ``"workload_stream"`` key.
    Anything else — op lines, malformed JSON — returns ``None`` so
    callers fall through to their normal per-line handling.
    """
    stripped = line.strip()
    if not stripped.startswith("{") or '"workload_stream"' not in stripped:
        return None
    try:
        payload = json.loads(stripped)
    except ValueError:
        return None
    if isinstance(payload, dict) and "workload_stream" in payload:
        return payload
    return None


class _Zipf:
    """Zipf(s) rank sampling with a cached CDF.

    ``pick(rng, n)`` returns a rank in ``[0, n)``; rank 0 is the
    hottest.  The CDF is recomputed only when ``n`` changes (the live
    key set grows/shrinks by one per churn op), keeping generation
    O(ops · log n) amortized.
    """

    def __init__(self, s: float):
        self.s = s
        self._n = -1
        self._cdf: list[float] = []

    def pick(self, rng, n: int) -> int:
        if n <= 1:
            return 0
        if self.s <= 0.0:
            return rng.randrange(n)
        if n != self._n:
            total = 0.0
            cdf = []
            for rank in range(n):
                total += 1.0 / (rank + 1) ** self.s
                cdf.append(total)
            self._n, self._cdf = n, cdf
        point = rng.random() * self._cdf[-1]
        return min(bisect_left(self._cdf, point), n - 1)


class _StreamState:
    """Mutable generation state shared by all pattern generators."""

    def __init__(self, spec: WorkloadSpec, dataset):
        import random

        from repro.core.updater import XMLViewUpdater

        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.zipf = _Zipf(spec.key_skew)
        self.sim = XMLViewUpdater(dataset.atg, dataset.db, strict=False)
        """A shadow of the view the stream targets.  Every emitted op is
        applied here before the next one is generated, so the live-key
        pool tracks what the consumer's view will actually contain —
        ``dataset.passing`` over-approximates it (a passing key with no
        surviving ancestor chain never materializes as a ``cnode``),
        and deletes cascade to unshared descendants the generator could
        not otherwise see."""
        self.alive = self._keys_in_view()
        """Live C keys, kept sorted (zipf rank 0 = first key — stable,
        deterministic hot set); refreshed from :attr:`sim` per op."""
        self.payloads = {}
        """Payload strings of keys *this stream* introduced (seeded keys
        read theirs from the dataset)."""
        self._dataset = dataset
        self.next_new = dataset.config.n_c + NEW_KEY_OFFSET

    def _keys_in_view(self) -> list[int]:
        """Keys of every ``cnode`` the published view currently shows."""
        result = self.sim.evaluate_xpath("//cnode")
        sem = self.sim.store.node_sem
        return sorted(sem[node][0] for node in result.targets)

    def advance(self, op: dict) -> bool:
        """Apply ``op`` to the shadow view and refresh the key pool.

        Returns whether the shadow accepted it.  Rejected candidates
        (e.g. a sharing insert that would close a cycle) are *dropped*
        from the stream — every emitted op applies cleanly against a
        fresh view, which is what makes soak/bench accounting exact —
        and the refresh keeps later ops aimed at nodes that exist.
        """
        from repro.ops import op_from_dict

        outcome = self.sim.apply_op(op_from_dict(op))
        self.alive = self._keys_in_view()
        if not self.alive:
            raise ReproError(
                "workload generation emptied the view of cnode keys; "
                "use a larger dataset or fewer destructive ops"
            )
        return outcome.accepted

    def payload_of(self, key: int) -> str:
        if key in self.payloads:
            return self.payloads[key]
        row = self._dataset.db.table("C").get((key,))
        return row[4] if row is not None else f"w{key}"

    def pick_key(self) -> int:
        """A zipf-skewed live key."""
        return self.alive[self.zipf.pick(self.rng, len(self.alive))]

    def fresh_key(self, index: int) -> int:
        key = self.next_new
        self.next_new += 1
        self.payloads[key] = f"w{index}"
        return key

    def add_alive(self, key: int) -> None:
        if not self.alive or self.alive[-1] < key:
            self.alive.append(key)
        else:
            position = bisect_left(self.alive, key)
            if position >= len(self.alive) or self.alive[position] != key:
                self.alive.insert(position, key)

    def drop_alive(self, key: int) -> None:
        position = bisect_left(self.alive, key)
        if position < len(self.alive) and self.alive[position] == key:
            del self.alive[position]

    # -- op constructors ----------------------------------------------------------

    def insert_under(self, parent: int, child: int) -> dict:
        return {
            "op": "insert",
            "path": f"//cnode[key={parent}]/sub",
            "element": "cnode",
            "sem": [child, self.payload_of(child)],
        }

    def delete_key(self, key: int) -> dict:
        self.drop_alive(key)
        return {"op": "delete", "path": f"//cnode[key={key}]"}

    def replace_key(self, key: int, replacement: int) -> dict:
        self.drop_alive(key)
        self.add_alive(replacement)
        return {
            "op": "replace",
            "path": f"//cnode[key={key}]",
            "element": "cnode",
            "sem": [replacement, self.payload_of(replacement)],
        }


def _ops_mixed(state: _StreamState) -> Iterator[dict]:
    spec, rng = state.spec, state.rng
    for index in itertools.count():
        roll = rng.random()
        target = state.pick_key()
        if roll < 0.45:
            if rng.random() < spec.new_key_fraction:
                child = state.fresh_key(index)
                state.add_alive(child)
            else:
                child = state.pick_key()
            yield state.insert_under(target, child)
        elif roll < 0.70:
            yield state.delete_key(target)
        else:
            if rng.random() < spec.new_key_fraction:
                replacement = state.fresh_key(index)
            else:
                replacement = state.pick_key()
            yield state.replace_key(target, replacement)


def _ops_deep_chain(state: _StreamState) -> Iterator[dict]:
    tip: int | None = None
    for index in itertools.count():
        if tip is None or index % CHAIN_RESTART == 0:
            tip = state.pick_key()
        child = state.fresh_key(index)
        state.add_alive(child)
        yield state.insert_under(tip, child)
        tip = child


def _ops_dense_dag(state: _StreamState) -> Iterator[dict]:
    # Share a small hot set of children under many parents: every op
    # adds an edge, few ops add nodes — density climbs, GC never runs.
    rng = state.rng
    hot = state.alive[: max(4, len(state.alive) // 16)]
    for index in itertools.count():
        child = hot[state.zipf.pick(rng, len(hot))]
        parent = state.pick_key()
        if parent == child:
            parent = state.alive[
                (bisect_left(state.alive, child) + 1) % len(state.alive)
            ]
        yield state.insert_under(parent, child)


def _ops_churn(state: _StreamState) -> Iterator[dict]:
    outstanding: list[int] = []
    for index in itertools.count():
        if len(outstanding) >= CHURN_LAG:
            yield state.delete_key(outstanding.pop(0))
            continue
        child = state.fresh_key(index)
        state.add_alive(child)
        outstanding.append(child)
        yield state.insert_under(state.pick_key(), child)


def _ops_replace_storm(state: _StreamState) -> Iterator[dict]:
    for index in itertools.count():
        target = state.pick_key()
        if state.rng.random() < max(state.spec.new_key_fraction, 0.5):
            replacement = state.fresh_key(index)
        else:
            replacement = state.pick_key()
        yield state.replace_key(target, replacement)


_PATTERN_FNS = {
    "mixed": _ops_mixed,
    "deep_chain": _ops_deep_chain,
    "dense_dag": _ops_dense_dag,
    "churn": _ops_churn,
    "replace_storm": _ops_replace_storm,
}


def _resolve_dataset(workload: str):
    head, _, rest = workload.partition(":")
    if head != "synthetic":
        raise ReproError(
            f"the workload generator targets the synthetic evaluation "
            f"dataset; got {workload!r} (use synthetic[:n_c[:seed]])"
        )
    args = [a for a in rest.split(":") if a] if rest else []
    try:
        n_c = int(args[0]) if args else 300
        seed = int(args[1]) if len(args) > 1 else 42
    except ValueError:
        raise ReproError(
            f"bad numeric parameter in workload name {workload!r}"
        ) from None
    return build_synthetic(SyntheticConfig(n_c=n_c, seed=seed))




def make_header(spec: WorkloadSpec, argv: list[str] | None = None) -> dict:
    """The provenance header record for ``spec``.

    Carries everything :func:`regenerate_from_header` needs (the
    ``params``), plus pure provenance — the generating command line and
    library version — and the derived read-side artifacts: the XPath
    ``queries`` a harness should issue as reads (scaled by
    ``read_ratio``) and the ``subscriptions`` it should keep standing.
    """
    from repro import __version__

    dataset = _resolve_dataset(spec.workload)
    derived = max(spec.subscriptions, 4 if spec.read_ratio > 0 else 0)
    paths = make_query_set(dataset, count=derived, seed=spec.seed)
    return {
        "workload_stream": STREAM_VERSION,
        "seed": spec.seed,
        "params": spec.to_dict(),
        "argv": list(argv) if argv is not None else [],
        "version": __version__,
        "subscriptions": paths[: spec.subscriptions],
        "queries": paths,
    }


def generate_ops(spec: WorkloadSpec) -> Iterator[dict]:
    """The op records of ``spec``'s stream (header not included).

    Exactly ``spec.ops`` records, every one *accepted* by the shadow
    view — candidates the shadow rejects (cycle-closing sharing
    inserts, mostly) are silently regenerated, with a deterministic
    attempt cap as a runaway guard.
    """
    state = _StreamState(spec, _resolve_dataset(spec.workload))
    source = _PATTERN_FNS[spec.pattern](state)
    emitted = 0
    budget = spec.ops * 10 + 100
    while emitted < spec.ops:
        budget -= 1
        if budget < 0:
            raise ReproError(
                f"workload generation stalled: {emitted}/{spec.ops} "
                f"accepted ops after exhausting the attempt budget "
                f"(pattern {spec.pattern!r} keeps producing rejected "
                f"candidates)"
            )
        op = next(source)
        if state.advance(op):
            emitted += 1
            yield op


def generate_records(
    spec: WorkloadSpec, argv: list[str] | None = None
) -> Iterator[dict]:
    """The full stream: provenance header first, then every op."""
    yield make_header(spec, argv=argv)
    yield from generate_ops(spec)


def regenerate_from_header(header: dict) -> Iterator[dict]:
    """Rebuild a stream, byte-identical, from its own header record.

    The header is re-emitted *verbatim* (so provenance fields like the
    recorded command line and library version round-trip even across
    versions), then the ops are regenerated from ``header["params"]``.
    """
    if header.get("workload_stream") != STREAM_VERSION:
        raise ReproError(
            f"unsupported workload stream version "
            f"{header.get('workload_stream')!r} "
            f"(this library writes version {STREAM_VERSION})"
        )
    yield dict(header)
    yield from generate_ops(WorkloadSpec.from_dict(header["params"]))


def write_stream(records, out: TextIO) -> int:
    """Serialize records as JSONL (sorted keys); returns lines written."""
    count = 0
    for record in records:
        out.write(json.dumps(record, sort_keys=True) + "\n")
        count += 1
    return count


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``repro-bench generate ...``."""
    parser = argparse.ArgumentParser(
        prog="repro-bench generate",
        description="Generate a reproducible op-stream JSONL workload "
        "(pipe into `python -m repro.apply -`).",
    )
    parser.add_argument(
        "--workload", default="synthetic:300",
        help="dataset to generate against: synthetic[:n_c[:seed]] "
        "(default: synthetic:300)",
    )
    parser.add_argument(
        "--ops", type=int, default=100,
        help="number of op records to emit (default: 100)",
    )
    parser.add_argument(
        "--seed", type=int, default=42,
        help="RNG seed; the same seed and parameters always produce "
        "byte-identical output (default: 42)",
    )
    parser.add_argument(
        "--pattern", choices=PATTERNS, default="mixed",
        help="op-stream shape (default: mixed)",
    )
    parser.add_argument(
        "--key-skew", type=float, default=0.0, dest="key_skew",
        help="Zipf exponent over live target keys; 0 = uniform "
        "(default: 0)",
    )
    parser.add_argument(
        "--read-ratio", type=float, default=0.0, dest="read_ratio",
        help="fraction of harness operations that should be reads; "
        "recorded in the header with derived query paths (default: 0)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=1, dest="batch_size",
        help="ops per service.batch() session for harnesses that "
        "batch; recorded in the header (default: 1)",
    )
    parser.add_argument(
        "--subscriptions", type=int, default=0,
        help="standing subscription count; the header carries that "
        "many derived XPath paths (default: 0)",
    )
    parser.add_argument(
        "--new-key-fraction", type=float, default=0.2,
        dest="new_key_fraction",
        help="fraction of inserts/replaces introducing brand-new keys "
        "(exercises the SAT translation; default: 0.2)",
    )
    parser.add_argument(
        "--out", default="-",
        help="output path, or '-' for stdout (default: '-')",
    )
    args = parser.parse_args(argv)
    try:
        spec = WorkloadSpec(
            workload=args.workload,
            ops=args.ops,
            seed=args.seed,
            pattern=args.pattern,
            key_skew=args.key_skew,
            read_ratio=args.read_ratio,
            batch_size=args.batch_size,
            subscriptions=args.subscriptions,
            new_key_fraction=args.new_key_fraction,
        )
        recorded = ["generate", *(argv if argv is not None else [])]
        records = generate_records(spec, argv=recorded)
        if args.out == "-":
            count = write_stream(records, sys.stdout)
        else:
            with open(args.out, "w", encoding="utf-8") as handle:
                count = write_stream(records, handle)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"generated {count - 1} op(s) (+1 header) "
        f"[pattern={spec.pattern} seed={spec.seed} "
        f"workload={spec.workload}]"
        + ("" if args.out == "-" else f" -> {args.out}"),
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
