"""Timing accumulation and table formatting for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.updater import UpdateOutcome


@dataclass
class PhaseAccumulator:
    """Aggregates per-phase timings over a workload of updates.

    Phases mirror the paper's breakdown: (a) XPath evaluation,
    (b) translation + execution, (c) auxiliary-structure maintenance.
    """

    xpath: float = 0.0
    translate: float = 0.0
    maintain: float = 0.0
    count: int = 0
    accepted: int = 0
    rejected: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    def add(self, outcome: UpdateOutcome) -> None:
        # Hot path (once per benchmark op): read the fields directly
        # rather than materializing the full to_dict() wire payload.
        self._accumulate(outcome.timings, outcome.accepted)

    def add_payload(self, payload: dict) -> None:
        """Accumulate one ``UpdateOutcome.to_dict()`` payload.

        The wire-dict twin of :meth:`add`: harnesses that read
        ``BENCH_*.json`` records or ``repro.apply --json`` output feed
        the same payloads through here.
        """
        self._accumulate(payload["timings"], payload["accepted"])

    def _accumulate(self, timings: dict, accepted: bool) -> None:
        self.xpath += timings.get("validate", 0.0) + timings.get("xpath", 0.0)
        self.translate += (
            timings.get("translate_v", 0.0)
            + timings.get("translate_r", 0.0)
            + timings.get("apply", 0.0)
        )
        self.maintain += timings.get("maintain", 0.0)
        self.count += 1
        if accepted:
            self.accepted += 1
        else:
            self.rejected += 1

    @property
    def total(self) -> float:
        return self.xpath + self.translate + self.maintain

    @property
    def foreground(self) -> float:
        return self.xpath + self.translate

    def as_row(self) -> dict[str, float]:
        return {
            "xpath_s": self.xpath,
            "translate_s": self.translate,
            "maintain_s": self.maintain,
            "total_s": self.total,
            "ops": self.count,
            "accepted": self.accepted,
        }


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table (the harness's terminal report format)."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) < 0.001:
            return f"{cell:.2e}"
        return f"{cell:.4f}"
    return str(cell)
