"""The typed update-operation algebra (the paper's ΔX, reified).

The paper's pipeline (Fig. 3) is explicitly two-phase: an XML update is
first *translated* into ΔV/ΔR, then *applied* and maintained.  The first
phase needs a value it can operate on — something that can be previewed,
queued, serialized onto a wire, logged, or rejected before any state is
touched.  This module provides that value: four frozen dataclasses, one
per update kind the system understands:

==================  =====================================================
op                  meaning
==================  =====================================================
:class:`InsertOp`   ``insert (element, sem) into path`` (Section 2.1)
:class:`DeleteOp`   ``delete path`` (Section 2.1)
:class:`ReplaceOp`  ``delete path`` + re-attach ``ST(element, sem)`` at
                    the vacated parents (composite of the two primitives)
:class:`BaseUpdateOp`  a base-table group update ΔR propagated *into*
                    the view (the reverse pipeline, paper reference [8])
==================  =====================================================

Every op is immutable, hashable, equality-comparable, and round-trips
through ``to_dict()``/``from_dict()`` and ``to_json()``/``from_json()``
(``from_dict(op.to_dict()) == op`` — property-tested).  The wire format
uses an ``"op"`` discriminator key and JSON-native payloads only;
``sem`` tuples and base rows are encoded as lists and restored as
tuples on decode.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Iterable, Iterator

from repro.errors import OpDecodeError
from repro.relational.database import RelationalDelta

#: JSON-native scalar types allowed inside ``sem`` tuples and base rows.
_SCALARS = (str, int, float, bool, type(None))


def _decode_tuple(value: Any, what: str) -> tuple:
    """Decode a JSON array of scalars into a tuple, validating types."""
    if not isinstance(value, (list, tuple)):
        raise OpDecodeError(f"{what} must be an array, got {value!r}")
    for item in value:
        if not isinstance(item, _SCALARS):
            raise OpDecodeError(
                f"{what} may only hold JSON scalars, got {item!r}"
            )
    return tuple(value)


def _require(payload: dict, key: str, types: type | tuple, what: str) -> Any:
    try:
        value = payload[key]
    except KeyError:
        raise OpDecodeError(f"{what} is missing the {key!r} field") from None
    if not isinstance(value, types):
        raise OpDecodeError(
            f"{what} field {key!r} must be {types}, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class UpdateOperation:
    """Abstract base of the update algebra (do not instantiate)."""

    #: Wire discriminator; each concrete op overrides it.
    kind: ClassVar[str] = ""

    # -- wire format --------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-native dict; ``from_dict`` inverts it exactly."""
        payload: dict[str, Any] = {"op": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = _tuple_to_jsonable(value)
            payload[f.name] = value
        return payload

    def to_json(self) -> str:
        """One compact JSON object (inverse of :func:`op_from_json`)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def _decode(cls, payload: dict) -> "UpdateOperation":
        raise NotImplementedError  # pragma: no cover - abstract


def _tuple_to_jsonable(value: tuple) -> list:
    return [
        _tuple_to_jsonable(item) if isinstance(item, tuple) else item
        for item in value
    ]


@dataclass(frozen=True)
class InsertOp(UpdateOperation):
    """``insert (element, sem) into path`` — paper Section 2.1."""

    path: str
    element: str
    sem: tuple = field(default=())

    kind: ClassVar[str] = "insert"

    def __post_init__(self):
        object.__setattr__(self, "sem", tuple(self.sem))

    @classmethod
    def _decode(cls, payload: dict) -> "InsertOp":
        return cls(
            path=_require(payload, "path", str, "insert op"),
            element=_require(payload, "element", str, "insert op"),
            sem=_decode_tuple(payload.get("sem", ()), "insert op sem"),
        )


@dataclass(frozen=True)
class DeleteOp(UpdateOperation):
    """``delete path`` — paper Section 2.1."""

    path: str

    kind: ClassVar[str] = "delete"

    @classmethod
    def _decode(cls, payload: dict) -> "DeleteOp":
        return cls(path=_require(payload, "path", str, "delete op"))


@dataclass(frozen=True)
class ReplaceOp(UpdateOperation):
    """``replace path with (element, sem)``.

    Composite semantics: the nodes selected by ``path`` are deleted (as
    :class:`DeleteOp`) and ``ST(element, sem)`` is attached at the same
    parents the deleted nodes hung off — one foreground pass, one ΔV/ΔR,
    one background Δ(M,L) repair (insert repairs replayed first, then a
    closing delete pass, exactly the batch-session ordering).
    """

    path: str
    element: str
    sem: tuple = field(default=())

    kind: ClassVar[str] = "replace"

    def __post_init__(self):
        object.__setattr__(self, "sem", tuple(self.sem))

    @classmethod
    def _decode(cls, payload: dict) -> "ReplaceOp":
        return cls(
            path=_require(payload, "path", str, "replace op"),
            element=_require(payload, "element", str, "replace op"),
            sem=_decode_tuple(payload.get("sem", ()), "replace op sem"),
        )


@dataclass(frozen=True)
class BaseUpdateOp(UpdateOperation):
    """A base-table group update ΔR, propagated into the view.

    ``ops`` is a tuple of ``(kind, relation, row)`` triples with
    ``kind in {'insert', 'delete'}`` — the wire form of
    :class:`~repro.relational.database.RelationalDelta`.  Use
    :meth:`from_delta` / :meth:`to_delta` to convert.
    """

    ops: tuple = field(default=())

    kind: ClassVar[str] = "base_update"

    def __post_init__(self):
        normalized = []
        for op in self.ops:
            if not isinstance(op, (list, tuple)) or len(op) != 3:
                raise OpDecodeError(
                    f"base-update op must be (kind, relation, row), got {op!r}"
                )
            op_kind, relation, row = op
            if op_kind not in ("insert", "delete"):
                raise OpDecodeError(
                    f"base-update op kind must be insert|delete, got {op_kind!r}"
                )
            if not isinstance(relation, str):
                raise OpDecodeError(
                    f"base-update relation must be a string, got {relation!r}"
                )
            normalized.append(
                (op_kind, relation, _decode_tuple(row, "base-update row"))
            )
        object.__setattr__(self, "ops", tuple(normalized))

    @classmethod
    def from_delta(cls, delta: RelationalDelta) -> "BaseUpdateOp":
        """Wrap an existing group update ΔR as a typed operation."""
        return cls(
            ops=tuple((op.kind, op.relation, op.row) for op in delta)
        )

    def to_delta(self) -> RelationalDelta:
        """The ΔR this operation denotes (inverse of :meth:`from_delta`)."""
        delta = RelationalDelta()
        for op_kind, relation, row in self.ops:
            if op_kind == "insert":
                delta.insert(relation, row)
            else:
                delta.delete(relation, row)
        return delta

    @classmethod
    def _decode(cls, payload: dict) -> "BaseUpdateOp":
        ops = _require(payload, "ops", list, "base-update op")
        return cls(ops=tuple(ops))


#: Concrete op types by wire discriminator.
OP_TYPES: dict[str, type[UpdateOperation]] = {
    InsertOp.kind: InsertOp,
    DeleteOp.kind: DeleteOp,
    ReplaceOp.kind: ReplaceOp,
    BaseUpdateOp.kind: BaseUpdateOp,
}


def op_from_dict(payload: dict) -> UpdateOperation:
    """Decode one operation from its wire dict (``{"op": kind, ...}``)."""
    if not isinstance(payload, dict):
        raise OpDecodeError(f"operation must be an object, got {payload!r}")
    kind = payload.get("op")
    if not isinstance(kind, str):
        raise OpDecodeError(
            f"operation discriminator 'op' must be a string, got {kind!r}"
        )
    op_type = OP_TYPES.get(kind)
    if op_type is None:
        known = ", ".join(sorted(OP_TYPES))
        raise OpDecodeError(
            f"unknown operation kind {kind!r} (known: {known})"
        )
    return op_type._decode(payload)


def op_from_json(text: str) -> UpdateOperation:
    """Decode one operation from a JSON document."""
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise OpDecodeError(f"operation is not valid JSON: {exc}") from None
    return op_from_dict(payload)


def ops_from_jsonl(
    lines: Iterable[str],
    on_error=None,
) -> Iterator[UpdateOperation]:
    """Decode a JSON-lines stream; blank lines and ``#`` comments skip.

    Without ``on_error`` a malformed line raises :class:`OpDecodeError`
    prefixed with ``line N``.  With it, ``on_error(lineno, exc)`` is
    called instead and decoding *continues* when it returns true and
    *stops* (cleanly) when it returns false — the CLI's
    ``--keep-going`` / ``--stop-on-error`` semantics.
    """
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            op = op_from_json(stripped)
        except OpDecodeError as exc:
            if on_error is None:
                raise OpDecodeError(f"line {lineno}: {exc}") from None
            if on_error(lineno, exc):
                continue
            return
        yield op
