"""Typed, serializable update operations (see :mod:`repro.ops.algebra`).

Construct ops directly (``DeleteOp("course[cno=CS650]/project")``) or
decode them from the wire (:func:`op_from_dict`, :func:`op_from_json`,
:func:`ops_from_jsonl`); feed them to
:meth:`repro.service.ViewService.apply` /
:meth:`~repro.service.ViewService.plan` or to
:meth:`repro.core.updater.XMLViewUpdater.apply_op`.
"""

from repro.ops.algebra import (
    OP_TYPES,
    BaseUpdateOp,
    DeleteOp,
    InsertOp,
    ReplaceOp,
    UpdateOperation,
    op_from_dict,
    op_from_json,
    ops_from_jsonl,
)

__all__ = [
    "OP_TYPES",
    "BaseUpdateOp",
    "DeleteOp",
    "InsertOp",
    "ReplaceOp",
    "UpdateOperation",
    "op_from_dict",
    "op_from_json",
    "ops_from_jsonl",
]
