"""One immutable configuration value for a view service.

:class:`ViewConfig` consolidates the knobs that were previously
scattered over the :class:`~repro.core.updater.XMLViewUpdater`
constructor (index backend, side-effect policy, SAT solver, strictness,
per-update verification, RNG seed) into a single frozen, serializable
dataclass — the shape a deployment config or a service registry wants.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, fields

from repro.changefeed.hub import DEFAULT_RETENTION
from repro.core.updater import SideEffectPolicy
from repro.errors import ReproError
from repro.index import resolve_backend

#: Default RNG seed (the paper's submission date, as in the updater).
DEFAULT_SEED = 20070415


@dataclass(frozen=True)
class ViewConfig:
    """How a :class:`~repro.service.facade.ViewService` behaves.

    Attributes
    ----------
    index_backend:
        Reachability-index engine for ``M``: ``'auto'`` (default:
        the NumPy ``'matrix'`` backend when NumPy is importable, else
        ``'bitset'``), ``'matrix'``, ``'bitset'`` or ``'sets'`` (see
        :mod:`repro.index` and ``docs/index-backends.md``).
    side_effects:
        ``'abort'`` (default) rejects updates with XML side effects;
        ``'propagate'`` applies them at every occurrence (the paper's
        revised semantics).
    sat_solver:
        ``'auto'`` | ``'walksat'`` | ``'dpll'`` for insertion translation.
    strict:
        When True (default) rejections raise; when False they come back
        as unaccepted outcomes (the benchmark setting).
    verify_each_update:
        Re-verify against a republish after every update (tests only —
        O(|V|) per update).
    seed:
        Seed for the SAT translation RNG; a fixed seed makes two
        identically configured services produce identical ΔR.
    changefeed_retention:
        How many published events the changefeed's replay buffer keeps
        (``service.changefeed(since=...)`` can resume from any retained
        generation; older resume points raise
        :class:`~repro.errors.ReplayGapError`).
    coarse_event_threshold:
        Cost-based fallback for subscription maintenance: events whose
        edge list exceeds this are handled as coarse (full
        re-evaluation) instead of scanned pattern-by-pattern.  ``None``
        uses the measured default
        (:data:`repro.subscribe.engine.DEFAULT_COARSE_THRESHOLD`).
    capture_closure_deltas:
        Whether Δ(M,L) repairs capture the exact closure pair-delta of
        ``M`` (snapshot + bulk diff; feeds leading-``//`` subscription
        patches — see ``docs/index-backends.md``).  ``'auto'``
        (default) captures only while such a subscription is live;
        ``True``/``False`` force it on or off.
    commit_pipeline:
        Whether writes run through the staged commit pipeline
        (:class:`~repro.service.pipeline.CommitPipeline`: plan → mutate
        → maintain → publish, with changefeed delivery outside the
        write lock and batched subscription decisions).  ``False``
        restores the legacy single-phase critical section — kept as the
        measured pre-refactor baseline of the ``pipeline`` benchmark
        experiment.  Event contents, subscription results and replica
        convergence are identical either way; see the concurrency-model
        section of ``docs/architecture.md``.
    wal_dir:
        Directory of the durable changefeed log (:mod:`repro.wal`), or
        ``None`` (default) for a purely in-memory service.  When set,
        every committed event is appended to the log, periodic
        checkpoints are cut, and ``open_view`` against a non-empty
        directory *recovers* the exact last-durable state instead of
        building the view from the base tables.  See
        ``docs/durability.md``.
    wal_fsync:
        The log's fsync policy: ``'always'`` (fsync per commit),
        ``'batch'`` (default: fsync every
        :data:`~repro.wal.log.BATCH_FSYNC_INTERVAL` commits and at every
        rotation/checkpoint/close) or ``'os'`` (leave flushing to the
        OS page cache).
    wal_segment_bytes:
        Segment rotation threshold in bytes.
    wal_checkpoint_every:
        Committed events between periodic WAL checkpoints.
    wal_keep_checkpoints:
        Checkpoints retained before compaction advances the replay
        floor and deletes fully-covered segments.
    """

    index_backend: str = "auto"
    side_effects: str = "abort"
    sat_solver: str = "auto"
    strict: bool = True
    verify_each_update: bool = False
    seed: int = DEFAULT_SEED
    changefeed_retention: int = DEFAULT_RETENTION
    coarse_event_threshold: int | None = None
    capture_closure_deltas: bool | str = "auto"
    commit_pipeline: bool = True
    wal_dir: str | None = None
    wal_fsync: str = "batch"
    wal_segment_bytes: int = 1 << 20
    wal_checkpoint_every: int = 256
    wal_keep_checkpoints: int = 2

    def __post_init__(self):
        resolve_backend(self.index_backend)  # raises on unknown names
        if self.side_effects not in ("abort", "propagate"):
            raise ReproError(
                f"side_effects must be 'abort' or 'propagate', "
                f"got {self.side_effects!r}"
            )
        if self.sat_solver not in ("auto", "walksat", "dpll"):
            raise ReproError(
                f"sat_solver must be 'auto', 'walksat' or 'dpll', "
                f"got {self.sat_solver!r}"
            )
        if self.changefeed_retention < 1:
            raise ReproError(
                f"changefeed_retention must be >= 1, "
                f"got {self.changefeed_retention!r}"
            )
        if (
            self.coarse_event_threshold is not None
            and self.coarse_event_threshold < 0
        ):
            raise ReproError(
                f"coarse_event_threshold must be >= 0 or None, "
                f"got {self.coarse_event_threshold!r}"
            )
        if self.capture_closure_deltas not in (True, False, "auto"):
            raise ReproError(
                f"capture_closure_deltas must be True, False or 'auto', "
                f"got {self.capture_closure_deltas!r}"
            )
        if not isinstance(self.commit_pipeline, bool):
            raise ReproError(
                f"commit_pipeline must be a bool, "
                f"got {self.commit_pipeline!r}"
            )
        if self.wal_dir is not None and not isinstance(self.wal_dir, str):
            raise ReproError(
                f"wal_dir must be a string path or None, "
                f"got {self.wal_dir!r}"
            )
        if self.wal_fsync not in ("always", "batch", "os"):
            raise ReproError(
                f"wal_fsync must be 'always', 'batch' or 'os', "
                f"got {self.wal_fsync!r}"
            )
        if self.wal_segment_bytes < 1024:
            raise ReproError(
                f"wal_segment_bytes must be >= 1024, "
                f"got {self.wal_segment_bytes!r}"
            )
        if self.wal_checkpoint_every < 1:
            raise ReproError(
                f"wal_checkpoint_every must be >= 1, "
                f"got {self.wal_checkpoint_every!r}"
            )
        if self.wal_keep_checkpoints < 1:
            raise ReproError(
                f"wal_keep_checkpoints must be >= 1, "
                f"got {self.wal_keep_checkpoints!r}"
            )

    @property
    def policy(self) -> SideEffectPolicy:
        """The ``side_effects`` string as the updater's enum."""
        return (
            SideEffectPolicy.ABORT
            if self.side_effects == "abort"
            else SideEffectPolicy.PROPAGATE
        )

    def make_rng(self) -> random.Random:
        """A fresh RNG seeded with :attr:`seed` (one per service)."""
        return random.Random(self.seed)

    # -- wire format --------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ViewConfig":
        """Decode :meth:`to_dict` output; unknown keys raise."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ReproError(f"unknown ViewConfig field(s): {unknown}")
        return cls(**payload)
