"""The service layer: ``open_view`` → :class:`ViewService` (plan/commit).

See :mod:`repro.service.facade` for the protocol and
:mod:`repro.service.config` for :class:`ViewConfig`.
"""

from repro.service.config import ViewConfig
from repro.service.facade import ViewService, open_view
from repro.service.rwlock import RWLock

__all__ = ["RWLock", "ViewConfig", "ViewService", "open_view"]
