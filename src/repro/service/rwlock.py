"""A write-preferring readers–writer lock for the view service.

Readers (``service.xpath()``, ``service.xml_tree()``) share the view;
writers (``apply``, ``plan``/``commit``, batch sessions) get exclusive
access — including during the "background" Δ(M,L) maintenance phase, so
a reader can never observe a store whose ``M``/``L`` repair is mid-step.
Write preference keeps a steady stream of readers from starving
updates.

The write side is **reentrant for the owning thread**, and the owner
may also take the read side freely: ``with service.batch(): ...`` holds
the write lock for the whole block, and service calls made inside the
block (``apply``, ``xpath``, a held plan's ``commit()``) nest instead
of deadlocking.

The converse — a reader upgrading to the write side — cannot be
granted (the writer must wait for all readers, including the upgrading
one, to drain) and used to hang forever; ``acquire_write`` now tracks
read-side ownership and raises :class:`RuntimeError` on the attempt.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class RWLock:
    """Many readers or one writer; writers are preferred.

    Reentrant on both sides (per owning thread): the write owner may
    write and read freely, and a reader may nest further reads — a
    nested read must not queue behind a waiting writer, which cannot
    proceed until the reader drains.  A reader attempting to *write*
    gets :class:`RuntimeError` (see :meth:`acquire_write`).
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._reader_threads: dict[int, int] = {}
        """Read-side owners (thread ident → hold depth): upgrade
        attempts must fail fast instead of deadlocking."""
        self._writer_thread: threading.Thread | None = None
        self._writer_depth = 0
        self._writers_waiting = 0

    def held_by_current_writer(self) -> bool:
        """Whether the calling thread owns the write side right now."""
        return self._writer_thread is threading.current_thread()

    # -- raw protocol -----------------------------------------------------------

    def acquire_read(self) -> None:
        """Take the shared side; blocks behind active/waiting writers
        (reentrant reads skip the queue — see the class docstring)."""
        ident = threading.get_ident()
        with self._cond:
            if self._reader_threads.get(ident):
                # Reentrant read: the thread already shares the lock, so
                # it must not queue behind a waiting writer — the writer
                # cannot proceed until this thread drains, and blocking
                # here would deadlock both.
                self._readers += 1
                self._reader_threads[ident] += 1
                return
            while self._writer_thread is not None or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            self._reader_threads[ident] = 1

    def release_read(self) -> None:
        """Release one shared hold; wakes writers when readers drain."""
        ident = threading.get_ident()
        with self._cond:
            self._readers -= 1
            depth = self._reader_threads.get(ident, 0) - 1
            if depth > 0:
                self._reader_threads[ident] = depth
            else:
                self._reader_threads.pop(ident, None)
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Take the exclusive side (reentrant per owning thread).

        Raises :class:`RuntimeError` when the caller holds the read
        side: granting the upgrade would deadlock (the writer waits for
        all readers — including the upgrading one — to drain).
        """
        me = threading.current_thread()
        with self._cond:
            if self._writer_thread is me:
                self._writer_depth += 1
                return
            if threading.get_ident() in self._reader_threads:
                # A reader waiting for readers (itself included) to
                # drain can never proceed: fail fast instead of hanging
                # forever.
                raise RuntimeError(
                    "read→write upgrade would deadlock: this thread "
                    "holds the read side of the RWLock (e.g. calling "
                    "apply()/plan() from inside a read such as xpath() "
                    "or a subscription callback); release the read lock "
                    "before writing"
                )
            self._writers_waiting += 1
            try:
                while self._writer_thread is not None or self._readers:
                    self._cond.wait()
                self._writer_thread = me
                self._writer_depth = 1
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        """Release one exclusive hold; wakes everyone at depth zero."""
        with self._cond:
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer_thread = None
                self._cond.notify_all()

    # -- context managers --------------------------------------------------------

    @contextmanager
    def read(self):
        """``with lock.read():`` — shared access as a context manager."""
        if self.held_by_current_writer():
            # The write owner already has exclusive access.
            yield self
            return
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """``with lock.write():`` — exclusive access as a context manager."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()
