"""A write-preferring readers–writer lock for the view service.

Readers (``service.xpath()``, ``service.snapshot()``) share the view;
writers (``apply``, ``plan``/``commit``, batch sessions) get exclusive
access — including during the "background" Δ(M,L) maintenance phase, so
a reader can never observe a store whose ``M``/``L`` repair is mid-step.
Write preference keeps a steady stream of readers from starving
updates.

The write side is **reentrant for the owning thread**, and the owner
may also take the read side freely: ``with service.batch(): ...`` holds
the write lock for the whole block, and service calls made inside the
block (``apply``, ``xpath``, a held plan's ``commit()``) nest instead
of deadlocking.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class RWLock:
    """Many readers or one writer; writers are preferred.

    Reentrant on the write side (per owning thread); the read side is
    not reentrant, but the write owner may read.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_thread: threading.Thread | None = None
        self._writer_depth = 0
        self._writers_waiting = 0

    def held_by_current_writer(self) -> bool:
        return self._writer_thread is threading.current_thread()

    # -- raw protocol -----------------------------------------------------------

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_thread is not None or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        me = threading.current_thread()
        with self._cond:
            if self._writer_thread is me:
                self._writer_depth += 1
                return
            self._writers_waiting += 1
            try:
                while self._writer_thread is not None or self._readers:
                    self._cond.wait()
                self._writer_thread = me
                self._writer_depth = 1
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._cond:
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer_thread = None
                self._cond.notify_all()

    # -- context managers --------------------------------------------------------

    @contextmanager
    def read(self):
        if self.held_by_current_writer():
            # The write owner already has exclusive access.
            yield self
            return
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()
