"""The plan/commit ``ViewService`` façade over one published view.

``repro.open_view(atg, db, config=ViewConfig(...))`` is the public front
door of the system: it publishes the view once and returns a service
whose write path is the typed operation algebra (:mod:`repro.ops`) and
whose read path (:meth:`ViewService.xpath`, :meth:`ViewService.xml_tree`)
is safe to call from other threads while updates — including their
"background" Δ(M,L) maintenance — are in flight, via a write-preferring
readers–writer lock.

Two write protocols:

- ``service.apply(op)`` — translate + apply in one call; a list of ops
  routes through one batched :class:`~repro.core.updater.UpdateSession`
  (one deferred Δ(M,L) repair for the whole batch);
- ``plan = service.plan(op)`` — run the paper's foreground phases only,
  inspect ``plan.targets`` / ``plan.side_effects`` / ``plan.delta_v`` /
  ``plan.delta_r`` / ``plan.timings``, then ``plan.commit()`` (identical
  ΔV/ΔR to ``apply``) or ``plan.abort()`` (state stays byte-identical).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterable

from repro.atg.model import ATG
from repro.changefeed.consumer import ChangefeedConsumer
from repro.changefeed.hub import ChangefeedHub
from repro.core.dag_eval import EvalResult
from repro.core.updater import (
    PlanState,
    UpdateOutcome,
    UpdatePlan,
    XMLViewUpdater,
)
from repro.errors import PlanError, ReproError
from repro.metrics import MetricsRegistry, render_prometheus
from repro.ops import BaseUpdateOp, UpdateOperation, op_from_dict
from repro.relational.database import Database
from repro.service.config import ViewConfig
from repro.service.pipeline import CommitPipeline
from repro.service.rwlock import RWLock
from repro.subscribe.engine import Subscription, SubscriptionRegistry
from repro.xmltree.tree import XMLNode
from repro.xpath.ast import XPath


class ViewService:
    """Thread-safe plan/commit façade over one :class:`XMLViewUpdater`.

    Construct via :func:`open_view`.  All mutation goes through typed
    operations; reads take the shared side of the service lock and are
    safe during concurrent updates and background maintenance.
    """

    def __init__(
        self,
        atg: ATG,
        db: Database,
        config: ViewConfig | None = None,
        wal_fs=None,
    ):
        self.config = config or ViewConfig()
        self._lock = RWLock()
        # One registry for the whole service; every component below
        # registers its instruments here, so ``service.metrics()`` /
        # ``metrics_text()`` expose a single coherent surface.
        self.metrics_registry = MetricsRegistry()
        self._m_ops = self.metrics_registry.counter(
            "repro_ops_total",
            "Update operations applied through the service, by kind "
            "and acceptance.",
        )
        self._m_xpath = self.metrics_registry.histogram(
            "repro_xpath_seconds",
            "XPath read-path evaluation latency (lock wait included).",
        )
        # With ``wal_dir`` set, open (or create) the durable changefeed
        # log first: a non-empty log *recovers* the exact last-durable
        # state — checkpoint restore + record replay — instead of
        # publishing the view fresh from the base tables (whose node
        # ids would not match the logged event stream).
        self.wal = None
        recovered_store = None
        recovered_generation: int | None = None
        if self.config.wal_dir is not None:
            from repro.wal.log import WriteAheadLog
            from repro.wal.recover import recover_state

            self.wal = WriteAheadLog(
                self.config.wal_dir,
                fsync=self.config.wal_fsync,
                segment_bytes=self.config.wal_segment_bytes,
                checkpoint_every=self.config.wal_checkpoint_every,
                keep_checkpoints=self.config.wal_keep_checkpoints,
                fs=wal_fs,
                metrics=self.metrics_registry,
            )
            recovered = recover_state(atg, db, self.wal)
            if recovered is not None:
                recovered_store, recovered_generation = recovered
        self.updater = XMLViewUpdater(
            atg,
            db,
            side_effect_policy=self.config.policy,
            sat_solver=self.config.sat_solver,
            strict=self.config.strict,
            verify_each_update=self.config.verify_each_update,
            rng=self.config.make_rng(),
            index_backend=self.config.index_backend,
            capture_closure_deltas=self.config.capture_closure_deltas,
            store=recovered_store,
        )
        if recovered_generation is not None:
            # Resume the version counter where the log left off so new
            # commits extend the logged generation sequence.
            self.updater._version = recovered_generation
        # The registry attaches itself as a commit observer on first
        # subscribe(), so services that never subscribe pay nothing on
        # the write path.
        self.subscriptions = SubscriptionRegistry(
            self.updater,
            self._lock,
            coarse_threshold=self.config.coarse_event_threshold,
            metrics=self.metrics_registry,
        )
        # Likewise the changefeed hub attaches on the first changefeed()
        # call; from then on it stays attached so replay retention is
        # continuous.
        # (The hub does not lock internally: changefeed() holds the
        # service write lock across attach, and publication runs inside
        # the writer's critical section.)
        self.changefeeds = ChangefeedHub(
            self.updater,
            retention=self.config.changefeed_retention,
            wal=self.wal,
            metrics=self.metrics_registry,
        )
        # The staged commit pipeline (plan → mutate → maintain →
        # publish): writes open a pipeline scope instead of a bare write
        # lock, registry maintenance runs as one batched pass, and
        # changefeed delivery happens after the lock is released (see
        # docs/architecture.md).  ``commit_pipeline=False`` keeps the
        # legacy single-phase critical section.
        self.pipeline: CommitPipeline | None = None
        if self.config.commit_pipeline:
            self.pipeline = CommitPipeline(
                self._lock, self.updater, self.subscriptions,
                self.changefeeds, metrics=self.metrics_registry,
            )
            self.updater._sink = self.pipeline
        if self.wal is not None:
            # A durable service attaches the hub at construction (not
            # lazily on the first changefeed() call) so every commit
            # from here on is logged.  The registry pins itself first,
            # preserving the registry-before-hub observer ordering the
            # lazy path establishes.  The initial checkpoint makes the
            # replay floor point at a live checkpoint from generation 0.
            self.changefeeds.checkpoint_fn = self._wal_checkpoint
            self.subscriptions.ensure_registered(pin=True)
            self.changefeeds._ensure_attached()
            if not self.wal.has_checkpoint:
                self._wal_checkpoint()

    def _wal_checkpoint(self) -> None:
        """Cut a WAL checkpoint of the current at-rest state.

        Runs inside the writer's critical section (the hub invokes it
        from :meth:`~repro.changefeed.hub.ChangefeedHub.stage`, or
        ``__init__`` calls it before the service is shared), so the
        store and base database are consistent at the current
        generation.  The payload pairs the standard replication
        :class:`~repro.replica.snapshot.Snapshot` with the base rows —
        everything recovery needs to resume, and enough for
        :meth:`~repro.replica.view.ReplicaView.from_wal` to bootstrap
        offline.
        """
        from repro.replica.snapshot import Snapshot

        snapshot = Snapshot.capture(
            self.updater.store,
            generation=self.updater._version,
            config=self.config.to_dict(),
            index_backend=self.updater.index_backend,
        )
        self.wal.write_checkpoint(
            {
                "snapshot": snapshot.to_dict(),
                "db": self.updater.db.export_state(),
            },
            self.updater._version,
        )

    def close(self) -> None:
        """Flush and release the durable log, if any (idempotent).

        A service without ``wal_dir`` has nothing to release; with one,
        ``close()`` fsyncs the active segment per the fsync policy and
        drops cached descriptors.  The service object itself remains
        readable — only the log is detached, and further *writes* would
        fail on the closed log, so treat the service as done.
        """
        if self.wal is not None:
            with self._lock.write():
                self.wal.close()

    def __enter__(self) -> "ViewService":
        """Context-manager entry (no side effects)."""
        return self

    def __exit__(self, *exc) -> bool:
        """Context-manager exit: :meth:`close`."""
        self.close()
        return False

    @contextmanager
    def _write_scope(self):
        """One write section: a pipeline scope, or the bare write lock.

        Yields the open :class:`~repro.service.pipeline.CommitRecord`
        (or ``None`` on the legacy path) so callers can mark the
        ``plan`` phase for timing.
        """
        if self.pipeline is None:
            with self._lock.write():
                yield None
        else:
            with self.pipeline.scope() as record:
                yield record

    # -- write path ---------------------------------------------------------------

    def apply(
        self,
        op: UpdateOperation | dict | Iterable[UpdateOperation | dict],
    ) -> UpdateOutcome | list[UpdateOutcome]:
        """Translate and apply one op, or a batch of ops.

        Accepts op instances or their wire dicts.  A single op returns
        its :class:`UpdateOutcome`; a list returns the outcome list and
        routes through one batched update session, so the whole batch
        pays a single deferred Δ(M,L) repair.  ``BaseUpdateOp`` cannot
        ride in a batch (base propagation needs ``M``/``L`` repaired,
        which the session defers) — apply it on its own.

        Under ``strict`` config a rejected op raises out of the batch
        after the session flushes; the already-committed outcomes (whose
        ``delta_r`` feeds :meth:`undo`) ride on the exception as
        ``exc.batch_outcomes``.
        """
        if isinstance(op, (UpdateOperation, dict)):
            decoded = self._decode(op)
            with self._write_scope() as record:
                if record is None:
                    return self._count_op(self.updater.apply_op(decoded))
                # The same dispatch as updater.apply_op, with the two
                # foreground phases marked on the commit record.
                with record.phase("plan"):
                    plan = self.updater.plan(decoded)
                if plan.state is PlanState.REJECTED:
                    # strict mode raised inside plan()
                    return self._count_op(plan.outcome)
                return self._count_op(plan.commit())
        ops = [self._decode(item) for item in op]
        base = [o for o in ops if isinstance(o, BaseUpdateOp)]
        if base:
            raise PlanError(
                "a batched apply cannot contain base updates (the batch "
                "session defers the M/L repair base propagation needs); "
                "apply them individually"
            )
        outcomes: list[UpdateOutcome] = []
        with self._write_scope():
            try:
                with self.updater.batch():
                    for decoded in ops:
                        outcomes.append(
                            self._count_op(self.updater.apply_op(decoded))
                        )
            except ReproError as exc:
                # Ops before the failure are committed (the session has
                # flushed); hand their outcomes to the caller for
                # inspection or undo.
                exc.batch_outcomes = outcomes
                raise
        return outcomes

    def _count_op(self, outcome: UpdateOutcome) -> UpdateOutcome:
        """Account one applied op on the metrics surface (pass-through)."""
        self._m_ops.labels(
            kind=outcome.kind,
            accepted="true" if outcome.accepted else "false",
        ).inc()
        return outcome

    def plan(self, op: UpdateOperation | dict) -> UpdatePlan:
        """Run the foreground phases; commit/abort later.

        The returned plan's ``commit()``/``abort()`` open a full write
        section (a pipeline scope when the staged pipeline is on), so a
        held plan can be completed from any thread and its commit
        publishes through the same maintain/publish phases as
        :meth:`apply`.
        """
        decoded = self._decode(op)
        with self._lock.write():
            plan = self.updater.plan(decoded)
        plan._write_lock = (
            self.pipeline.scope if self.pipeline is not None
            else self._lock.write
        )
        return plan

    def undo(self, outcome: UpdateOutcome):
        """Invert an accepted update's ΔR and re-synchronize the view."""
        with self._write_scope():
            return self.updater.undo(outcome)

    @contextmanager
    def batch(self):
        """Exclusive batched session: N applies, one Δ(M,L) repair."""
        with self._write_scope():
            with self.updater.batch() as session:
                yield _BatchHandle(self.updater, session)

    # -- subscriptions -------------------------------------------------------------

    def subscribe(self, path: str | XPath) -> Subscription:
        """Register ``path`` as a live query and evaluate it eagerly.

        The returned :class:`~repro.subscribe.engine.Subscription` is
        maintained incrementally from the ΔV every committed op emits:
        ``sub.result()`` always equals a fresh :meth:`xpath` evaluation
        of the same path (as a sorted node-id tuple), usually without
        re-evaluating anything.  Maintenance happens inside the writer's
        critical section; ``result()`` takes the read side.  Call
        ``sub.close()`` to stop maintaining it.
        """
        with self._lock.write():
            return self.subscriptions.subscribe(path)

    # -- changefeed ----------------------------------------------------------------

    def changefeed(
        self,
        since: int | None = None,
        on_event=None,
        backpressure: str = "block_writer",
        block_timeout: float | None = None,
    ) -> ChangefeedConsumer:
        """Attach a consumer to this view's published event stream.

        The stable, versioned successor of ``updater.add_observer``: one
        JSON-serializable :class:`~repro.subscribe.delta.ViewEvent` per
        committed generation observable at rest (batches arrive as one
        coalesced event), specified in ``docs/event-schema.md``.

        ``since=g`` resumes after generation ``g``: retained events are
        replayed in order before any live delivery, gaplessly (attach
        holds the write lock).  A resume point older than the retention
        window raises :class:`~repro.errors.ReplayGapError`; one ahead
        of the feed raises :class:`~repro.errors.ChangefeedError`.
        ``since=None`` starts from now.  Events before the service's
        *first* ``changefeed()`` call are not retained — open the feed
        early (e.g. right after :func:`open_view`) if you need replay
        from generation 0.

        ``on_event=fn`` selects callback mode: ``fn(event)`` runs
        synchronously on the committing thread during the pipeline's
        *publish* phase — after subscription maintenance for the event's
        generation completed, and (with the staged pipeline) after the
        write lock was released, so the callback never extends the
        critical section (so ``sub.result()``/``sub.delta()`` read
        consistently with the event).  Writing back into the service
        from the callback raises :class:`~repro.errors.PlanError`; a
        callback that raises is detached (``consumer.error``) rather
        than failing the commit.
        Without ``on_event`` the returned consumer is a pull handle:
        iterate it, or call ``next_event(timeout=...)`` / ``events()``;
        ``close()`` detaches.  Pull queues are bounded at twice the
        retention window; what happens at the bound is the consumer's
        ``backpressure`` policy: ``'block_writer'`` (default) makes
        delivery wait up to ``block_timeout`` seconds for the consumer
        to drain a slot and detaches it only if none frees up (the
        backlog stays drainable; ``consumer.error`` explains how to
        reattach), ``'drop_oldest'`` discards the oldest queued event
        and keeps the consumer attached (lossy; counted in the hub's
        ``drops`` stat).
        """
        with self._lock.write():
            # Reject a bad resume point before any side effect sticks,
            # then pin the registry ahead of the hub in the observer
            # list so changefeed callbacks always see post-maintenance
            # subscription state.
            self.changefeeds.validate_since(since)
            self.subscriptions.ensure_registered(pin=True)
            return self.changefeeds.open(
                since=since, on_event=on_event,
                backpressure=backpressure, block_timeout=block_timeout,
            )

    # -- read path ----------------------------------------------------------------

    def xpath(self, path: str | XPath) -> EvalResult:
        """Evaluate an XPath on the current view (no update)."""
        start = time.perf_counter()
        try:
            with self._lock.read():
                return self.updater.evaluate_xpath(path)
        finally:
            self._m_xpath.observe(time.perf_counter() - start)

    # Drop-in alias for code migrating from the updater surface.
    evaluate_xpath = xpath

    def snapshot(self):
        """A durable, generation-stamped replication snapshot.

        Returns a :class:`~repro.replica.snapshot.Snapshot` artifact —
        the complete store state plus config and provenance metadata,
        captured under the read lock so it is consistent with one
        generation.  ``snapshot.save(path)`` /
        ``Snapshot.load(path)`` round-trip it through a gzip-compressed
        file; a :class:`~repro.replica.ReplicaView` bootstraps from it
        and resumes the changefeed at ``snapshot.generation``.

        .. note:: Before 0.7.0 this method returned the unfolded XML
           tree; that read moved to :meth:`xml_tree`.
        """
        from repro.replica.snapshot import Snapshot

        with self._lock.read():
            return Snapshot.capture(
                self.updater.store,
                generation=self.updater._version,
                config=self.config.to_dict(),
                index_backend=self.updater.index_backend,
            )

    def check_consistency(self) -> list[str]:
        """Verify state against a fresh republish; [] means consistent.

        O(|V|)-ish — intended for tests, not per-update production use.
        """
        with self._lock.read():
            return self.updater.check_consistency()

    def stats(self) -> dict:
        """JSON-safe service statistics (store/M/L sizes, config)."""
        with self._lock.read():
            store = self.updater.store
            return {
                "generation": self.updater._version,
                "nodes": store.num_nodes,
                "edges": store.num_edges,
                "reach_pairs": len(self.updater.reach),
                "topo_len": len(self.updater.topo),
                "maintenance_runs": self.updater.maintenance_runs,
                "index_backend": self.updater.index_backend,
                "subscriptions": self.subscriptions.stats(),
                "changefeed": self.changefeeds.stats(),
                "pipeline": (
                    self.pipeline.stats()
                    if self.pipeline is not None
                    else None
                ),
                "wal": self.wal.stats() if self.wal is not None else None,
                "config": self.config.to_dict(),
            }

    def _refresh_gauges(self) -> None:
        """Set the point-in-time gauges from live state (under the
        read lock, so one scrape describes one generation)."""
        reg = self.metrics_registry
        store = self.updater.store
        reg.gauge(
            "repro_generation", "Current committed view generation."
        ).set(self.updater._version)
        reg.gauge("repro_view_nodes", "Nodes in the view store.").set(
            store.num_nodes
        )
        reg.gauge("repro_view_edges", "Edges in the view store.").set(
            store.num_edges
        )
        reg.gauge(
            "repro_subscriptions_active", "Standing subscriptions."
        ).set(len(list(self.subscriptions)))
        reg.gauge(
            "repro_changefeed_consumers", "Attached changefeed consumers."
        ).set(len(self.changefeeds))

    def metrics(self) -> dict:
        """The metrics surface as a JSON-safe dict.

        Counters and histograms accumulate since construction; gauges
        (generation, store sizes, consumer counts) are refreshed at
        call time under the read lock.  See ``docs/observability.md``
        for the catalog.
        """
        with self._lock.read():
            self._refresh_gauges()
            return self.metrics_registry.to_dict()

    def metrics_text(self) -> str:
        """The metrics surface in Prometheus text exposition format.

        The output passes ``scripts/validate_metrics.py`` and is
        byte-deterministic for a given registry state (families sorted
        by name, series by label value).
        """
        with self._lock.read():
            self._refresh_gauges()
            return render_prometheus(self.metrics_registry)

    # -- delegation (read-mostly internals used by tests/benchmarks) ---------------

    @property
    def atg(self) -> ATG:
        """The view definition σ this service publishes."""
        return self.updater.atg

    @property
    def db(self) -> Database:
        """The base database I (mutated in place by accepted updates)."""
        return self.updater.db

    @property
    def store(self):
        """The DAG view store V (read-mostly delegation)."""
        return self.updater.store

    @property
    def topo(self):
        """The topological order L (read-mostly delegation)."""
        return self.updater.topo

    @property
    def reach(self):
        """The reachability index M (read-mostly delegation)."""
        return self.updater.reach

    @property
    def registry(self):
        """The edge-view registry (read-mostly delegation)."""
        return self.updater.registry

    @property
    def index_backend(self) -> str:
        """The resolved reachability-index backend name."""
        return self.updater.index_backend

    @property
    def maintenance_runs(self) -> int:
        """Δ(M,L) repair passes run so far (batching amortizes them)."""
        return self.updater.maintenance_runs

    def xml_tree(self) -> XMLNode:
        """The current XML view, unfolded to an (uncompressed) tree."""
        with self._lock.read():
            return self.updater.xml_tree()

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _decode(op: UpdateOperation | dict) -> UpdateOperation:
        if isinstance(op, UpdateOperation):
            return op
        return op_from_dict(op)


class _BatchHandle:
    """What ``with service.batch() as batch:`` yields."""

    def __init__(self, updater: XMLViewUpdater, session):
        self._updater = updater
        self.session = session

    def apply(self, op: UpdateOperation | dict) -> UpdateOutcome:
        return self._updater.apply_op(ViewService._decode(op))


def open_view(
    atg: ATG,
    db: Database,
    config: ViewConfig | None = None,
    wal_fs=None,
) -> ViewService:
    """Publish ``σ(I)`` and open the plan/commit service façade over it.

    With ``config.wal_dir`` set, an existing log in that directory is
    *recovered* instead: the newest checkpoint is restored into ``db``
    and the store, the logged records past it are replayed, and the
    service resumes at the last durable generation (see
    ``docs/durability.md``).  ``wal_fs`` injects a file-system seam for
    the log (fault-injection tests); it is deliberately not part of
    :class:`~repro.service.config.ViewConfig`, which stays serializable.
    """
    return ViewService(atg, db, config=config, wal_fs=wal_fs)
