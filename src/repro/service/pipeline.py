"""The staged commit pipeline: plan → mutate → maintain → publish.

Historically every commit ran mutation, subscription maintenance and
changefeed fan-out serially inside the writer's critical section.  The
:class:`CommitPipeline` splits that monolith into four explicit phases
with per-phase wall-clock accounting:

- **plan** — the foreground phases (validate → ΔR), still under the
  write lock so the plan cannot go stale before its commit;
- **mutate** — ΔR/ΔV application plus the Δ(M,L) repair; the emitted
  :class:`~repro.subscribe.delta.ViewEvent` stream is *collected* into a
  :class:`CommitRecord` instead of dispatched to the registry/hub inline
  (raw ``updater.add_observer`` observers still run inline — they are an
  engine-internal hook with mid-batch ``deferred`` semantics);
- **maintain** — the record is sealed (one coalesced, generation-stamped
  event per at-rest generation) and the subscription registry runs its
  *batched* decision pass (:meth:`SubscriptionRegistry.apply_batched`)
  — still under the lock, so readers can never observe generation ``g``
  with stale subscriptions;
- **publish** — changefeed fan-out and consumer delivery run *after the
  write lock is released*, fenced by a ticket so concurrent writers
  publish in commit order.  Consumers therefore only ever see generation
  ``g`` after maintenance for ``g`` completed, and a slow consumer
  (``backpressure='block_writer'``) delays the *publisher*, not the
  whole critical section.

The pipeline is installed by the service façade when
``ViewConfig(commit_pipeline=True)`` (the default); ``False`` restores
the legacy single-phase critical section (the pre-refactor baseline the
``pipeline`` benchmark experiment measures against).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.subscribe.delta import ViewEvent, coalesce

#: The four pipeline phases, in commit order.
PHASES = ("plan", "mutate", "maintain", "publish")


class CommitRecord:
    """One commit's sealed output: events, records and phase timings.

    While a pipeline scope is open on the writer thread, every event the
    updater emits is collected here.  :meth:`seal` folds them into a
    single generation-stamped event (mid-batch ``deferred`` events
    coalesce with their session's flush event, exactly as the registry
    and hub used to do internally), after which the record is immutable
    in spirit: ``event`` is what maintenance consumed and fan-out
    delivered.
    """

    __slots__ = ("generation", "events", "event", "timings", "_sealed")

    def __init__(self) -> None:
        self.generation = -1
        """Generation of the sealed event (-1 until sealed non-empty)."""
        self.events: list[ViewEvent] = []
        """Raw events collected while the scope was open (in emit order,
        ``deferred`` mid-batch events included)."""
        self.event: ViewEvent | None = None
        """The sealed, coalesced event (``None`` = nothing published)."""
        self.timings: dict[str, float] = {}
        """Per-phase wall-clock seconds (plus ``lock_wait`` and
        ``lock_hold``)."""
        self._sealed = False

    @property
    def sealed(self) -> bool:
        """Whether :meth:`seal` has run."""
        return self._sealed

    @property
    def nodes(self):
        """Node-interning records of the sealed event (wire side channel)."""
        return self.event.nodes if self.event is not None else ()

    @property
    def closure(self):
        """Closure pair-delta of the sealed event (``None`` = not captured)."""
        return self.event.closure if self.event is not None else None

    @contextmanager
    def phase(self, name: str):
        """Time a code block into ``timings[name]`` (accumulating)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.timings[name] = (
                self.timings.get(name, 0.0) + time.perf_counter() - start
            )

    def seal(self) -> ViewEvent | None:
        """Fold the collected events into one at-rest event.

        A single non-deferred event passes through untouched (byte
        identical to the legacy inline dispatch); a batch's deferred
        events coalesce with the flush event.  Returns the sealed event,
        or ``None`` when the scope emitted nothing (aborted plans,
        observer-less services).
        """
        if self._sealed:
            return self.event
        self._sealed = True
        if not self.events:
            return None
        if len(self.events) == 1 and not self.events[0].deferred:
            self.event = self.events[0]
        else:
            self.event = coalesce(self.events)
        self.generation = self.event.generation
        return self.event

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "sealed" if self.event is not None else "open"
        return (
            f"CommitRecord({state} gen={self.generation} "
            f"events={len(self.events)})"
        )


class CommitPipeline:
    """Owns phase ordering, generation fencing and per-phase timings.

    One instance per :class:`~repro.service.facade.ViewService`.  The
    façade routes every write through :meth:`scope`; the updater routes
    emitted events into the open scope's :class:`CommitRecord` via the
    sink protocol (:meth:`collect`/:meth:`owns`) instead of dispatching
    to the registry/hub observers inline.
    """

    def __init__(self, lock, updater, registry, hub, metrics=None):
        from repro.metrics import NULL_METRICS

        metrics = metrics if metrics is not None else NULL_METRICS
        self._lock = lock
        self.updater = updater
        self.registry = registry
        self.hub = hub
        self._m_commits = metrics.counter(
            "repro_commits_total",
            "Completed write scopes (aborted plans included).",
        )
        self._m_sealed = metrics.counter(
            "repro_commit_records_sealed_total",
            "Write scopes that sealed and published a non-empty event.",
        )
        self._m_commits.inc(0)  # materialize at 0 (empty families
        self._m_sealed.inc(0)   # are omitted from the exposition)
        self._m_phase = metrics.histogram(
            "repro_commit_phase_seconds",
            "Per-phase commit latency (plan/mutate/maintain/publish).",
        )
        self._m_lock_wait = metrics.histogram(
            "repro_lock_wait_seconds",
            "Time writers waited to acquire the write lock.",
        )
        self._m_lock_hold = metrics.histogram(
            "repro_lock_hold_seconds",
            "Time the write lock was held per commit (publish excluded).",
        )
        self._local = threading.local()
        self._turn_cond = threading.Condition()
        self._next_ticket = 0
        self._turn = 0
        self._stats_mutex = threading.Lock()
        self.commits = 0
        """Completed top-level scopes (aborted plans included)."""
        self.records_sealed = 0
        """Scopes that sealed a non-empty event (i.e. published)."""
        self.lock_wait_seconds = 0.0
        """Cumulative time writers waited to acquire the write lock."""
        self.lock_hold_seconds = 0.0
        """Cumulative time the write lock was held (plan + mutate +
        maintain; publish runs off the lock)."""
        self.phase_seconds: dict[str, float] = dict.fromkeys(PHASES, 0.0)
        """Cumulative per-phase wall-clock seconds."""
        self.last: dict = {}
        """The most recent scope's timings (debug/benchmark aid)."""

    # -- the sink protocol (called by the updater) ---------------------------------

    def collect(self, event: ViewEvent) -> bool:
        """Buffer ``event`` into the open scope's record, if any.

        Returns True when a scope is active on the calling thread (the
        updater then skips the registry/hub observers — maintenance and
        fan-out run from the sealed record instead); False routes the
        event through the legacy inline dispatch (direct updater use:
        ``rebuild()``, bare ``apply_base_update``, engine tests).
        """
        record = getattr(self._local, "record", None)
        if record is None:
            return False
        record.events.append(event)
        return True

    def owns(self, observer) -> bool:
        """Whether ``observer`` is the registry's or hub's commit hook
        (those are replaced by the maintain/publish phases in scope)."""
        return observer == self.registry.handle or observer == self.hub.handle

    @property
    def active(self) -> bool:
        """Whether a pipeline scope is open on the calling thread."""
        return getattr(self._local, "record", None) is not None

    # -- the write scope -----------------------------------------------------------

    @contextmanager
    def scope(self):
        """Open a staged write section; yields the :class:`CommitRecord`.

        Acquire the write lock, run the body (plan + mutate), then —
        still under the lock — seal the record, run the registry's
        batched maintenance and stage changefeed fan-out; release the
        lock and deliver to consumers in ticket (= commit) order.  The
        seal/maintain/publish tail runs even when the body raises
        (a strict-mode batch failure has already flushed its session and
        emitted the flush event before the exception propagates).

        Reentrant per thread: a nested scope (``service.apply`` inside
        ``service.batch()``) joins the outer record.
        """
        local = self._local
        if getattr(local, "depth", 0):
            local.depth += 1
            try:
                yield local.record
            finally:
                local.depth -= 1
            return
        record = CommitRecord()
        staged = None
        ticket: int | None = None
        wait_start = time.perf_counter()
        try:
            with self._lock.write():
                acquired = time.perf_counter()
                record.timings["lock_wait"] = acquired - wait_start
                local.depth, local.record = 1, record
                try:
                    yield record
                finally:
                    local.depth, local.record = 0, None
                    event = record.seal()
                    if event is not None:
                        with record.phase("maintain"):
                            self.registry.apply_batched(event)
                        staged = self.hub.stage(event)
                        if staged is not None and staged.consumers:
                            ticket = self._take_ticket()
                    record.timings["lock_hold"] = (
                        time.perf_counter() - acquired
                    )
        finally:
            if ticket is not None:
                with record.phase("publish"):
                    self._publish(ticket, staged)
            self._account(record)

    # -- the publish phase (off the lock) --------------------------------------------

    def _take_ticket(self) -> int:
        with self._turn_cond:
            ticket = self._next_ticket
            self._next_ticket += 1
            return ticket

    def _publish(self, ticket: int, staged) -> None:
        """Deliver in commit order, outside the writer's critical section.

        The ticket fence keeps concurrent writers' deliveries ordered;
        the updater's observer guard stays raised on this thread so a
        consumer callback writing back into the service still raises
        :class:`~repro.errors.PlanError` (the lock is free by now — the
        guard, not the lock, enforces the no-reentrancy contract).
        """
        with self._turn_cond:
            self._turn_cond.wait_for(lambda: self._turn == ticket)
        try:
            with self.updater._observer_section():
                self.hub.deliver(staged)
        finally:
            with self._turn_cond:
                self._turn += 1
                self._turn_cond.notify_all()

    # -- accounting -------------------------------------------------------------------

    def _account(self, record: CommitRecord) -> None:
        timings = record.timings
        hold = timings.get("lock_hold", 0.0)
        timings.setdefault(
            "mutate",
            max(
                0.0,
                hold
                - timings.get("plan", 0.0)
                - timings.get("maintain", 0.0),
            ),
        )
        with self._stats_mutex:
            self.commits += 1
            if record.event is not None:
                self.records_sealed += 1
            self.lock_wait_seconds += timings.get("lock_wait", 0.0)
            self.lock_hold_seconds += hold
            for name in PHASES:
                self.phase_seconds[name] += timings.get(name, 0.0)
            self.last = {"generation": record.generation, **timings}
        self._m_commits.inc()
        if record.event is not None:
            self._m_sealed.inc()
        self._m_lock_wait.observe(timings.get("lock_wait", 0.0))
        self._m_lock_hold.observe(hold)
        for name in PHASES:
            if name in timings:
                self._m_phase.labels(phase=name).observe(timings[name])

    def stats(self) -> dict:
        """JSON-safe pipeline counters (for ``service.stats()``)."""
        with self._stats_mutex:
            return {
                "commits": self.commits,
                "records_sealed": self.records_sealed,
                "lock_wait_seconds": self.lock_wait_seconds,
                "lock_hold_seconds": self.lock_hold_seconds,
                "phase_seconds": dict(self.phase_seconds),
                "last": dict(self.last),
            }
