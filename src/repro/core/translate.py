"""Algorithms Xinsert and Xdelete (paper, Figs. 5 and 6).

A single XML update maps to a *group* update ``ΔV`` over the edge
relations of the DAG coding:

- **Xinsert** emits one edge insertion per internal edge of the newly
  published subtree ``ST(A, t)`` (each stored once regardless of how many
  times the subtree will occur) plus one connecting edge ``(u, r_A)`` per
  selected node ``u ∈ r[[p]]``;
- **Xdelete** emits one edge deletion per ``Ep(r)`` pair — the subtree
  itself is *not* removed (it may be shared); disconnected remains are
  garbage-collected later by the maintenance pass.

The revised side-effect semantics of Section 2 comes for free: nodes are
interned by ``(type, $A)``, so "every element with the same type and
semantic attribute" is literally the same node, and the set semantics of
the edge relations stores a shared subtree exactly once.
"""

from __future__ import annotations

from repro.atg.publisher import SubtreeResult
from repro.core.dag_eval import EvalResult
from repro.views.store import ViewDelta, ViewStore


def xinsert(
    store: ViewStore, targets: list[int], subtree: SubtreeResult
) -> ViewDelta:
    """Algorithm Xinsert: ``ΔV`` for ``insert (A, t) into p``.

    ``targets`` is ``r[[p]]``; ``subtree`` is the published ``ST(A, t)``
    (its internal edges are new; edges below already-interned nodes are
    shared and already stored).
    """
    delta = ViewDelta()
    for parent_type, parent, child_type, child in subtree.edges:
        delta.insert(parent_type, child_type, parent, child)
    root_type = store.type_of(subtree.root)
    for target in targets:
        if store.has_edge(target, subtree.root):
            continue  # set semantics: the edge already exists
        delta.insert(store.type_of(target), root_type, target, subtree.root)
    return delta


def xdelete(store: ViewStore, result: EvalResult) -> ViewDelta:
    """Algorithm Xdelete: ``ΔV`` for ``delete p``.

    One edge deletion per distinct ``Ep(r)`` pair.
    """
    delta = ViewDelta()
    seen: set[tuple[int, int]] = set()
    for parent, child, _ in result.ep:
        if (parent, child) in seen:
            continue
        seen.add((parent, child))
        delta.delete(
            store.type_of(parent), store.type_of(child), parent, child
        )
    return delta
