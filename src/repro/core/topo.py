"""The topological order ``L`` (paper, Section 3.1).

``L`` lists every distinct node of the DAG such that *u precedes v only
if u is not an ancestor of v* — descendants come first, the root last.
The bottom-up filter pass iterates ``L`` forward (children before
parents); Algorithm Reach iterates it backward (parents before children).

The class also provides the primitive the maintenance algorithms build
on: ``swap(u, v)`` (paper, Section 3.4) which, after inserting edge
``(u, v)`` when ``u`` currently precedes ``v``, moves ``v`` and the
descendants of ``v`` lying between them to just before ``u``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.errors import CycleError, ReproError
from repro.views.store import ViewStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.index import ReachabilityIndex


class TopoOrder:
    """A maintained topological order over node ids."""

    def __init__(self, order: list[int] | None = None):
        self._list: list[int] = list(order) if order else []
        self._pos: dict[int, int] = {n: i for i, n in enumerate(self._list)}
        if len(self._pos) != len(self._list):
            raise ReproError("duplicate nodes in topological order")

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_store(cls, store: ViewStore) -> "TopoOrder":
        """Compute ``L`` from scratch in ``O(|V|)`` (Kahn, reversed)."""
        return cls(_toposort(store))

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._list)

    def __iter__(self) -> Iterator[int]:
        """Forward iteration: descendants before ancestors."""
        return iter(self._list)

    def __contains__(self, node: int) -> bool:
        return node in self._pos

    def backward(self) -> Iterator[int]:
        """Backward iteration: ancestors before descendants."""
        return reversed(self._list)

    def position(self, node: int) -> int:
        try:
            return self._pos[node]
        except KeyError:
            raise ReproError(f"node {node} not in topological order") from None

    def precedes(self, u: int, v: int) -> bool:
        return self.position(u) < self.position(v)

    def as_list(self) -> list[int]:
        return list(self._list)

    def sort_nodes(self, nodes) -> list[int]:
        """Sort the given nodes by their position in ``L``."""
        return sorted(nodes, key=self.position)

    # -- mutation ------------------------------------------------------------------

    def append(self, node: int) -> None:
        """Add a new node at the end (as an ancestor-most element)."""
        if node in self._pos:
            raise ReproError(f"node {node} already in topological order")
        self._pos[node] = len(self._list)
        self._list.append(node)

    def insert_front(self, node: int) -> None:
        """Add a new node at the front (as a descendant-most element)."""
        if node in self._pos:
            raise ReproError(f"node {node} already in topological order")
        self._list.insert(0, node)
        self._reindex(0)

    def insert_before(self, node: int, target: int) -> None:
        """Insert a new node immediately before ``target``."""
        self.insert_at(node, self.position(target))

    def insert_at(self, node: int, index: int) -> None:
        """Insert a new node at position ``index``."""
        if node in self._pos:
            raise ReproError(f"node {node} already in topological order")
        index = max(0, min(index, len(self._list)))
        self._list.insert(index, node)
        self._reindex(index)

    def remove(self, node: int) -> None:
        """Remove a node.

        Removal never invalidates the order of the remaining elements
        (paper, Section 3.4).
        """
        pos = self.position(node)
        del self._list[pos]
        del self._pos[node]
        self._reindex(pos)

    def remove_many(self, nodes: Iterable[int]) -> None:
        """Remove several nodes with a single rebuild/reindex pass.

        Equivalent to calling :meth:`remove` per node (removal never
        invalidates the order of the survivors) but O(|L|) total
        instead of O(|L|) per node.
        """
        dead = set(nodes)
        if not dead:
            return
        for node in dead:
            if node not in self._pos:
                raise ReproError(f"node {node} not in topological order")
        start = min(self._pos[node] for node in dead)
        self._list = [n for n in self._list if n not in dead]
        for node in dead:
            del self._pos[node]
        self._reindex(start)

    def swap(self, u: int, v: int, descendants_of_v) -> int:
        """Repair ``L`` after inserting edge ``(u, v)``.

        Precondition: ``u`` precedes ``v``.  Moves ``{v} ∪ (L[u:v] ∩
        desc(v))`` immediately before ``u``, preserving their relative
        order.  Returns the number of nodes moved.
        """
        pos_u = self.position(u)
        pos_v = self.position(v)
        if pos_v < pos_u:
            return 0
        segment = self._list[pos_u : pos_v + 1]
        moving = [n for n in segment if n == v or n in descendants_of_v]
        staying = [n for n in segment if n != v and n not in descendants_of_v]
        self._list[pos_u : pos_v + 1] = moving + staying
        self._reindex(pos_u)
        return len(moving)

    def _reindex(self, start: int) -> None:
        if start == 0:
            self._pos = dict(zip(self._list, range(len(self._list))))
        else:
            self._pos.update(
                zip(self._list[start:], range(start, len(self._list)))
            )

    # -- validation (test helper) ------------------------------------------------------

    def is_valid_for(
        self, is_ancestor: "Callable[[int, int], bool] | ReachabilityIndex"
    ) -> bool:
        """Check the invariant: u precedes v ⇒ u is not an ancestor of v.

        Accepts either an ``is_ancestor(u, v)`` predicate or a
        :class:`~repro.index.ReachabilityIndex` directly.
        """
        if not callable(is_ancestor):
            is_ancestor = is_ancestor.is_ancestor
        for i, u in enumerate(self._list):
            for v in self._list[i + 1 :]:
                if is_ancestor(u, v):
                    return False
        return True


def _toposort(store: ViewStore) -> list[int]:
    """Descendants-first topological sort of the store's DAG (all nodes)."""
    indegree: dict[int, int] = {}
    for node in store.nodes():
        indegree[node] = 0
    for node in store.nodes():
        for child in store.children_of(node):
            indegree[child] += 1
    # Kahn's algorithm ancestors-first, then reverse.  Sorted seeds keep
    # the result deterministic.
    ready = sorted((n for n, d in indegree.items() if d == 0), reverse=True)
    order: list[int] = []
    while ready:
        node = ready.pop()
        order.append(node)
        inserted: list[int] = []
        for child in store.children_of(node):
            indegree[child] -= 1
            if indegree[child] == 0:
                inserted.append(child)
        for child in sorted(inserted, reverse=True):
            ready.append(child)
    if len(order) != len(indegree):
        raise CycleError("view store graph contains a cycle")
    order.reverse()
    return order
