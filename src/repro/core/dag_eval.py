"""Two-pass XPath evaluation on DAGs with side-effect detection (§3.2).

Given an XPath ``p``, the relational DAG view ``V`` (a
:class:`~repro.views.store.ViewStore`), the topological order ``L`` and
the reachability matrix ``M``, the evaluator computes:

- ``r[[p]]`` — the selected nodes (with their types);
- ``Ep(r)`` — for every selected node ``v``, the parent edges ``(u, v)``
  through which ``p`` reaches ``v`` (needed by deletions);
- ``S`` — the side-effect set: nodes through which an *unselected*
  occurrence of an affected node is reachable.  ``S ≠ ∅`` iff the update
  has XML side effects under the paper's revised semantics.

**Bottom-up pass.**  Every filter sub-expression of ``p`` is evaluated at
every node by dynamic programming over ``L`` (children before parents):
``val(q, v)`` — does ``q`` hold at ``v`` — and, for path suffixes behind
a ``//``, ``desc(q, v)`` — does ``q`` hold at some descendant-or-self of
``v``.  Each node is visited once per sub-expression, giving the paper's
``O(|p|·|V|)`` bound without recursion over the (possibly deep) data.

**Top-down pass.**  The step contexts ``C0 ⊇ root, C1, ..., Cn`` are
computed left to right; child steps record their arrival edges, ``//``
steps their *region* (descendant-or-self closure of the previous
context, fetched from ``M``).

**Side-effect detection.**  The update affects node ``w`` (the selected
node for insertions; the modified parent for deletions).  There is a side
effect iff some root-to-``w`` path is not matched by the relevant prefix
of ``p``.  The detector walks *backwards* from the affected nodes through
the recorded arrival structure; any incoming edge from outside the
matched structure witnesses an unmatched occurrence and its source node
is added to ``S``.  This refines the paper's per-step rule (which flags
parents of every intermediate context) to the nodes actually affected,
while keeping the same single-pass complexity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.topo import TopoOrder
from repro.index import ReachabilityIndex
from repro.views.store import ViewStore
from repro.xpath.ast import (
    DescendantStep,
    ExistsPath,
    FAnd,
    FNot,
    FOr,
    Filter,
    FilterStep,
    LabelStep,
    LabelTest,
    ValueEq,
    WildcardStep,
    XPath,
)

# An arrival level: the step index at which a node sits in the matched
# structure.  Level i means "member of context C_i"; for a ``//`` step i,
# region members that are not in C_{i-1} also live at level i.
_PathKey = tuple[XPath, str | None]


@dataclass
class EvalResult:
    """Outcome of evaluating an XPath on the DAG."""

    path: XPath
    targets: list[int] = field(default_factory=list)
    ep: list[tuple[int, int, int]] = field(default_factory=list)
    """``Ep(r)`` as (parent, child, parent_level) triples."""
    side_effects: set[int] = field(default_factory=set)
    contexts: list[list[int]] = field(default_factory=list)

    @property
    def has_side_effects(self) -> bool:
        return bool(self.side_effects)

    def ep_edges(self) -> list[tuple[int, int]]:
        return [(u, v) for u, v, _ in self.ep]


class DagXPathEvaluator:
    """Evaluator bound to one (store, topo, reachability) triple.

    ``reach`` may be ``None`` when the reachability index is stale or
    absent (batched update sessions defer its repair): descendant
    regions are then computed by walking the store's edges instead of
    reading ``M`` rows — same results, higher per-query cost.
    """

    def __init__(
        self,
        store: ViewStore,
        topo: TopoOrder,
        reach: ReachabilityIndex | None,
    ):
        self.store = store
        self.topo = topo
        self.reach = reach

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def evaluate(self, path: XPath, mode: str = "insert") -> EvalResult:
        """Evaluate ``path``; ``mode`` selects whose occurrences the
        side-effect check protects ('insert': the selected nodes;
        'delete': the modified parents from ``Ep``)."""
        if self.store.root_id is None:
            raise ValueError("store has no root")
        filter_values = self._bottom_up(path)
        result = self._top_down(path, filter_values)
        self._detect_side_effects(path, result, filter_values, mode)
        return result

    def evaluate_from(
        self, path: XPath, start: list[int] | None = None
    ) -> EvalResult:
        """Targets-and-contexts evaluation, optionally from a mid-path
        context instead of the root.

        The subscription engine's entry point: ``path`` may be a step
        *suffix* of a subscribed query and ``start`` the cached context
        the suffix re-evaluates from.  Filters without ``//`` inside
        them are evaluated lazily (memoized, on demand at the nodes the
        top-down pass actually consults) so the cost tracks the
        contexts, not ``|V|``; filters containing ``//`` fall back to
        the bottom-up sweep, restricted to the descendant cone of
        ``start`` when one is given.  ``Ep`` and side-effect detection
        need the full root-anchored arrival structure, so neither is
        computed — ``result.ep`` / ``result.side_effects`` stay empty.
        """
        if start is None and self.store.root_id is None:
            raise ValueError("store has no root")
        program = _compile(path)
        filter_values: _FilterValues | _LazyFilterValues
        if not program.units:
            filter_values = _FilterValues(program)
        elif not any(
            op[0] == 3
            for ops, _ in program.path_plans
            for op in ops
        ):
            filter_values = _LazyFilterValues(program, self.store)
        else:
            sweep: list[int] | None = None
            if start is not None:
                reach = self.reach
                if reach is not None and reach.native_masks:
                    # The cone stays in mask space: one big-int OR of
                    # descendant rows, no per-node set materialization.
                    cone = reach.desc_mask_of_set(start).with_nodes(start)
                elif reach is not None:
                    cone = set(start) | reach.desc_of_set(start)
                else:
                    cone = set(start) | self.store.descendants_of(start)
                sweep = self.topo.sort_nodes(cone)  # children first
            filter_values = self._bottom_up(path, sweep, program)
        return self._top_down(
            path, filter_values, start=start, with_ep=False
        )

    # ------------------------------------------------------------------
    # Bottom-up pass: filters
    # ------------------------------------------------------------------

    def _bottom_up(
        self,
        path: XPath,
        sweep: list[int] | None = None,
        program: "_Program | None" = None,
    ) -> "_FilterValues":
        """Evaluate every filter sub-expression at every node.

        The expression set is compiled once into integer-indexed plans
        (hashing an ``XPath`` per memo access would dominate the pass),
        then a single sweep over ``L`` (children before parents) fills
        per-expression truth tables.  ``sweep`` restricts the pass to a
        descendant-closed node subset in children-first order (suffix
        re-evaluation); ``None`` sweeps the whole order.  Callers that
        already compiled the path pass its ``program``.
        """
        if program is None:
            program = _compile(path)
        values = _FilterValues(program)
        if not program.units:
            return values
        store = self.store
        children_of = store.children_of
        type_of = store.type_of
        value_of = store.value_of
        ex_tables = values.ex_tables
        dsc_tables = values.dsc_tables
        f_tables = values.f_tables
        for node in (self.topo if sweep is None else sweep):
            # descendants (children) first
            children = children_of(node)
            for kind, index in program.units:
                if kind == "path":
                    ops, value = program.path_plans[index]
                    ex_rows = ex_tables[index]
                    dsc_rows = dsc_tables[index]
                    for i in range(len(ops), -1, -1):
                        if i == len(ops):
                            ex = True if value is None else (
                                value_of(node) == value
                            )
                        else:
                            op = ops[i]
                            code = op[0]
                            if code == 0:  # label step
                                nxt = ex_rows[i + 1]
                                label = op[1]
                                ex = any(
                                    type_of(c) == label and nxt[c]
                                    for c in children
                                )
                            elif code == 1:  # wildcard
                                nxt = ex_rows[i + 1]
                                ex = any(nxt[c] for c in children)
                            elif code == 2:  # filter step
                                ex = (
                                    f_tables[op[1]][node]
                                    and ex_rows[i + 1][node]
                                )
                            else:  # code == 3: descendant-or-self
                                ex = dsc_rows[i + 1][node]
                        ex_rows[i][node] = ex
                        row = dsc_rows[i]
                        row[node] = ex or any(row[c] for c in children)
                else:
                    op = program.filter_plans[index]
                    code = op[0]
                    if code == 0:  # label test
                        result = type_of(node) == op[1]
                    elif code == 1:  # exists/value path
                        result = ex_tables[op[1]][0][node]
                    elif code == 2:  # and
                        result = all(f_tables[k][node] for k in op[1])
                    elif code == 3:  # or
                        result = any(f_tables[k][node] for k in op[1])
                    else:  # code == 4: not
                        result = not f_tables[op[1]][node]
                    f_tables[index][node] = result
        return values

    # ------------------------------------------------------------------
    # Top-down pass: contexts, targets, Ep
    # ------------------------------------------------------------------

    def _top_down(
        self,
        path: XPath,
        memo: "_FilterValues",
        start: list[int] | None = None,
        with_ep: bool = True,
    ) -> EvalResult:
        store = self.store
        result = EvalResult(path)
        if start is None:
            root = store.root_id
            assert root is not None
            current: list[int] = [root]
        else:
            current = list(start)
        result.contexts.append(list(current))
        # Arrival structure per step: for child steps a dict node -> set
        # of parents in the previous context; for // steps the region.
        self._arrivals: list[dict[int, set[int]]] = [
            {node: set() for node in current}
        ]
        # Region per // step: a plain set, or a MaskView on mask-native
        # backends — consumers only need membership and iteration.
        self._regions: dict[int, object] = {}

        for index, step in enumerate(path.steps, start=1):
            previous = current
            prev_set = set(previous)
            arrivals: dict[int, set[int]] = {}
            if isinstance(step, (LabelStep, WildcardStep)):
                nxt: list[int] = []
                for u in previous:
                    for c in store.children_of(u):
                        if isinstance(step, LabelStep) and store.type_of(
                            c
                        ) != step.label:
                            continue
                        bucket = arrivals.get(c)
                        if bucket is None:
                            arrivals[c] = {u}
                            nxt.append(c)
                        else:
                            bucket.add(u)
                current = nxt
            elif isinstance(step, FilterStep):
                kept = [u for u in previous if memo.filter_holds(step.filter, u)]
                prev_arrivals = self._arrivals[index - 1]
                arrivals = {u: set(prev_arrivals.get(u, set())) for u in kept}
                current = kept
                # Mark pass-through so side-effect walk can skip the level.
                self._regions.pop(index, None)
            elif isinstance(step, DescendantStep):
                reach = self.reach
                if reach is not None and reach.native_masks:
                    # One big-int OR over descendant rows; the region
                    # never becomes a Python set on the fast backends.
                    region = reach.desc_mask_of_set(previous).with_nodes(
                        previous
                    )
                elif reach is not None:
                    region = prev_set | reach.desc_of_set(previous)
                else:
                    region = prev_set | self.store.descendants_of(previous)
                self._regions[index] = region
                ordered = self.topo.sort_nodes(region)
                ordered.reverse()  # ancestors first: document-like order
                for d in ordered:
                    parents_in = {
                        par for par in store.parents_of(d) if par in region
                    }
                    arrivals[d] = parents_in
                current = ordered
            else:  # pragma: no cover - exhaustive
                raise TypeError(f"unknown step {step!r}")
            self._arrivals.append(arrivals)
            result.contexts.append(list(current))
            if not current:
                break

        result.targets = list(current) if result.contexts[-1] else []
        if with_ep:
            result.ep = self._compute_ep(path, result)
        return result

    def _compute_ep(self, path: XPath, result: EvalResult) -> list[
        tuple[int, int, int]
    ]:
        """``Ep(r)``: parent edges through which ``p`` reaches the targets.

        The relevant step is the last non-filter step ``k``:
        - child step: the recorded arrival edges, parents at level k-1;
        - ``//`` step: every in-region parent (level k, still inside the
          descendant segment) plus, for self-matches, the arrivals of the
          previous level;
        - no such step (pure filter path): the targets have no parent
          edge (root selection), ``Ep = ∅``.
        Filters after ``k`` only narrow the target set.
        """
        if not result.targets:
            return []
        k = path.last_child_step_index
        if k is None:
            return []
        step = path.steps[k]
        level = k + 1  # contexts/arrivals are 1-based w.r.t. steps
        ep: list[tuple[int, int, int]] = []
        if isinstance(step, (LabelStep, WildcardStep)):
            arrivals = self._arrivals[level]
            for v in result.targets:
                for u in sorted(arrivals.get(v, ())):
                    ep.append((u, v, level - 1))
            return ep
        if isinstance(step, DescendantStep):
            region = self._regions[level]
            prev_arrivals = self._arrivals[level - 1]
            prev_context = set(result.contexts[level - 1])
            for v in result.targets:
                for u in sorted(
                    par for par in self.store.parents_of(v) if par in region
                ):
                    ep.append((u, v, level))
                if v in prev_context:
                    for u in sorted(prev_arrivals.get(v, ())):
                        ep.append((u, v, level - 1))
            return ep
        raise TypeError(f"unexpected step {step!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Side-effect detection
    # ------------------------------------------------------------------

    def _detect_side_effects(
        self, path: XPath, result: EvalResult, memo: dict, mode: str
    ) -> None:
        """Populate ``result.side_effects`` (the set ``S``).

        Walk backwards from the affected nodes through the matched
        arrival structure; every incoming DAG edge that leaves the
        matched structure witnesses an occurrence the path did not
        select, and its source node joins ``S``.
        """
        if not result.targets:
            return
        starts: list[tuple[int, int]] = []
        if mode == "insert":
            last_level = len(result.contexts) - 1
            starts = [(v, last_level) for v in result.targets]
        elif mode == "delete":
            starts = [(u, lvl) for u, _, lvl in result.ep]
            if not starts:
                return
        else:
            raise ValueError(f"unknown side-effect mode {mode!r}")

        store = self.store
        seen: set[tuple[int, int]] = set()
        stack = list(dict.fromkeys(starts))
        S = result.side_effects
        while stack:
            node, level = stack.pop()
            if (node, level) in seen:
                continue
            seen.add((node, level))
            if level <= 0:
                continue  # root level: no incoming edges to classify
            step = path.steps[level - 1]
            if isinstance(step, FilterStep):
                # Pass-through level: same node one level down.
                stack.append((node, level - 1))
                continue
            if isinstance(step, (LabelStep, WildcardStep)):
                matched_parents = self._arrivals[level].get(node, set())
                for parent in store.parents_of(node):
                    if parent in matched_parents:
                        stack.append((parent, level - 1))
                    else:
                        S.add(parent)
                continue
            if isinstance(step, DescendantStep):
                region = self._regions[level]
                prev_context = set(result.contexts[level - 1])
                in_prev = node in prev_context
                for parent in store.parents_of(node):
                    if parent in region:
                        stack.append((parent, level))
                    elif not in_prev:
                        S.add(parent)
                if in_prev:
                    stack.append((node, level - 1))
                continue
            raise TypeError(f"unknown step {step!r}")  # pragma: no cover


class _Program:
    """Compiled filter expressions of one query (integer-indexed plans).

    - ``path_plans[j] = (ops, value)``: a filter path with an optional
      terminal value test; each op is ``(0, label)`` / ``(1,)`` wildcard /
      ``(2, filter_index)`` / ``(3,)`` descendant-or-self.
    - ``filter_plans[k]``: ``(0, label)`` label test, ``(1, path_index)``
      path existence (incl. value tests), ``(2, (k...))`` and,
      ``(3, (k...))`` or, ``(4, k)`` not.
    - ``units``: the evaluation order — inner expressions first, so the
      per-node sweep can run plans in list order.
    """

    def __init__(self) -> None:
        self.units: list[tuple[str, int]] = []
        self.path_plans: list[tuple[list[tuple], str | None]] = []
        self.filter_plans: list[tuple] = []
        self.path_index: dict[_PathKey, int] = {}
        self.filter_index: dict[Filter, int] = {}


class _FilterValues:
    """Per-node truth tables for every compiled expression."""

    def __init__(self, program: _Program):
        self.program = program
        self.ex_tables = [
            [dict() for _ in range(len(ops) + 1)]
            for ops, _ in program.path_plans
        ]
        self.dsc_tables = [
            [dict() for _ in range(len(ops) + 1)]
            for ops, _ in program.path_plans
        ]
        self.f_tables = [dict() for _ in program.filter_plans]

    def filter_holds(self, filt: Filter, node: int) -> bool:
        index = self.program.filter_index.get(filt)
        if index is None:  # pragma: no cover - compiler registers all
            return False
        return self.f_tables[index].get(node, False)


class _LazyFilterValues:
    """On-demand, memoized filter truth — for filters without ``//``.

    Presents the same ``filter_holds`` interface as
    :class:`_FilterValues` but evaluates each (expression, node) pair
    only when the top-down pass asks for it, recursing over the *plan*
    (bounded by the filter's step count) rather than the data.  Plans
    containing descendant-or-self ops (code 3) would recurse over the
    possibly deep DAG, so the compiler keeps those on the bottom-up
    sweep instead.
    """

    def __init__(self, program: _Program, store):
        self.program = program
        self.store = store
        self._f_memo: list[dict[int, bool]] = [
            {} for _ in program.filter_plans
        ]
        self._ex_memo: list[list[dict[int, bool]]] = [
            [{} for _ in range(len(ops) + 1)]
            for ops, _ in program.path_plans
        ]

    def filter_holds(self, filt: Filter, node: int) -> bool:
        index = self.program.filter_index.get(filt)
        if index is None:  # pragma: no cover - compiler registers all
            return False
        return self._filter(index, node)

    def _filter(self, index: int, node: int) -> bool:
        memo = self._f_memo[index]
        cached = memo.get(node)
        if cached is not None:
            return cached
        plan = self.program.filter_plans[index]
        code = plan[0]
        if code == 0:  # label test
            result = self.store.type_of(node) == plan[1]
        elif code == 1:  # exists/value path
            result = self._ex(plan[1], 0, node)
        elif code == 2:  # and
            result = all(self._filter(k, node) for k in plan[1])
        elif code == 3:  # or
            result = any(self._filter(k, node) for k in plan[1])
        else:  # code == 4: not
            result = not self._filter(plan[1], node)
        memo[node] = result
        return result

    def _ex(self, pindex: int, i: int, node: int) -> bool:
        memo = self._ex_memo[pindex][i]
        cached = memo.get(node)
        if cached is not None:
            return cached
        ops, value = self.program.path_plans[pindex]
        if i == len(ops):
            result = (
                True if value is None
                else self.store.value_of(node) == value
            )
        else:
            op = ops[i]
            code = op[0]
            if code == 0:  # label step
                label = op[1]
                type_of = self.store.type_of
                result = any(
                    type_of(c) == label and self._ex(pindex, i + 1, c)
                    for c in self.store.children_of(node)
                )
            elif code == 1:  # wildcard
                result = any(
                    self._ex(pindex, i + 1, c)
                    for c in self.store.children_of(node)
                )
            elif code == 2:  # filter step
                result = (
                    self._filter(op[1], node)
                    and self._ex(pindex, i + 1, node)
                )
            else:  # pragma: no cover - excluded by the caller
                raise AssertionError(
                    "descendant plans require the bottom-up sweep"
                )
        memo[node] = result
        return result


def _compile(path: XPath) -> _Program:
    program = _Program()
    for step in path.steps:
        if isinstance(step, FilterStep):
            _compile_filter(step.filter, program)
    return program


def _compile_path(path: XPath, value: str | None, program: _Program) -> int:
    key: _PathKey = (path, value)
    existing = program.path_index.get(key)
    if existing is not None:
        return existing
    ops: list[tuple] = []
    for step in path.steps:
        if isinstance(step, LabelStep):
            ops.append((0, step.label))
        elif isinstance(step, WildcardStep):
            ops.append((1,))
        elif isinstance(step, FilterStep):
            ops.append((2, _compile_filter(step.filter, program)))
        elif isinstance(step, DescendantStep):
            ops.append((3,))
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown step {step!r}")
    index = len(program.path_plans)
    program.path_plans.append((ops, value))
    program.path_index[key] = index
    program.units.append(("path", index))
    return index


def _compile_filter(filt: Filter, program: _Program) -> int:
    existing = program.filter_index.get(filt)
    if existing is not None:
        return existing
    if isinstance(filt, LabelTest):
        plan: tuple = (0, filt.label)
    elif isinstance(filt, ExistsPath):
        plan = (1, _compile_path(filt.path, None, program))
    elif isinstance(filt, ValueEq):
        plan = (1, _compile_path(filt.path, filt.value, program))
    elif isinstance(filt, FAnd):
        plan = (2, tuple(_compile_filter(p, program) for p in filt.parts))
    elif isinstance(filt, FOr):
        plan = (3, tuple(_compile_filter(p, program) for p in filt.parts))
    elif isinstance(filt, FNot):
        plan = (4, _compile_filter(filt.part, program))
    else:  # pragma: no cover - exhaustive
        raise TypeError(f"unknown filter {filt!r}")
    index = len(program.filter_plans)
    program.filter_plans.append(plan)
    program.filter_index[filt] = index
    program.units.append(("filter", index))
    return index
