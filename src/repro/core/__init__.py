"""The paper's core machinery (Sections 3.1–3.4 and the Fig. 3 pipeline).

- :mod:`repro.core.topo` — the topological order ``L`` (descendants
  before ancestors) with incremental moves;
- :mod:`repro.core.reachability` — the reachability matrix ``M`` and
  Algorithm **Reach** (Fig. 4);
- :mod:`repro.core.dag_eval` — the two-pass XPath evaluator on DAGs with
  side-effect detection (Section 3.2);
- :mod:`repro.core.translate` — Algorithms **Xinsert** / **Xdelete**
  (Figs. 5–6), translating ``ΔX`` to ``ΔV``;
- :mod:`repro.core.maintenance` — Algorithms **Δ(M,L)insert** /
  **Δ(M,L)delete** (Figs. 7–8), incremental maintenance of ``M`` and
  ``L`` plus the garbage-collection feed ``Δ'V``;
- :mod:`repro.core.updater` — the end-to-end framework
  (:class:`~repro.core.updater.XMLViewUpdater`).
"""

from repro.core.topo import TopoOrder
from repro.core.reachability import ReachabilityMatrix, compute_reach
from repro.core.dag_eval import DagXPathEvaluator, EvalResult
from repro.core.translate import xinsert, xdelete
from repro.core.maintenance import maintain_insert, maintain_delete
from repro.core.updater import (
    BatchReport,
    PlanState,
    SideEffectPolicy,
    UpdateOutcome,
    UpdatePlan,
    UpdateSession,
    XMLViewUpdater,
)

__all__ = [
    "TopoOrder",
    "ReachabilityMatrix",
    "compute_reach",
    "DagXPathEvaluator",
    "EvalResult",
    "xinsert",
    "xdelete",
    "maintain_insert",
    "maintain_delete",
    "XMLViewUpdater",
    "UpdateOutcome",
    "UpdatePlan",
    "PlanState",
    "UpdateSession",
    "BatchReport",
    "SideEffectPolicy",
]
