"""Human-readable explanations of update processing.

``explain_outcome`` renders an :class:`~repro.core.updater.UpdateOutcome`
— the phases, the selected nodes, the view and base deltas, side-effect
witnesses, SAT statistics — the way a DBA would want to read an update
plan.  ``explain_views`` documents the edge-view definitions of an ATG
(their SQL, parameters, and key layout).
"""

from __future__ import annotations

from repro.core.updater import UpdateOutcome, XMLViewUpdater
from repro.relational.sqlgen import select_sql
from repro.views.registry import EdgeViewRegistry
from repro.views.store import ViewStore


def explain_outcome(
    outcome: UpdateOutcome, store: ViewStore | None = None
) -> str:
    """Render an update outcome as a multi-line report."""
    lines: list[str] = []
    status = "ACCEPTED" if outcome.accepted else "REJECTED"
    lines.append(f"{outcome.kind.upper()} — {status}")
    if outcome.reason:
        lines.append(f"  reason: {outcome.reason}")
    if outcome.targets:
        rendered = [_node(store, n) for n in outcome.targets[:8]]
        suffix = " ..." if len(outcome.targets) > 8 else ""
        lines.append(
            f"  r[[p]]: {len(outcome.targets)} node(s): "
            + ", ".join(rendered)
            + suffix
        )
    if outcome.side_effects:
        rendered = [_node(store, n) for n in sorted(outcome.side_effects)[:8]]
        lines.append(
            f"  side effects via {len(outcome.side_effects)} node(s): "
            + ", ".join(rendered)
        )
    if outcome.delta_v is not None:
        lines.append(f"  ΔV: {len(outcome.delta_v)} edge operation(s)")
        for op in outcome.delta_v.ops[:10]:
            lines.append(
                f"    {op.kind:6s} {op.relation}({op.parent} -> {op.child})"
            )
        if len(outcome.delta_v) > 10:
            lines.append(f"    ... {len(outcome.delta_v) - 10} more")
    if outcome.delta_r is not None:
        lines.append(f"  ΔR: {len(outcome.delta_r)} base operation(s)")
        for op in outcome.delta_r.ops[:10]:
            lines.append(f"    {op.kind:6s} {op.relation}{op.row}")
        if len(outcome.delta_r) > 10:
            lines.append(f"    ... {len(outcome.delta_r) - 10} more")
    if outcome.stats:
        stats = ", ".join(f"{k}={v}" for k, v in sorted(outcome.stats.items()))
        lines.append(f"  stats: {stats}")
    if outcome.timings:
        total = outcome.total_time
        lines.append(f"  timings ({total * 1e3:.2f} ms total):")
        for phase in (
            "validate", "xpath", "translate_v", "translate_r", "apply",
            "maintain",
        ):
            if phase in outcome.timings:
                seconds = outcome.timings[phase]
                share = 100.0 * seconds / total if total else 0.0
                lines.append(
                    f"    {phase:12s} {seconds * 1e3:8.3f} ms ({share:4.1f}%)"
                )
    return "\n".join(lines)


def _node(store: ViewStore | None, node: int) -> str:
    if store is None or not store.has_node(node):
        return f"#{node}"
    return f"{store.type_of(node)}{store.sem_of(node)}"


def explain_views(registry: EdgeViewRegistry) -> str:
    """Render every edge-view definition of an ATG."""
    lines: list[str] = []
    for view in registry.views():
        lines.append(f"{view.name}  (parent params: {view.param_names})")
        lines.append(f"  child columns: {view.child_columns}")
        for alias, (relation, slots) in sorted(view.key_layout.items()):
            attrs = [attr for _, attr in slots]
            lines.append(f"  source {alias} = {relation}, key {tuple(attrs)}")
        lines.append(f"  SQL: {select_sql(view.query)}")
    return "\n".join(lines)


def explain_state(updater: XMLViewUpdater) -> str:
    """One-paragraph summary of an updater's current state."""
    store = updater.store
    return (
        f"view '{updater.atg.root}': {store.num_nodes} nodes, "
        f"{store.num_edges} edges (sharing {store.sharing_rate():.1%}); "
        f"|M| = {len(updater.reach)} pairs; |L| = {len(updater.topo)}; "
        f"base: {updater.db.size()} rows in "
        f"{len(updater.db.table_names())} relations"
    )
