"""Incremental maintenance of ``M`` and ``L`` (paper, Figs. 7 and 8).

Both algorithms run "in the background" in the paper's framework: they do
not gate the user-visible update, but the structures must be consistent
before the next update is processed.  The updater invokes them right
after applying ``ΔV`` and times them separately (the benchmarks report
this phase on its own, as the paper's plots do).  Batched update
sessions (:meth:`repro.core.updater.XMLViewUpdater.batch`) call the
split-out pieces instead: ``L`` placement eagerly per update, one
deferred ``M`` repair for the whole batch.

**Δ(M,L)insert** (after ``insert (A, t) into p``):

1. reachability *inside* the inserted subtree DAG via a localized
   Algorithm Reach (new pairs only — shared regions already have theirs);
2. cross pairs: every node of ``anc*(r[[p]])`` becomes an ancestor of
   every node of ``ST(A, t)``;
3. ``L``: new nodes are placed just after their highest-positioned
   children (children-first processing makes this safe), then the new
   connecting edges ``(u, r_A)`` are repaired with ``swap`` exactly as in
   the paper (lines 12–13).

All ``M`` writes go through the bulk operations of the pluggable
:class:`~repro.index.ReachabilityIndex` (``extend_ancestors``,
``add_cross_pairs``, ``retain_ancestors``), so each backend executes
them natively — the bitset backend does whole rows per machine word.

**Δ(M,L)delete** (after ``delete p``, with ``ΔV`` already applied):

walks ``LR = desc-or-self(r[[p]])`` ancestors-first, recomputing each
node's ancestor set from its surviving parents; nodes left with no
parents are condemned (``keep := false``), their outgoing edges become
the garbage-collection feed ``Δ'V``, and they are dropped from ``L``,
``M`` and the gen tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.atg.publisher import SubtreeResult
from repro.core.dag_eval import EvalResult
from repro.core.topo import TopoOrder
from repro.index import ReachabilityIndex
from repro.views.store import ViewDelta, ViewStore


#: A closure pair-delta: (added pairs, removed pairs) of ``M``.
PairDelta = tuple[list[tuple[int, int]], list[tuple[int, int]]]


def net_pair_deltas(deltas: list[PairDelta]) -> PairDelta:
    """Replay a sequence of pair-deltas into one net ``(added, removed)``.

    A composite update runs several repairs (insert repairs, then the
    closing delete pass); a pair added by one and removed by the next
    cancels out, so the net delta describes exactly the start-to-end
    closure change.  Both output lists are sorted.
    """
    added: set[tuple[int, int]] = set()
    removed: set[tuple[int, int]] = set()
    for step_added, step_removed in deltas:
        for pair in step_added:
            if pair in removed:
                removed.discard(pair)
            else:
                added.add(pair)
        for pair in step_removed:
            if pair in added:
                added.discard(pair)
            else:
                removed.add(pair)
    return sorted(added), sorted(removed)


@dataclass
class InsertMaintenance:
    """Report of a Δ(M,L)insert run."""

    added_pairs: int = 0
    moved_nodes: int = 0
    placed_nodes: int = 0
    m_seconds: float = 0.0
    """Wall time of the ``ΔM`` steps alone (the reachability-index
    repair) — the ``L`` placement and swap repairs are backend-invariant
    and excluded, so backend ablations compare exactly the component
    they vary."""
    pair_delta: PairDelta | None = None
    """The exact (added, removed) closure pairs of this repair, captured
    only when requested (``capture_pairs=True``) — subscription engines
    patch ``//`` regions from it instead of re-evaluating."""


@dataclass
class DeleteMaintenance:
    """Report of a Δ(M,L)delete run."""

    removed_pairs: int = 0
    gc_delta: ViewDelta = field(default_factory=ViewDelta)
    removed_nodes: list[int] = field(default_factory=list)
    removed_info: dict[int, tuple[str, str | None]] = field(
        default_factory=dict
    )
    """(type, PCDATA value) per garbage-collected node, captured before
    removal — subscription events need child values the store no longer
    holds."""
    m_seconds: float = 0.0
    """Wall time of the ``ΔM`` steps alone (region query + retain sweep
    + node drops); store/topo surgery is backend-invariant and
    excluded."""
    pair_delta: PairDelta | None = None
    """The exact (added, removed) closure pairs of this repair, captured
    only when requested (``capture_pairs=True``)."""


def place_new_nodes(
    store: ViewStore, topo: TopoOrder, subtree: SubtreeResult
) -> int:
    """The ``L`` placement step of Δ(M,L)insert: slot the new nodes in.

    The subtree may be a DAG with diamonds, so creation order is not
    reliably children-first; compute a children-first order over the
    new nodes (Kahn on the new-node subgraph) and place each node
    immediately after its highest-positioned child.  Returns the number
    of nodes placed.
    """
    new_set = set(subtree.new_nodes)
    pending = {
        node: sum(1 for c in store.children_of(node) if c in new_set)
        for node in subtree.new_nodes
    }
    ready = sorted(
        (node for node, count in pending.items() if count == 0), reverse=True
    )
    placed_order: list[int] = []
    while ready:
        node = ready.pop()
        placed_order.append(node)
        for parent in sorted(store.parents_of(node)):
            if parent in new_set:
                pending[parent] -= 1
                if pending[parent] == 0:
                    ready.append(parent)
    if len(placed_order) != len(new_set):  # pragma: no cover - defensive
        raise RuntimeError("cycle among newly inserted view nodes")
    for node in placed_order:
        placed = [c for c in store.children_of(node) if c in topo]
        if placed:
            pos = max(topo.position(c) for c in placed)
            topo.insert_at(node, pos + 1)
        else:
            topo.insert_front(node)
    return len(placed_order)


def insert_pairs(
    store: ViewStore,
    topo: TopoOrder,
    reach: ReachabilityIndex,
    subtree: SubtreeResult,
    targets: list[int],
) -> int:
    """The ``ΔM`` steps of Δ(M,L)insert; returns pairs added.

    Precondition: the subtree's nodes are already placed in ``topo``
    (:func:`place_new_nodes`).
    """
    st_nodes = subtree.all_nodes
    added = 0

    # -- part 1: reachability inside ST(A, t) -----------------------------------
    # Localized Reach over the subtree DAG: ancestors-first order.
    for node in reversed(topo.sort_nodes(st_nodes)):
        added += reach.extend_ancestors(
            node, (p for p in store.parents_of(node) if p in st_nodes)
        )

    # -- part 2: anc*(r[[p]]) × ST nodes ------------------------------------------
    added += reach.add_anc_closure_pairs(targets, st_nodes)
    return added


def repair_topo_after_insert(
    topo: TopoOrder,
    subtree: SubtreeResult,
    targets: list[int],
    desc_root,
) -> int:
    """Repair ``L`` for the connecting edges ``(u, r_A)`` via ``swap``.

    ``desc_root`` is any membership container over the *proper*
    descendants of the subtree root (an ``M`` row view after the pair
    update, or a store walk when ``M`` repair is deferred).  Returns the
    number of nodes moved.
    """
    moved = 0
    for target in targets:
        if topo.position(target) < topo.position(subtree.root):
            moved += topo.swap(target, subtree.root, desc_root)
    return moved


def maintain_insert(
    store: ViewStore,
    topo: TopoOrder,
    reach: ReachabilityIndex,
    subtree: SubtreeResult,
    targets: list[int],
    capture_pairs: bool = False,
) -> InsertMaintenance:
    """Algorithm Δ(M,L)insert.  Call *after* ``store.apply(ΔV)``.

    With ``capture_pairs`` the report carries the exact closure
    pair-delta of the repair (snapshot + bulk :meth:`diff`).
    """
    report = InsertMaintenance()
    snapshot = reach.copy() if capture_pairs else None
    report.placed_nodes = place_new_nodes(store, topo, subtree)
    t0 = time.perf_counter()
    report.added_pairs = insert_pairs(store, topo, reach, subtree, targets)
    report.m_seconds = time.perf_counter() - t0
    report.moved_nodes = repair_topo_after_insert(
        topo, subtree, targets, reach.desc_view(subtree.root)
    )
    if snapshot is not None:
        report.pair_delta = reach.diff(snapshot)
    return report


def maintain_delete(
    store: ViewStore,
    topo: TopoOrder,
    reach: ReachabilityIndex,
    result: "EvalResult | list[int]",
    capture_pairs: bool = False,
) -> DeleteMaintenance:
    """Algorithm Δ(M,L)delete.  Call *after* ``store.apply(ΔV)``.

    ``result`` is either the evaluation result or a bare list of the
    deleted child nodes (``r[[p]]``) — the algorithm only needs the
    targets.  Returns the garbage-collection feed ``Δ'V`` (already
    applied to the store) together with the removed reachability pairs
    and nodes.  With ``capture_pairs`` the report carries the exact
    closure pair-delta of the repair.

    The ancestor-recomputation walk over ``LR = desc-or-self(r[[p]])``
    is delegated to :meth:`ReachabilityIndex.retain_sweep`, so bulk
    backends can vectorize the whole sweep; the store is only mutated
    after the sweep returns.
    """
    report = DeleteMaintenance()
    snapshot = reach.copy() if capture_pairs else None
    targets = result if isinstance(result, list) else result.targets
    t0 = time.perf_counter()
    affected = set(targets) | reach.desc_of_set(targets)
    lr = topo.sort_nodes(affected)  # descendants first
    report.removed_pairs, condemned = reach.retain_sweep(
        store, lr, store.root_id
    )
    report.m_seconds = time.perf_counter() - t0
    for node in condemned:  # ancestors first
        report.removed_info[node] = (
            store.type_of(node), store.value_of(node)
        )
        for child in list(store.children_of(node)):
            report.gc_delta.delete(
                store.type_of(node), store.type_of(child), node, child
            )

    # Apply Δ'V and drop the condemned nodes from every structure.
    store.apply(report.gc_delta)
    if condemned:
        report.removed_nodes = condemned
        topo.remove_many(condemned)
        t0 = time.perf_counter()
        for node in condemned:
            reach.drop_node(node)
        report.m_seconds += time.perf_counter() - t0
        for node in condemned:
            store.remove_node(node)
    if snapshot is not None:
        report.pair_delta = reach.diff(snapshot)
    return report
