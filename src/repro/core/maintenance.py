"""Incremental maintenance of ``M`` and ``L`` (paper, Figs. 7 and 8).

Both algorithms run "in the background" in the paper's framework: they do
not gate the user-visible update, but the structures must be consistent
before the next update is processed.  The updater invokes them right
after applying ``ΔV`` and times them separately (the benchmarks report
this phase on its own, as the paper's plots do).

**Δ(M,L)insert** (after ``insert (A, t) into p``):

1. reachability *inside* the inserted subtree DAG via a localized
   Algorithm Reach (new pairs only — shared regions already have theirs);
2. cross pairs: every node of ``anc*(r[[p]])`` becomes an ancestor of
   every node of ``ST(A, t)``;
3. ``L``: new nodes are placed just after their highest-positioned
   children (children-first processing makes this safe), then the new
   connecting edges ``(u, r_A)`` are repaired with ``swap`` exactly as in
   the paper (lines 12–13).

**Δ(M,L)delete** (after ``delete p``, with ``ΔV`` already applied):

walks ``LR = desc-or-self(r[[p]])`` ancestors-first, recomputing each
node's ancestor set from its surviving parents; nodes left with no
parents are condemned (``keep := false``), their outgoing edges become
the garbage-collection feed ``Δ'V``, and they are dropped from ``L``,
``M`` and the gen tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atg.publisher import SubtreeResult
from repro.core.dag_eval import EvalResult
from repro.core.reachability import ReachabilityMatrix
from repro.core.topo import TopoOrder
from repro.views.store import ViewDelta, ViewStore


@dataclass
class InsertMaintenance:
    """Report of a Δ(M,L)insert run."""

    added_pairs: int = 0
    moved_nodes: int = 0
    placed_nodes: int = 0


@dataclass
class DeleteMaintenance:
    """Report of a Δ(M,L)delete run."""

    removed_pairs: int = 0
    gc_delta: ViewDelta = field(default_factory=ViewDelta)
    removed_nodes: list[int] = field(default_factory=list)


def maintain_insert(
    store: ViewStore,
    topo: TopoOrder,
    reach: ReachabilityMatrix,
    subtree: SubtreeResult,
    targets: list[int],
) -> InsertMaintenance:
    """Algorithm Δ(M,L)insert.  Call *after* ``store.apply(ΔV)``."""
    report = InsertMaintenance()
    st_nodes = subtree.all_nodes

    # -- L: place the new nodes -------------------------------------------------
    # The subtree may be a DAG with diamonds, so creation order is not
    # reliably children-first; compute a children-first order over the
    # new nodes (Kahn on the new-node subgraph) and place each node
    # immediately after its highest-positioned child.
    new_set = set(subtree.new_nodes)
    pending = {
        node: sum(1 for c in store.children_of(node) if c in new_set)
        for node in subtree.new_nodes
    }
    ready = sorted(
        (node for node, count in pending.items() if count == 0), reverse=True
    )
    placed_order: list[int] = []
    while ready:
        node = ready.pop()
        placed_order.append(node)
        for parent in sorted(store.parents_of(node)):
            if parent in new_set:
                pending[parent] -= 1
                if pending[parent] == 0:
                    ready.append(parent)
    if len(placed_order) != len(new_set):  # pragma: no cover - defensive
        raise RuntimeError("cycle among newly inserted view nodes")
    for node in placed_order:
        placed = [c for c in store.children_of(node) if c in topo]
        if placed:
            pos = max(topo.position(c) for c in placed)
            topo.insert_at(node, pos + 1)
        else:
            topo.insert_front(node)
        report.placed_nodes += 1

    # -- ΔM part 1: reachability inside ST(A, t) --------------------------------
    # Localized Reach over the subtree DAG: ancestors-first order.
    local_order = [n for n in topo.backward() if n in st_nodes]
    for node in local_order:
        ancestors: set[int] = set()
        for parent in store.parents_of(node):
            if parent in st_nodes:
                ancestors.add(parent)
                ancestors |= reach.anc(parent)
        for anc in ancestors:
            if reach.insert(anc, node):
                report.added_pairs += 1

    # -- ΔM part 2: anc*(r[[p]]) × ST nodes --------------------------------------
    upper: set[int] = set(targets)
    for target in targets:
        upper |= reach.anc(target)
    for anc in upper:
        for node in st_nodes:
            if reach.insert(anc, node):
                report.added_pairs += 1

    # -- L: repair for the connecting edges (u, r_A) ------------------------------
    desc_root = reach.desc(subtree.root) | {subtree.root}
    for target in targets:
        if topo.position(target) < topo.position(subtree.root):
            report.moved_nodes += topo.swap(target, subtree.root, desc_root)
    return report


def maintain_delete(
    store: ViewStore,
    topo: TopoOrder,
    reach: ReachabilityMatrix,
    result: "EvalResult | list[int]",
) -> DeleteMaintenance:
    """Algorithm Δ(M,L)delete.  Call *after* ``store.apply(ΔV)``.

    ``result`` is either the evaluation result or a bare list of the
    deleted child nodes (``r[[p]]``) — the algorithm only needs the
    targets.  Returns the garbage-collection feed ``Δ'V`` (already
    applied to the store) together with the removed reachability pairs
    and nodes.
    """
    report = DeleteMaintenance()
    targets = result if isinstance(result, list) else result.targets
    affected: set[int] = set(targets)
    for target in targets:
        affected |= reach.desc(target)
    lr = topo.sort_nodes(affected)  # descendants first
    keep: dict[int, bool] = {}

    for node in reversed(lr):  # ancestors first
        surviving = {
            parent
            for parent in store.parents_of(node)
            if keep.get(parent, True)
        }
        new_ancestors: set[int] = set()
        for parent in surviving:
            new_ancestors.add(parent)
            new_ancestors |= reach.anc(parent)
        removed = reach.anc(node) - new_ancestors
        for anc in removed:
            reach.remove(anc, node)
            report.removed_pairs += 1
        if not surviving and node != store.root_id:
            keep[node] = False
            for child in list(store.children_of(node)):
                report.gc_delta.delete(
                    store.type_of(node), store.type_of(child), node, child
                )

    # Apply Δ'V and drop the condemned nodes from every structure.
    store.apply(report.gc_delta)
    for node in reversed(lr):
        if keep.get(node, True):
            continue
        topo.remove(node)
        reach.drop_node(node)
        store.remove_node(node)
        report.removed_nodes.append(node)
    return report
