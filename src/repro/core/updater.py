"""The end-to-end XML view update framework (paper, Fig. 3).

:class:`XMLViewUpdater` owns the published state for one ATG and
database: the DAG store ``V``, the topological order ``L``, the
reachability matrix ``M`` and the edge-view registry.  An update runs
through the paper's phases, each timed individually (the evaluation
section reports them separately):

1. **validate** — static DTD validation (Section 2.4);
2. **xpath** — two-pass evaluation on the DAG: ``r[[p]]``, ``Ep(r)``,
   side effects (Section 3.2);
3. **translate_v** — ``ΔX → ΔV`` via Xinsert/Xdelete (Section 3.3);
4. **translate_r** — ``ΔV → ΔR`` via Algorithm delete / Algorithm insert
   (Section 4);
5. **apply** — ``ΔR`` on the base database, ``ΔV`` on the store;
6. **maintain** — Δ(M,L)insert / Δ(M,L)delete plus gen-table GC
   (Section 3.4; "background" work, reported separately).

The paper's two-phase structure is now explicit in the API: updates are
values (:mod:`repro.ops`), :meth:`XMLViewUpdater.plan` runs the
foreground phases 1–4 *without mutating any state* and returns an
:class:`UpdatePlan` (targets, side effects, ΔV, ΔR, phase timings), and
``plan.commit()`` / ``plan.abort()`` complete or discard it.
:meth:`XMLViewUpdater.apply_op` is literally ``plan(op).commit()``, so a
committed plan produces byte-identical ΔV/ΔR to a direct apply.  The
historical ``insert()``/``delete()`` methods remain as
deprecation-warning shims over the op dispatch.

Side effects are governed by :class:`SideEffectPolicy`: ``ABORT``
rejects the update (the user said no), ``PROPAGATE`` carries on under
the paper's revised semantics (the update applies at every occurrence).
"""

from __future__ import annotations

import enum
import random
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.atg.model import ATG
from repro.atg.publisher import (
    SubtreeResult,
    publish_store,
    publish_subtree,
    unfold_to_tree,
)
from repro.core.dag_eval import DagXPathEvaluator, EvalResult
from repro.core.maintenance import (
    DeleteMaintenance,
    InsertMaintenance,
    PairDelta,
    insert_pairs,
    net_pair_deltas,
    maintain_delete,
    maintain_insert,
    place_new_nodes,
    repair_topo_after_insert,
)
from repro.core.topo import TopoOrder
from repro.core.translate import xdelete, xinsert
from repro.dtd.validate import StaticValidator
from repro.errors import (
    PlanError,
    ReproError,
    SideEffectError,
    StalePlanError,
    UpdateRejectedError,
    ValidationError,
)
from repro.index import ReachabilityIndex, build_index, resolve_backend
from repro.ops import (
    BaseUpdateOp,
    DeleteOp,
    InsertOp,
    ReplaceOp,
    UpdateOperation,
)
from repro.relational.database import Database, RelationalDelta
from repro.relview.delete import expand_view_deletions, translate_deletions
from repro.relview.insert import translate_insertions
from repro.subscribe.delta import (
    ViewEvent,
    edge_records_from_delta,
    node_records_for,
)
from repro.views.registry import EdgeViewRegistry, build_registry
from repro.views.store import ViewDelta, ViewStore
from repro.xmltree.tree import XMLNode
from repro.xpath.ast import XPath
from repro.xpath.parser import parse_xpath


class SideEffectPolicy(enum.Enum):
    """What to do when an update has XML side effects (Section 2.1)."""

    ABORT = "abort"
    PROPAGATE = "propagate"


@dataclass
class UpdateOutcome:
    """Everything a caller (or benchmark) wants to know about one update."""

    kind: str
    accepted: bool
    reason: str | None = None
    side_effects: set[int] = field(default_factory=set)
    targets: list[int] = field(default_factory=list)
    delta_v: ViewDelta | None = None
    delta_r: RelationalDelta | None = None
    timings: dict[str, float] = field(default_factory=dict)
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return sum(self.timings.values())

    @property
    def foreground_time(self) -> float:
        """Everything except the background maintenance phase."""
        return sum(t for k, t in self.timings.items() if k != "maintain")

    def to_dict(self, include_deltas: bool = False) -> dict:
        """A JSON-safe summary (wire format, bench records, CLI output).

        ``include_deltas=True`` additionally embeds the full ΔV/ΔR op
        lists; by default only their insert/delete counts are included.
        """

        def delta_summary(delta, encode) -> dict | None:
            if delta is None:
                return None
            ops = list(delta)
            summary: dict = {
                "insertions": sum(1 for op in ops if op.kind == "insert"),
                "deletions": sum(1 for op in ops if op.kind == "delete"),
            }
            if include_deltas:
                summary["ops"] = [encode(op) for op in ops]
            return summary

        return {
            "kind": self.kind,
            "accepted": self.accepted,
            "reason": self.reason,
            "targets": [int(t) for t in self.targets],
            "side_effects": sorted(int(n) for n in self.side_effects),
            "timings": {k: float(v) for k, v in self.timings.items()},
            "total_time": float(self.total_time),
            "foreground_time": float(self.foreground_time),
            "stats": {k: v for k, v in self.stats.items()},
            "delta_v": delta_summary(
                self.delta_v,
                lambda op: [
                    op.kind, op.parent_type, op.child_type, op.parent, op.child
                ],
            ),
            "delta_r": delta_summary(
                self.delta_r,
                lambda op: [op.kind, op.relation, list(op.row)],
            ),
        }


class _Timer:
    def __init__(self, outcome: UpdateOutcome, phase: str):
        self.outcome = outcome
        self.phase = phase

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        elapsed = time.perf_counter() - self._start
        self.outcome.timings[self.phase] = (
            self.outcome.timings.get(self.phase, 0.0) + elapsed
        )
        return False


class PlanState(enum.Enum):
    """Lifecycle of an :class:`UpdatePlan`."""

    PLANNED = "planned"
    REJECTED = "rejected"
    COMMITTED = "committed"
    ABORTED = "aborted"
    FAILED = "failed"
    """Commit raised mid-apply; the plan is dead and cannot be aborted
    (ΔR/ΔV may be partially applied — the exception carries the cause)."""


class UpdatePlan:
    """The foreground half of one update, held before any mutation.

    Produced by :meth:`XMLViewUpdater.plan` (or
    :meth:`repro.service.ViewService.plan`).  Exposes everything the
    paper computes in phases 1–4 — ``targets`` (``r[[p]]``),
    ``side_effects``, ``delta_v``, ``delta_r``, per-phase ``timings``
    and ``stats`` — *before* the base database, the store's edges, ``M``
    or ``L`` are touched.  :meth:`commit` runs the apply + maintain
    phases (identical ΔV/ΔR to a direct ``apply_op``); :meth:`abort`
    discards the plan and leaves all state byte-identical.

    At most one plan may be outstanding per updater (a planned insert
    holds freshly interned gen-table ids); any other mutation between
    ``plan()`` and ``commit()`` raises :class:`StalePlanError`.
    """

    def __init__(self, op: UpdateOperation, updater: "XMLViewUpdater"):
        self.op = op
        self.updater = updater
        self.outcome = UpdateOutcome(kind=op.kind, accepted=False)
        self.state = PlanState.REJECTED  # plan() flips to PLANNED on success
        #: (subtree, attach targets) pairs, replayed in order at commit.
        self._inserts: list[tuple[SubtreeResult, list[int]]] = []
        #: Feed for Δ(M,L)delete: the eval result or the bare targets.
        self._delete_feed: EvalResult | list[int] | None = None
        self._base_delta: RelationalDelta | None = None
        self._version = updater._version
        #: Optional lock context factory (set by the service façade).
        self._write_lock = None

    # -- previews -----------------------------------------------------------------

    @property
    def accepted(self) -> bool:
        """Whether planning succeeded (the update was not rejected)."""
        return self.state is not PlanState.REJECTED

    @property
    def targets(self) -> list[int]:
        return self.outcome.targets

    @property
    def side_effects(self) -> set[int]:
        return self.outcome.side_effects

    @property
    def delta_v(self) -> ViewDelta | None:
        return self.outcome.delta_v

    @property
    def delta_r(self) -> RelationalDelta | None:
        return self.outcome.delta_r

    @property
    def timings(self) -> dict[str, float]:
        return self.outcome.timings

    @property
    def stats(self) -> dict[str, float]:
        return self.outcome.stats

    def to_dict(self, include_deltas: bool = True) -> dict:
        """JSON-safe preview of the planned update (dry-run output)."""
        payload = self.outcome.to_dict(include_deltas=include_deltas)
        payload["accepted"] = self.accepted  # planned, not yet committed
        payload["state"] = self.state.value
        payload["op"] = self.op.to_dict()
        return payload

    # -- completion ---------------------------------------------------------------

    def _locked(self):
        if self._write_lock is None:
            import contextlib

            return contextlib.nullcontext()
        return self._write_lock()

    def commit(self) -> UpdateOutcome:
        """Apply ΔR/ΔV and run the background Δ(M,L) maintenance."""
        with self._locked():
            return self._commit_inner()

    def _commit_inner(self) -> UpdateOutcome:
        if self.state is PlanState.REJECTED:
            raise PlanError(
                f"cannot commit a rejected plan ({self.outcome.reason})"
            )
        if self.state is not PlanState.PLANNED:
            raise PlanError(f"cannot commit a plan in state {self.state.value}")
        updater = self.updater
        if self._version != updater._version:
            raise StalePlanError(
                "the view changed since this plan was prepared; re-plan"
            )
        outcome = self.outcome
        # The plan completes now, one way or the other: release the slot
        # up front so a commit failure never wedges the updater (and so
        # a base-update commit can pass apply_base_update's plan guard).
        updater._outstanding_plan = None
        notify = bool(updater._observers)
        edge_records = []
        node_records = []
        try:
            if self._base_delta is not None:
                updater._in_plan_commit = True
                try:
                    with _Timer(outcome, "apply"):
                        report = updater.apply_base_update(self._base_delta)
                finally:
                    updater._in_plan_commit = False
                outcome.stats.update(
                    edges_added=len(report.edges_added),
                    edges_removed=len(report.edges_removed),
                    nodes_created=report.nodes_created,
                    nodes_collected=report.nodes_collected,
                )
            else:
                with _Timer(outcome, "apply"):
                    if outcome.delta_r is not None:
                        updater.db.apply(outcome.delta_r)
                    if outcome.delta_v is not None:
                        updater.store.apply(outcome.delta_v)
                if notify and outcome.delta_v is not None:
                    # Capture child values and interning records before
                    # GC can drop the nodes.
                    edge_records = edge_records_from_delta(
                        updater.store, outcome.delta_v
                    )
                    node_records = node_records_for(
                        updater.store, edge_records
                    )
                with _Timer(outcome, "maintain"):
                    delete_reports = updater._maintain(
                        self._inserts, self._delete_feed
                    )
                if notify:
                    for dm in delete_reports:
                        edge_records.extend(
                            edge_records_from_delta(
                                updater.store, dm.gc_delta, dm.removed_info
                            )
                        )
        except BaseException:
            self.state = PlanState.FAILED
            updater._version += 1  # state may have partially changed
            raise
        outcome.accepted = True
        self.state = PlanState.COMMITTED
        updater._version += 1
        updater._post_verify()
        if notify:
            if self._base_delta is not None:
                # Propagation reports every edge change typed+valued, so
                # base updates are fine-grained events too (subscription
                # pruning extends to the reverse pipeline).
                updater._emit(ViewEvent(
                    generation=updater._version,
                    edges=report.edge_records,
                    nodes=report.node_records,
                    reason="base_update",
                    delta_r=self._base_delta,
                ))
            else:
                updater._emit(ViewEvent(
                    generation=updater._version,
                    edges=edge_records,
                    nodes=node_records,
                    deferred=updater._session is not None,
                    reason=self.op.kind,
                    closure=updater._last_pair_delta,
                    delta_r=outcome.delta_r,
                ))
        return outcome

    def abort(self) -> None:
        """Discard the plan; store, ``M`` and ``L`` stay byte-identical.

        Aborting is idempotent, and a no-op on a rejected plan (which
        keeps its REJECTED state — the rejection stays on record)."""
        with self._locked():
            if self.state in (PlanState.ABORTED, PlanState.REJECTED):
                return
            if self.state is not PlanState.PLANNED:
                raise PlanError(
                    f"cannot abort a {self.state.value} plan"
                )
            for subtree, _ in reversed(self._inserts):
                subtree.rollback(self.updater.store)
            self.state = PlanState.ABORTED
            if self.updater._outstanding_plan is self:
                self.updater._outstanding_plan = None


class XMLViewUpdater:
    """Process XML view updates against a relational database.

    Parameters
    ----------
    atg:
        The view definition ``σ``.
    db:
        The base database ``I`` (updated in place by accepted updates).
    side_effect_policy:
        ``ABORT`` (default) raises/reports on side effects; ``PROPAGATE``
        carries on under the revised semantics.
    sat_solver:
        ``'walksat'`` | ``'dpll'`` | ``'auto'`` for insertion translation.
    strict:
        When True, rejections raise; when False they return an
        unaccepted :class:`UpdateOutcome` (benchmarks use False).
    index_backend:
        Reachability-index engine for ``M``: ``'matrix'`` (NumPy bit
        matrix), ``'bitset'`` (int bitmask rows), ``'sets'`` (the
        reference dict-of-set matrix) or ``'auto'`` (default; resolves
        to the fastest available backend, see :mod:`repro.index`).
    capture_closure_deltas:
        Whether each Δ(M,L) repair also captures its exact closure
        pair-delta (snapshot + bulk :meth:`~repro.index.ReachabilityIndex.diff`)
        and attaches it to the commit event — ``True``, ``False``, or
        ``'auto'`` (default: capture only while a registered consumer —
        a leading-``//`` subscription — can use it, tracked by
        :attr:`closure_consumers`).
    store:
        Adopt this :class:`~repro.views.store.ViewStore` instead of
        publishing a fresh one from ``db``.  Used by WAL crash recovery
        (:mod:`repro.wal.recover`): the restored store's node ids must
        match the logged event stream, and republishing would allocate
        different ones.
    """

    def __init__(
        self,
        atg: ATG,
        db: Database,
        side_effect_policy: SideEffectPolicy = SideEffectPolicy.ABORT,
        sat_solver: str = "auto",
        strict: bool = True,
        verify_each_update: bool = False,
        rng: random.Random | None = None,
        index_backend: str = "auto",
        capture_closure_deltas: bool | str = "auto",
        store: ViewStore | None = None,
    ):
        self.atg = atg
        self.db = db
        self.policy = side_effect_policy
        self.sat_solver = sat_solver
        self.strict = strict
        self.verify_each_update = verify_each_update
        self.rng = rng or random.Random(20070415)
        self.index_backend = resolve_backend(index_backend)
        self.validator = StaticValidator(atg.dtd)
        # ``store=`` adopts an externally restored store (WAL crash
        # recovery: checkpoint + replay reproduces the writer's exact
        # node ids, which a fresh publish_store would not).
        self.store: ViewStore = (
            store if store is not None else publish_store(atg, db)
        )
        self.topo: TopoOrder = TopoOrder.from_store(self.store)
        self.reach: ReachabilityIndex = build_index(
            self.store, self.topo, self.index_backend
        )
        self.registry: EdgeViewRegistry = build_registry(atg, db)
        self.last_maintenance: InsertMaintenance | DeleteMaintenance | None = None
        self.maintenance_runs = 0
        """Number of Δ(M,L) repair passes run (batching amortizes them)."""
        self.m_repair_seconds = 0.0
        """Cumulative wall time of the ``ΔM`` (reachability-index) share
        of maintenance — the backend-ablation benchmarks read this to
        compare index engines without the backend-invariant ``L``/store
        surgery diluting the signal."""
        self.capture_closure_deltas = capture_closure_deltas
        self.closure_consumers = 0
        """Number of registered consumers of closure pair-deltas
        (leading-``//`` subscriptions bump this via the registry); under
        ``capture_closure_deltas='auto'`` capture runs iff positive."""
        self._last_pair_delta: PairDelta | None = None
        """The netted closure pair-delta of the most recent
        :meth:`_maintain` run (``None`` when capture was off); the plan
        commit attaches it to the emitted :class:`ViewEvent`."""
        self._session: UpdateSession | None = None
        self._outstanding_plan: UpdatePlan | None = None
        self._version = 0
        """Bumped on every committed mutation; guards stale plans."""
        self._observers: list = []
        """Commit observers: called with one ΔV :class:`ViewEvent` per
        committed mutation (the subscription engine registers here).
        Empty list = zero event-construction overhead."""
        self._in_plan_commit = False
        """True while a plan commit drives ``apply_base_update`` (the
        commit emits the final event itself)."""
        self._emitting_depth: dict[int, int] = {}
        """Per-thread nesting depth of observer/consumer delivery.  The
        service write lock is reentrant for its owner, so without this
        guard an observer (subscription maintenance, a changefeed
        callback) could start a *nested* commit and publish events out
        of order mid-fan-out.  Per *thread* because the staged commit
        pipeline delivers after the lock is released — a callback
        writing back would otherwise simply acquire the free lock."""
        self._sink = None
        """The installed :class:`~repro.service.pipeline.CommitPipeline`
        (or None).  While a pipeline scope is open on the emitting
        thread, events are collected into its ``CommitRecord`` and the
        registry/hub observers are skipped (maintenance and fan-out run
        as explicit pipeline phases instead); raw observers always run
        inline."""

    # -- public API -----------------------------------------------------------

    def xml_tree(self) -> XMLNode:
        """The current XML view as an (uncompressed) tree."""
        return unfold_to_tree(self.store)

    def evaluate_xpath(self, path: str | XPath) -> EvalResult:
        """Evaluate an XPath on the current view (no update)."""
        parsed = parse_xpath(path) if isinstance(path, str) else path
        return self._evaluator().evaluate(parsed)

    def evaluator(self) -> DagXPathEvaluator:
        """A read-only evaluator bound to the current state.

        Falls back to store-walk descendant regions while a batch
        session's ``M`` repair is pending (see :meth:`_evaluator`).
        """
        return self._evaluator()

    # -- commit observers -------------------------------------------------------

    def add_observer(self, observer) -> None:
        """Register ``observer(event: ViewEvent)`` to run after every
        committed mutation, inside the writer's critical section.

        Engine-internal hook (no stability contract): observers receive
        raw events, including ``deferred`` mid-batch ones, in attach
        order.  External consumers should use the public changefeed —
        :meth:`repro.service.ViewService.changefeed` — which coalesces
        batches, supports replay, and freezes the event schema
        (``docs/event-schema.md``).
        """
        self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Unregister a previously added observer (ValueError if absent)."""
        self._observers.remove(observer)

    @contextmanager
    def _observer_section(self):
        """Mark the calling thread as delivering commit events.

        Raised around inline observer dispatch *and* around the staged
        pipeline's off-lock publish phase, so
        :meth:`_check_not_emitting` rejects write-backs from either.
        """
        ident = threading.get_ident()
        depth = self._emitting_depth
        depth[ident] = depth.get(ident, 0) + 1
        try:
            yield
        finally:
            remaining = depth.get(ident, 1) - 1
            if remaining <= 0:
                depth.pop(ident, None)
            else:
                depth[ident] = remaining

    def _emit(self, event: ViewEvent) -> None:
        sink = self._sink
        collected = sink is not None and sink.collect(event)
        with self._observer_section():
            for observer in list(self._observers):
                if collected and sink.owns(observer):
                    # A pipeline scope buffered the event; registry
                    # maintenance and hub fan-out run as the maintain /
                    # publish phases on the sealed record instead.
                    continue
                observer(event)

    def _check_not_emitting(self) -> None:
        if threading.get_ident() in self._emitting_depth:
            raise PlanError(
                "cannot mutate the view from inside a commit observer "
                "(a subscription or changefeed callback): the write "
                "lock is reentrant, so the nested commit would publish "
                "events out of order mid-delivery; hand the work to "
                "another thread or use a pull-mode changefeed consumer"
            )

    def apply_op(self, op: UpdateOperation) -> UpdateOutcome:
        """Translate and apply one typed update operation.

        The single write entry point: dispatches on the op kind, runs the
        foreground phases (:meth:`plan`) and commits.  Rejections raise
        in ``strict`` mode and return an unaccepted
        :class:`UpdateOutcome` otherwise.
        """
        plan = self.plan(op)
        if plan.state is PlanState.REJECTED:
            return plan.outcome  # strict mode raised inside plan()
        return plan.commit()

    def plan(self, op: UpdateOperation) -> UpdatePlan:
        """Run the foreground phases (validate → ΔR) without mutating.

        Returns an :class:`UpdatePlan` previewing targets, side effects,
        ΔV, ΔR and phase timings; call ``commit()`` to apply (identical
        ΔV/ΔR to :meth:`apply_op`) or ``abort()`` to discard.  Only one
        plan may be outstanding at a time.
        """
        if not isinstance(op, UpdateOperation):
            raise TypeError(
                f"expected an update operation from repro.ops, got {op!r}"
            )
        self._check_not_emitting()
        if self._outstanding_plan is not None:
            raise PlanError(
                "another plan is outstanding; commit or abort it first"
            )
        plan = UpdatePlan(op, self)
        try:
            if isinstance(op, InsertOp):
                self._plan_insert(op, plan)
            elif isinstance(op, DeleteOp):
                self._plan_delete(op, plan)
            elif isinstance(op, ReplaceOp):
                self._plan_replace(op, plan)
            elif isinstance(op, BaseUpdateOp):
                plan._base_delta = op.to_delta()
                plan.outcome.delta_r = plan._base_delta
            else:  # pragma: no cover - defensive
                raise TypeError(f"unsupported operation {op!r}")
        except (ValidationError, UpdateRejectedError, SideEffectError) as exc:
            plan.outcome.reason = str(exc)
            plan.state = PlanState.REJECTED
            if self.strict:
                raise
            return plan
        plan.state = PlanState.PLANNED
        self._outstanding_plan = plan
        return plan

    # -- legacy shims ---------------------------------------------------------

    def insert(
        self, path: str | XPath, element: str, sem: tuple
    ) -> UpdateOutcome:
        """Deprecated: use ``apply_op(InsertOp(path, element, sem))``."""
        warnings.warn(
            "XMLViewUpdater.insert() is deprecated; construct an "
            "InsertOp and use apply_op() (or repro.open_view().apply())",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.apply_op(
            InsertOp(path=_path_str(path), element=element, sem=tuple(sem))
        )

    def delete(self, path: str | XPath) -> UpdateOutcome:
        """Deprecated: use ``apply_op(DeleteOp(path))``."""
        warnings.warn(
            "XMLViewUpdater.delete() is deprecated; construct a "
            "DeleteOp and use apply_op() (or repro.open_view().apply())",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.apply_op(DeleteOp(path=_path_str(path)))

    def batch(self) -> "UpdateSession":
        """Open a batched update session (the paper's "background" mode).

        Inside ``with updater.batch():`` every accepted update runs its
        foreground phases (validate, xpath, translate, apply)
        immediately, but the expensive ``M`` repair is queued; leaving
        the block runs **one** deferred Δ(M,L) maintenance pass for the
        whole batch instead of one per update.  ``L`` stays maintained
        eagerly (placement + swap are cheap and evaluation needs them),
        and while repairs are pending the XPath evaluator derives
        descendant regions from the store's edges, so mid-batch queries
        and updates see correct results.

        Deferred garbage collection means a subtree deleted and
        re-inserted within one batch is shared instead of republished —
        semantically the same view (``check_consistency`` holds), via
        the paper's gen_id interning.
        """
        if self._session is not None:
            raise ReproError("an update session is already active")
        return UpdateSession(self)

    # -- the foreground phases, per op kind ------------------------------------

    def _plan_insert(self, op: InsertOp, plan: UpdatePlan) -> None:
        outcome = plan.outcome
        parsed = parse_xpath(op.path)
        with _Timer(outcome, "validate"):
            self.validator.validate_insert(parsed, op.element)
        with _Timer(outcome, "xpath"):
            result = self._evaluator().evaluate(parsed, mode="insert")
        outcome.targets = list(result.targets)
        outcome.side_effects = set(result.side_effects)
        if not result.targets:
            raise UpdateRejectedError(f"path {parsed} selects no node")
        self._check_side_effects(result)
        with _Timer(outcome, "translate_v"):
            subtree = publish_subtree(
                self.atg, self.db, self.store, op.element, op.sem
            )
            cyclic = [t for t in result.targets if t in subtree.all_nodes]
            if cyclic:
                subtree.rollback(self.store)
                raise UpdateRejectedError(
                    f"inserting {op.element} {op.sem!r} under node(s) "
                    f"{cyclic} creates a cycle: the target lies inside "
                    "the inserted subtree, so the XML view would be "
                    "infinite"
                )
            delta_v = xinsert(self.store, result.targets, subtree)
        outcome.delta_v = delta_v
        rplan = self._translate_insertions_guarded(subtree, delta_v, outcome)
        outcome.delta_r = rplan.delta_r
        outcome.stats.update(
            sat_vars=rplan.num_vars,
            sat_clauses=rplan.num_clauses,
            subtree_nodes=subtree.node_count,
            subtree_edges=subtree.edge_count,
            targets=len(result.targets),
        )
        plan._inserts.append((subtree, list(result.targets)))

    def _plan_delete(self, op: DeleteOp, plan: UpdatePlan) -> None:
        outcome = plan.outcome
        parsed = parse_xpath(op.path)
        with _Timer(outcome, "validate"):
            self.validator.validate_delete(parsed)
        with _Timer(outcome, "xpath"):
            result = self._evaluator().evaluate(parsed, mode="delete")
        outcome.targets = list(result.targets)
        outcome.side_effects = set(result.side_effects)
        if not result.targets:
            raise UpdateRejectedError(f"path {parsed} selects no node")
        self._check_side_effects(result)
        with _Timer(outcome, "translate_v"):
            delta_v = xdelete(self.store, result)
        outcome.delta_v = delta_v
        with _Timer(outcome, "translate_r"):
            rows = expand_view_deletions(
                self.registry, self.store, self.db, delta_v
            )
            rplan = translate_deletions(self.registry, self.db, rows)
        outcome.delta_r = rplan.delta_r
        outcome.stats.update(
            ep_edges=len(result.ep),
            view_rows=len(rplan.view_rows),
            targets=len(result.targets),
        )
        plan._delete_feed = result

    def _plan_replace(self, op: ReplaceOp, plan: UpdatePlan) -> None:
        """``replace path with (element, sem)``: one composite plan.

        The selected nodes are detached (Xdelete) and ``ST(element,
        sem)`` is attached at the parents they hung off — the vacated
        ``Ep(r)`` parent ends.  An edge the deletion would remove and
        the replacement would immediately re-add (replacing a node with
        itself) is pruned from *both* sides, so its base rows survive —
        otherwise the deletion ΔR would drop rows the insertion
        translation (which runs against the pre-update snapshot)
        believes are still there.  ΔR is the deletion translation
        followed by the insertion translation, in that order.
        """
        outcome = plan.outcome
        parsed = parse_xpath(op.path)
        with _Timer(outcome, "validate"):
            self.validator.validate_replace(parsed, op.element)
        with _Timer(outcome, "xpath"):
            result = self._evaluator().evaluate(parsed, mode="delete")
        outcome.targets = list(result.targets)
        outcome.side_effects = set(result.side_effects)
        if not result.targets:
            raise UpdateRejectedError(f"path {parsed} selects no node")
        self._check_side_effects(result)
        # The attach points: every parent that loses a child, in Ep order.
        parents: list[int] = []
        for parent, _, _ in result.ep:
            if parent not in parents:
                parents.append(parent)
        with _Timer(outcome, "translate_v"):
            raw_del = xdelete(self.store, result)
            subtree = publish_subtree(
                self.atg, self.db, self.store, op.element, op.sem
            )
        try:
            with _Timer(outcome, "translate_v"):
                cyclic = [p for p in parents if p in subtree.all_nodes]
                if cyclic:
                    raise UpdateRejectedError(
                        f"replacing with {op.element} {op.sem!r} under "
                        f"node(s) {cyclic} creates a cycle: an attach "
                        "parent lies inside the replacement subtree"
                    )
                # Self-replacement pairs survive untouched on both sides.
                noop_pairs = {
                    (e.parent, e.child)
                    for e in raw_del.deletions()
                    if e.child == subtree.root
                }
                del_delta = ViewDelta(
                    e for e in raw_del.ops
                    if (e.parent, e.child) not in noop_pairs
                )
                deleted_pairs = {
                    (e.parent, e.child) for e in del_delta.deletions()
                }
                ins_delta = ViewDelta()
                for p_type, p, c_type, c in subtree.edges:
                    ins_delta.insert(p_type, c_type, p, c)
                root_type = self.store.type_of(subtree.root)
                for parent in parents:
                    if (
                        self.store.has_edge(parent, subtree.root)
                        and (parent, subtree.root) not in deleted_pairs
                    ):
                        continue  # set semantics: the edge survives as-is
                    ins_delta.insert(
                        self.store.type_of(parent), root_type, parent,
                        subtree.root,
                    )
            with _Timer(outcome, "translate_r"):
                rows = expand_view_deletions(
                    self.registry, self.store, self.db, del_delta
                )
                del_plan = translate_deletions(self.registry, self.db, rows)
        except Exception:
            subtree.rollback(self.store)
            raise
        ins_plan = self._translate_insertions_guarded(
            subtree, ins_delta, outcome
        )
        outcome.delta_v = ViewDelta([*del_delta.ops, *ins_delta.ops])
        outcome.delta_r = RelationalDelta(
            [*del_plan.delta_r.ops, *ins_plan.delta_r.ops]
        )
        outcome.stats.update(
            ep_edges=len(result.ep),
            view_rows=len(del_plan.view_rows),
            targets=len(result.targets),
            attach_parents=len(parents),
            sat_vars=ins_plan.num_vars,
            sat_clauses=ins_plan.num_clauses,
            subtree_nodes=subtree.node_count,
            subtree_edges=subtree.edge_count,
        )
        plan._inserts.append((subtree, parents))
        plan._delete_feed = sorted(set(result.targets))

    # -- helpers ---------------------------------------------------------------

    def _translate_insertions_guarded(
        self, subtree: SubtreeResult, ins_delta: ViewDelta,
        outcome: UpdateOutcome,
    ):
        """Algorithm insert under the translate_r timer; on *any* failure
        the freshly interned subtree nodes are rolled back so a rejected
        plan leaves the store untouched."""
        try:
            with _Timer(outcome, "translate_r"):
                return translate_insertions(
                    self.registry,
                    self.store,
                    self.db,
                    ins_delta,
                    solver=self.sat_solver,
                    rng=self.rng,
                )
        except Exception:
            subtree.rollback(self.store)
            raise

    def _maintain(
        self,
        inserts: list[tuple[SubtreeResult, list[int]]],
        delete_feed: EvalResult | list[int] | None,
    ) -> list[DeleteMaintenance]:
        """One update's Δ(M,L) phase: insert repairs, then the delete pass.

        The ordering matches :meth:`UpdateSession.flush` — insert
        repairs are pure pair additions; the closing delete pass removes
        stale pairs and garbage-collects, so composites (replace)
        converge to the closure of the final store.  Returns the delete
        reports (commit events need their GC ΔV); empty when deferred
        to a session.
        """
        if self._session is not None:
            self._last_pair_delta = None  # M untouched until the flush
            for subtree, targets in inserts:
                self._session.defer_insert(subtree, targets)
            if delete_feed is not None:
                targets = (
                    delete_feed.targets
                    if isinstance(delete_feed, EvalResult)
                    else delete_feed
                )
                self._session.defer_delete(list(targets))
            return []
        capture = self._capturing_pairs()
        deltas: list[PairDelta] = []
        delete_reports: list[DeleteMaintenance] = []
        for subtree, targets in inserts:
            self.last_maintenance = maintain_insert(
                self.store, self.topo, self.reach, subtree, targets,
                capture_pairs=capture,
            )
            self.m_repair_seconds += self.last_maintenance.m_seconds
            if self.last_maintenance.pair_delta is not None:
                deltas.append(self.last_maintenance.pair_delta)
        if delete_feed is not None:
            self.last_maintenance = maintain_delete(
                self.store, self.topo, self.reach, delete_feed,
                capture_pairs=capture,
            )
            self.m_repair_seconds += self.last_maintenance.m_seconds
            if self.last_maintenance.pair_delta is not None:
                deltas.append(self.last_maintenance.pair_delta)
            delete_reports.append(self.last_maintenance)
        self.maintenance_runs += 1
        self._last_pair_delta = net_pair_deltas(deltas) if capture else None
        return delete_reports

    def _capturing_pairs(self) -> bool:
        """Whether Δ(M,L) repairs should capture closure pair-deltas."""
        if self.capture_closure_deltas == "auto":
            return self.closure_consumers > 0
        return bool(self.capture_closure_deltas)

    def _evaluator(self) -> DagXPathEvaluator:
        """An evaluator for the current state.

        While a batch session has repairs pending, ``M`` is stale; pass
        ``reach=None`` so descendant regions come from the store walk.
        """
        dirty = self._session is not None and self._session.pending
        return DagXPathEvaluator(
            self.store, self.topo, None if dirty else self.reach
        )

    def _check_side_effects(self, result: EvalResult) -> None:
        if result.has_side_effects and self.policy is SideEffectPolicy.ABORT:
            raise SideEffectError(
                f"update on {result.path} has XML side effects at nodes "
                f"{sorted(result.side_effects)[:10]}"
                f"{'...' if len(result.side_effects) > 10 else ''}; "
                "policy is ABORT",
                affected=frozenset(result.side_effects),
            )

    def undo(self, outcome: UpdateOutcome):
        """Undo an accepted update by propagating the inverted ``ΔR``.

        Because the view is a function of the base data, inverting the
        base update and re-synchronizing (the incremental propagation of
        :meth:`apply_base_update`) restores the view exactly — including
        resurrecting garbage-collected shared subtrees.
        """
        if not outcome.accepted:
            raise UpdateRejectedError("cannot undo a rejected update")
        if outcome.delta_r is None:
            raise UpdateRejectedError("outcome carries no ΔR to invert")
        return self.apply_base_update(outcome.delta_r.inverted())

    def apply_base_update(self, delta_r: RelationalDelta):
        """Apply a *base-table* update and synchronize the view.

        The reverse direction of the paper's pipeline (its reference [8]):
        the caller updates relations directly; the DAG store, ``M`` and
        ``L`` are maintained incrementally.  Returns a
        :class:`~repro.atg.incremental.PropagationReport`.  (The typed
        equivalent is ``apply_op(BaseUpdateOp.from_delta(delta_r))``.)
        """
        from repro.atg.incremental import propagate_base_update

        self._check_not_emitting()
        if self._outstanding_plan is not None:
            # Propagation would trip over the plan's pre-interned
            # (edge-less) nodes and corrupt the store irrecoverably.
            raise PlanError(
                "cannot propagate a base update while a plan is "
                "outstanding; commit or abort it first"
            )
        if self._session is not None and self._session.pending:
            raise ReproError(
                "cannot propagate a base update while a batch session has "
                "pending maintenance; flush the session first"
            )
        report = propagate_base_update(
            self.atg,
            self.registry,
            self.db,
            self.store,
            self.topo,
            self.reach,
            delta_r,
            # Typed per-edge records cost lookups per change; only pay
            # when someone consumes the resulting event.
            want_records=bool(self._observers),
        )
        self._version += 1
        self._post_verify()
        if self._observers and not self._in_plan_commit:
            # The report types every edge change (losses, gains, GC), so
            # the event is fine-grained: subscriptions skip or
            # suffix-restart on base updates exactly as on foreground
            # ops.  A plan-driven base commit emits its own event with
            # the final generation instead.
            self._emit(ViewEvent(
                generation=self._version,
                edges=report.edge_records,
                nodes=report.node_records,
                reason="base_update",
                delta_r=delta_r,
            ))
        return report

    def _post_verify(self) -> None:
        """Optional paranoia: verify state against a republish (tests).

        Enabled by ``verify_each_update``; O(|V|) per update, so off by
        default and never used in benchmarks.
        """
        if not self.verify_each_update:
            return
        if self._session is not None and self._session.pending:
            return  # M/L deliberately stale; the session verifies at flush
        problems = self.check_consistency()
        if problems:
            raise ReproError(
                "post-update verification failed: " + "; ".join(problems)
            )

    def rebuild(self) -> None:
        """Recompute the store, ``L`` and ``M`` from scratch (baseline)."""
        self._check_not_emitting()
        self.store = publish_store(self.atg, self.db)
        self.rebuild_structures_only()

    def rebuild_structures_only(self) -> None:
        """Recompute ``L`` and ``M`` for the *current* store.

        Used after swapping in a store loaded from persistence
        (:func:`repro.views.loader.store_from_database`).
        """
        from repro.views.loader import load_structures

        self._check_not_emitting()
        self.topo, self.reach = load_structures(
            self.store, self.index_backend
        )
        self._version += 1
        if self._observers:
            self._emit(ViewEvent(
                generation=self._version, coarse=True, reason="rebuild"
            ))

    def check_consistency(self) -> list[str]:
        """Verify the incremental state against a fresh republish.

        Returns a list of discrepancy descriptions (empty = consistent).
        Intended for tests; O(|V|)-ish, do not call per update in
        benchmarks.
        """
        problems: list[str] = []
        fresh = publish_store(self.atg, self.db)
        mine = {
            (self.store.type_of(n), self.store.sem_of(n))
            for n in self.store.reachable_from_root()
        }
        theirs = {
            (fresh.type_of(n), fresh.sem_of(n))
            for n in fresh.reachable_from_root()
        }
        if mine != theirs:
            missing = sorted(theirs - mine)[:5]
            extra = sorted(mine - theirs)[:5]
            problems.append(
                f"node sets differ: missing={missing} extra={extra}"
            )
        mine_reachable = self.store.reachable_from_root()
        mine_edges = {
            (
                self.store.type_of(u),
                self.store.sem_of(u),
                self.store.type_of(v),
                self.store.sem_of(v),
            )
            for key, pairs in self.store.edges.items()
            for (u, v) in pairs
            if u in mine_reachable
        }
        fresh_reachable = fresh.reachable_from_root()
        fresh_edges = {
            (
                fresh.type_of(u),
                fresh.sem_of(u),
                fresh.type_of(v),
                fresh.sem_of(v),
            )
            for key, pairs in fresh.edges.items()
            for (u, v) in pairs
            if u in fresh_reachable
        }
        if mine_edges != fresh_edges:
            problems.append(
                f"edge sets differ: missing={sorted(fresh_edges - mine_edges)[:5]} "
                f"extra={sorted(mine_edges - fresh_edges)[:5]}"
            )
        fresh_topo = TopoOrder.from_store(self.store)
        fresh_reach = build_index(self.store, fresh_topo, self.index_backend)
        if not self.reach.equals(fresh_reach):
            problems.append("reachability matrix differs from recomputation")
        if not self.topo.is_valid_for(self.reach.is_ancestor):
            problems.append("topological order invalid")
        return problems


def _path_str(path: str | XPath) -> str:
    """Normalize a path argument to its string form (ops are wire values)."""
    if isinstance(path, str):
        return path
    return str(path) or "."


@dataclass
class BatchReport:
    """What one deferred maintenance pass (session flush) did."""

    inserts: int = 0
    deletes: int = 0
    added_pairs: int = 0
    removed_pairs: int = 0
    removed_nodes: list[int] = field(default_factory=list)
    gc_delta: ViewDelta = field(default_factory=ViewDelta)
    maintenance_passes: int = 0
    seconds: float = 0.0


class UpdateSession:
    """Batched update session: N updates, one Δ(M,L) repair.

    Created by :meth:`XMLViewUpdater.batch`; use as a context manager::

        with updater.batch():
            updater.apply_op(DeleteOp("course[cno='CS650']/prereq/course[cno='CS320']"))
            updater.apply_op(DeleteOp("course[cno='CS240']/project"))

    Per accepted update the session does the *cheap* ``L`` work eagerly
    (new-node placement and the paper's ``swap`` repair, with the
    subtree's descendants taken from a store walk since ``M`` is
    deferred) and queues the ``M`` repair.  :meth:`flush` — called
    automatically on exit, even when the block raises — runs exactly
    one maintenance pass: pending insert repairs are replayed in order
    (pure pair additions), then a single combined Δ(M,L)delete over the
    union of deleted targets removes stale pairs and garbage-collects
    unreachable nodes.  Convergence to the closure of the final store
    does not depend on replay interleaving: every false pair a stale
    row can contribute has its descendant below some deleted target, so
    the closing delete pass recomputes it.
    """

    def __init__(self, updater: XMLViewUpdater):
        self.updater = updater
        self._pending_inserts: list[tuple[SubtreeResult, list[int]]] = []
        self._pending_deletes: list[int] = []
        self.report: BatchReport | None = None
        self._closed = False

    # -- context management ------------------------------------------------------

    def __enter__(self) -> "UpdateSession":
        if self._closed:
            raise ReproError("update session already closed")
        self.updater._session = self
        return self

    def __exit__(self, *exc) -> bool:
        self.updater._session = None
        self._closed = True
        self.flush()
        return False

    # -- queueing (called by the updater inside the maintain phase) ----------------

    @property
    def pending(self) -> bool:
        return bool(self._pending_inserts or self._pending_deletes)

    def defer_insert(
        self, subtree: SubtreeResult, targets: list[int]
    ) -> None:
        updater = self.updater
        place_new_nodes(updater.store, updater.topo, subtree)
        desc_root = updater.store.descendants_of([subtree.root])
        repair_topo_after_insert(updater.topo, subtree, targets, desc_root)
        self._pending_inserts.append((subtree, list(targets)))

    def defer_delete(self, targets: list[int]) -> None:
        self._pending_deletes.extend(targets)

    # -- the single deferred repair ------------------------------------------------

    def flush(self) -> BatchReport:
        """Run the deferred Δ(M,L) repair; idempotent once drained."""
        if not self.pending:
            # Nothing queued: keep the report of the last real flush.
            if self.report is None:
                self.report = BatchReport()
            return self.report
        report = BatchReport(
            inserts=len(self._pending_inserts),
            deletes=len(self._pending_deletes),
        )
        self.report = report
        updater = self.updater
        snapshot = (
            updater.reach.copy() if updater._capturing_pairs() else None
        )
        start = time.perf_counter()
        dm: DeleteMaintenance | None = None
        for subtree, targets in self._pending_inserts:
            report.added_pairs += insert_pairs(
                updater.store, updater.topo, updater.reach, subtree, targets
            )
        updater.m_repair_seconds += time.perf_counter() - start
        if self._pending_deletes:
            dm = maintain_delete(
                updater.store,
                updater.topo,
                updater.reach,
                sorted(set(self._pending_deletes)),
            )
            updater.m_repair_seconds += dm.m_seconds
            report.removed_pairs = dm.removed_pairs
            report.removed_nodes = dm.removed_nodes
            report.gc_delta = dm.gc_delta
        self._pending_inserts.clear()
        self._pending_deletes.clear()
        report.maintenance_passes = 1
        updater.maintenance_runs += 1
        updater._version += 1
        report.seconds = time.perf_counter() - start
        updater._last_pair_delta = (
            updater.reach.diff(snapshot) if snapshot is not None else None
        )
        updater._post_verify()
        if updater._observers:
            # The flush event releases the per-op events buffered during
            # the session (even when the only new information is GC).
            records = (
                edge_records_from_delta(
                    updater.store, dm.gc_delta, dm.removed_info
                )
                if dm is not None
                else []
            )
            updater._emit(ViewEvent(
                generation=updater._version,
                edges=records,
                reason="batch_flush",
                closure=updater._last_pair_delta,
            ))
        return report
