"""The reachability matrix ``M`` and Algorithm Reach (paper, Fig. 4).

The implementation lives in the pluggable index subsystem
(:mod:`repro.index`); this module keeps the historical entry points:

- :class:`ReachabilityMatrix` — the original dict-of-``set`` matrix, now
  :class:`repro.index.SetReachabilityIndex` (the reference backend);
- :func:`compute_reach` — Algorithm Reach, with an optional ``backend``
  argument selecting the physical representation (``"sets"`` by default
  for drop-in compatibility; pass ``"bitset"`` or ``"auto"`` for the
  integer-bitmask engine).

New code should program against :class:`repro.index.ReachabilityIndex`
and :func:`repro.index.build_index` directly.
"""

from __future__ import annotations

from repro.core.topo import TopoOrder
from repro.index import ReachabilityIndex, SetReachabilityIndex, build_index
from repro.views.store import ViewStore

#: Backward-compatible name for the reference (set-based) backend.
ReachabilityMatrix = SetReachabilityIndex


def compute_reach(
    store: ViewStore, topo: TopoOrder, backend: str = "sets"
) -> ReachabilityIndex:
    """Algorithm Reach (paper, Fig. 4): ``M`` in ``O(n·|V|)``.

    Nodes are processed in backward topological order (ancestors first),
    so every parent's ancestor set is ready when a node is reached; the
    node's ancestors are its parents plus their ancestors.
    """
    return build_index(store, topo, backend)


__all__ = ["ReachabilityMatrix", "compute_reach"]
