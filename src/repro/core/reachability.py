"""The reachability matrix ``M`` and Algorithm Reach (paper, Fig. 4).

``M`` answers ancestor/descendant queries on the DAG in O(1); it is
"physically stored" as the set of its set bits — here two mutually
consistent adjacency maps (node → ancestors, node → descendants), the
in-memory equivalent of the paper's ``M(anc, desc)`` relation.

Algorithm Reach computes ``M`` in ``O(n·|V|)`` by dynamic programming
over the topological order: processing nodes ancestors-first, a node's
ancestor set is the union of its parents and their (already computed)
ancestor sets.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.topo import TopoOrder
from repro.views.store import ViewStore


class ReachabilityMatrix:
    """Sparse reachability matrix with both-direction access."""

    def __init__(self) -> None:
        self._anc: dict[int, set[int]] = {}
        self._desc: dict[int, set[int]] = {}
        self._pairs = 0

    # -- queries ------------------------------------------------------------------

    def anc(self, node: int) -> set[int]:
        """Proper ancestors of ``node`` (excludes the node itself)."""
        return self._anc.get(node, set())

    def desc(self, node: int) -> set[int]:
        """Proper descendants of ``node`` (excludes the node itself)."""
        return self._desc.get(node, set())

    def is_ancestor(self, a: int, d: int) -> bool:
        return d in self._desc.get(a, ())

    def __contains__(self, pair: tuple[int, int]) -> bool:
        a, d = pair
        return self.is_ancestor(a, d)

    def __len__(self) -> int:
        """|M|: number of set bits (stored (anc, desc) pairs)."""
        return self._pairs

    def pairs(self) -> Iterator[tuple[int, int]]:
        for desc_node, ancestors in self._anc.items():
            for anc_node in ancestors:
                yield (anc_node, desc_node)

    def anc_of_set(self, nodes: Iterable[int]) -> set[int]:
        """Union of proper ancestors over a set of nodes."""
        out: set[int] = set()
        for node in nodes:
            out |= self.anc(node)
        return out

    def desc_of_set(self, nodes: Iterable[int]) -> set[int]:
        out: set[int] = set()
        for node in nodes:
            out |= self.desc(node)
        return out

    # -- mutation ------------------------------------------------------------------

    def insert(self, anc: int, desc: int) -> bool:
        """Set bit (anc, desc); returns True if newly set."""
        bucket = self._anc.setdefault(desc, set())
        if anc in bucket:
            return False
        bucket.add(anc)
        self._desc.setdefault(anc, set()).add(desc)
        self._pairs += 1
        return True

    def remove(self, anc: int, desc: int) -> bool:
        """Clear bit (anc, desc); returns True if it was set."""
        bucket = self._anc.get(desc)
        if bucket is None or anc not in bucket:
            return False
        bucket.discard(anc)
        self._desc.get(anc, set()).discard(desc)
        self._pairs -= 1
        return True

    def set_ancestors(self, node: int, ancestors: set[int]) -> None:
        """Replace the ancestor set of ``node`` wholesale."""
        old = self._anc.get(node, set())
        for anc in old - ancestors:
            self._desc.get(anc, set()).discard(node)
            self._pairs -= 1
        for anc in ancestors - old:
            self._desc.setdefault(anc, set()).add(node)
            self._pairs += 1
        self._anc[node] = set(ancestors)

    def drop_node(self, node: int) -> None:
        """Remove every pair mentioning ``node``."""
        for anc in self._anc.pop(node, set()):
            self._desc.get(anc, set()).discard(node)
            self._pairs -= 1
        for desc in self._desc.pop(node, set()):
            self._anc.get(desc, set()).discard(node)
            self._pairs -= 1

    def copy(self) -> "ReachabilityMatrix":
        clone = ReachabilityMatrix()
        clone._anc = {n: set(s) for n, s in self._anc.items()}
        clone._desc = {n: set(s) for n, s in self._desc.items()}
        clone._pairs = self._pairs
        return clone

    def equals(self, other: "ReachabilityMatrix") -> bool:
        mine = {(a, d) for d, ancs in self._anc.items() for a in ancs}
        theirs = {(a, d) for d, ancs in other._anc.items() for a in ancs}
        return mine == theirs


def compute_reach(store: ViewStore, topo: TopoOrder) -> ReachabilityMatrix:
    """Algorithm Reach (paper, Fig. 4): ``M`` in ``O(n·|V|)``.

    Nodes are processed in backward topological order (ancestors first),
    so every parent's ancestor set is ready when a node is reached; the
    node's ancestors are its parents plus their ancestors.
    """
    matrix = ReachabilityMatrix()
    for node in topo.backward():
        ancestors: set[int] = set()
        for parent in store.parents_of(node):
            ancestors.add(parent)
            ancestors |= matrix.anc(parent)
        if ancestors:
            matrix.set_ancestors(node, ancestors)
    return matrix
