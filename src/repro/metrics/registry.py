"""Counters, gauges and fixed-bucket histograms — no dependencies.

The production-observability substrate of the service: a
:class:`MetricsRegistry` holds metric *families* (one name + help + type
each), each family holds *series* (one per label combination), and every
series is a plain thread-safe accumulator.  The shapes mirror the
Prometheus data model deliberately — :func:`repro.metrics.render.
render_prometheus` emits the text exposition format straight from a
registry — but nothing here imports anything beyond the standard
library, keeping the core dependency-free (see ROADMAP.md).

Three instrument types, chosen for the write path they instrument:

- :class:`Counter` — monotonically increasing totals (commits, events
  published, WAL bytes).  ``inc()`` only; a decrease is a bug the
  validator (``scripts/validate_metrics.py``) can catch across
  scrapes.
- :class:`Gauge` — point-in-time levels (live subscriptions, changefeed
  consumers, view size).  Set at collection time by
  :meth:`~repro.service.facade.ViewService.metrics` so they are always
  consistent with one generation.
- :class:`Histogram` — fixed-bucket latency distributions (per-phase
  commit latency, lock wait/hold, xpath reads).  Buckets are chosen at
  construction and never change, so ``observe()`` is O(log buckets)
  with no allocation.

Instrument handles are cheap to hold: components resolve them once in
``__init__`` and call ``inc()``/``observe()`` on the hot path.  A
component constructed without a registry gets :data:`NULL_METRICS`,
whose instruments are no-ops — direct engine use (benchmarks, the bare
``XMLViewUpdater``) pays one attribute call per site and nothing else.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

#: Default latency buckets (seconds): 50µs .. 2.5s, roughly log-spaced.
#: Wide enough for a cold full re-evaluation, fine enough to separate a
#: skip decision from a Δ(M,L) repair.  ``+Inf`` is implicit.
DEFAULT_LATENCY_BUCKETS = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: The instrument types a family can have (Prometheus TYPE values).
METRIC_TYPES = ("counter", "gauge", "histogram")


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_labels(key: tuple[tuple[str, str], ...]) -> str:
    """Render a label key as ``{a="x",b="y"}`` (empty string if none)."""
    if not key:
        return ""
    inner = ",".join(f'{name}="{_escape(value)}"' for name, value in key)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


class Counter:
    """One monotonically-increasing series."""

    __slots__ = ("_value", "_mutex")

    def __init__(self) -> None:
        self._value = 0.0
        self._mutex = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount!r})")
        with self._mutex:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        with self._mutex:
            return self._value


class Gauge:
    """One point-in-time level."""

    __slots__ = ("_value", "_mutex")

    def __init__(self) -> None:
        self._value = 0.0
        self._mutex = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the current level."""
        with self._mutex:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the level upward."""
        with self._mutex:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the level downward."""
        with self._mutex:
            self._value -= amount

    @property
    def value(self) -> float:
        """The current level."""
        with self._mutex:
            return self._value


class Histogram:
    """One fixed-bucket latency distribution.

    Stores one count per configured bucket boundary plus the implicit
    ``+Inf`` bucket; rendering cumulates them, so ``observe()`` touches
    exactly one slot.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_mutex")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._mutex = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample."""
        index = bisect_left(self.buckets, value)
        with self._mutex:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total samples observed."""
        with self._mutex:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._mutex:
            return self._sum

    def snapshot(self) -> dict:
        """JSON-safe state: cumulative buckets keyed by upper bound."""
        with self._mutex:
            counts = list(self._counts)
            total, s = self._count, self._sum
        cumulative: dict[str, int] = {}
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            cumulative[repr(bound)] = running
        cumulative["+Inf"] = total
        return {"count": total, "sum": s, "buckets": cumulative}


class MetricFamily:
    """One named metric: help text, type, and its labeled series."""

    def __init__(self, name: str, help_text: str, metric_type: str,
                 buckets: tuple[float, ...] | None = None):
        if metric_type not in METRIC_TYPES:
            raise ValueError(
                f"metric type must be one of {METRIC_TYPES}, "
                f"got {metric_type!r}"
            )
        self.name = name
        self.help = help_text
        self.type = metric_type
        self.buckets = buckets
        self._series: dict[tuple, object] = {}
        self._mutex = threading.Lock()

    def labels(self, **labels: str):
        """The series for this label combination (created on first use)."""
        key = _label_key(labels)
        with self._mutex:
            series = self._series.get(key)
            if series is None:
                series = self._make()
                self._series[key] = series
            return series

    def _make(self):
        if self.type == "counter":
            return Counter()
        if self.type == "gauge":
            return Gauge()
        return Histogram(self.buckets or DEFAULT_LATENCY_BUCKETS)

    # Unlabeled convenience: family.inc() / .set() / .observe() act on
    # the series with no labels.
    def inc(self, amount: float = 1.0) -> None:
        """``inc`` on the unlabeled series (counters and gauges)."""
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """``dec`` on the unlabeled series (gauges)."""
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        """``set`` on the unlabeled series (gauges)."""
        self.labels().set(value)

    def observe(self, value: float) -> None:
        """``observe`` on the unlabeled series (histograms)."""
        self.labels().observe(value)

    @property
    def value(self) -> float:
        """Value of the unlabeled series (counters and gauges)."""
        return self.labels().value

    def snapshot(self) -> dict:
        """Snapshot of the unlabeled series (histograms)."""
        return self.labels().snapshot()

    def series(self) -> list[tuple[tuple, object]]:
        """(label key, series) pairs in sorted label order."""
        with self._mutex:
            return sorted(self._series.items())


class MetricsRegistry:
    """All of one service's metric families, by name.

    ``counter()``/``gauge()``/``histogram()`` are get-or-create: the
    first call fixes the help text and type, later calls return the
    same family (a *different* type for an existing name raises — one
    name, one meaning).
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._mutex = threading.Lock()

    def _get_or_create(self, name: str, help_text: str, metric_type: str,
                       buckets: tuple[float, ...] | None = None
                       ) -> MetricFamily:
        with self._mutex:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, help_text, metric_type, buckets)
                self._families[name] = family
            elif family.type != metric_type:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.type}, cannot re-register as {metric_type}"
                )
            return family

    def counter(self, name: str, help_text: str) -> MetricFamily:
        """Get or create a counter family."""
        return self._get_or_create(name, help_text, "counter")

    def gauge(self, name: str, help_text: str) -> MetricFamily:
        """Get or create a gauge family."""
        return self._get_or_create(name, help_text, "gauge")

    def histogram(self, name: str, help_text: str,
                  buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
                  ) -> MetricFamily:
        """Get or create a histogram family with fixed ``buckets``."""
        return self._get_or_create(name, help_text, "histogram", buckets)

    def families(self) -> list[MetricFamily]:
        """Every registered family, sorted by name."""
        with self._mutex:
            return [self._families[k] for k in sorted(self._families)]

    def to_dict(self) -> dict:
        """JSON-safe snapshot, grouped by instrument type.

        ``counters`` and ``gauges`` map rendered series names
        (``name{label="v"}``) to values; ``histograms`` map them to
        ``{"count", "sum", "buckets"}`` dicts with cumulative bucket
        counts keyed by upper bound.
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for family in self.families():
            for key, series in family.series():
                label = family.name + format_labels(key)
                if family.type == "counter":
                    out["counters"][label] = series.value
                elif family.type == "gauge":
                    out["gauges"][label] = series.value
                else:
                    out["histograms"][label] = series.snapshot()
        return out


class _NullInstrument:
    """A no-op counter/gauge/histogram (the disabled-metrics path)."""

    __slots__ = ()

    def labels(self, **labels):
        """Return self (no-op)."""
        return self

    def inc(self, amount: float = 1.0) -> None:
        """No-op."""

    def dec(self, amount: float = 1.0) -> None:
        """No-op."""

    def set(self, value: float) -> None:
        """No-op."""

    def observe(self, value: float) -> None:
        """No-op."""


class _NullRegistry:
    """Hands out no-op instruments; components default to this when no
    real registry is threaded in (direct engine use, benchmarks)."""

    _instrument = _NullInstrument()

    def counter(self, name: str, help_text: str) -> _NullInstrument:
        """A no-op counter."""
        return self._instrument

    def gauge(self, name: str, help_text: str) -> _NullInstrument:
        """A no-op gauge."""
        return self._instrument

    def histogram(self, name: str, help_text: str,
                  buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
                  ) -> _NullInstrument:
        """A no-op histogram."""
        return self._instrument


#: The shared no-op registry (``metrics = metrics or NULL_METRICS``).
NULL_METRICS = _NullRegistry()
