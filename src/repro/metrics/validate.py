"""Validate Prometheus text exposition output (and scrape deltas).

The checking half of the metrics contract: :func:`validate_exposition`
parses an exposition document (what :func:`repro.metrics.render.
render_prometheus` or ``repro.apply --metrics`` emits) and returns a
list of problems — an empty list means the document is well-formed.
``scripts/validate_metrics.py`` is the CLI wrapper CI runs.

Checks, each with a pointed message naming the offending series:

- every sample belongs to a family announced by ``# HELP`` *and*
  ``# TYPE`` lines (in that order, before any of its samples);
- the ``TYPE`` is one of ``counter`` / ``gauge`` / ``histogram``;
- no series (name + label set) appears twice;
- values parse as finite numbers; counter values are non-negative;
- histograms are internally consistent: bucket counts are cumulative
  (non-decreasing as ``le`` grows), the ``+Inf`` bucket is present and
  equals ``_count``, and ``_sum``/``_count`` exist for every bucketed
  series;
- with a *previous* exposition to compare against, counters (histogram
  ``_bucket``/``_count``/``_sum`` included) must not decrease — a
  non-monotonic counter means a restart the scraper did not see, or an
  instrumentation bug.
"""

from __future__ import annotations

import math
import re

#: Legal TYPE values (the subset this library emits).
VALID_TYPES = ("counter", "gauge", "histogram")

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _base_name(name: str) -> str:
    """The family name a sample belongs to (strip histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_exposition(text: str) -> tuple[dict, dict, list[str]]:
    """Parse exposition text into (families, samples, problems).

    ``families`` maps family name to ``{"help": bool, "type": str}``;
    ``samples`` maps ``(sample name, sorted label tuple)`` to its float
    value.  Parse-level problems are returned rather than raised so the
    caller can report all of them at once.
    """
    families: dict[str, dict] = {}
    samples: dict[tuple, float] = {}
    problems: list[str] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                problems.append(f"line {lineno}: HELP without text: {line!r}")
                continue
            families.setdefault(parts[2], {})["help"] = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {lineno}: malformed TYPE: {line!r}")
                continue
            name, metric_type = parts[2], parts[3]
            entry = families.setdefault(name, {})
            if metric_type not in VALID_TYPES:
                problems.append(
                    f"line {lineno}: family {name!r} has unknown type "
                    f"{metric_type!r} (expected one of {VALID_TYPES})"
                )
            entry["type"] = metric_type
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        labels_text = match.group("labels") or ""
        labels = tuple(sorted(
            (k, v) for k, v in _LABEL.findall(labels_text)
        ))
        try:
            value = float(match.group("value"))
        except ValueError:
            problems.append(
                f"line {lineno}: series {name!r} has non-numeric value "
                f"{match.group('value')!r}"
            )
            continue
        key = (name, labels)
        if key in samples:
            problems.append(
                f"line {lineno}: duplicate series {_series_repr(key)}"
            )
            continue
        samples[key] = value
    return families, samples, problems


def _series_repr(key: tuple) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


def _check_histogram(family: str, samples: dict, problems: list[str]) -> None:
    """Bucket/count/sum coherence for one histogram family."""
    # Group buckets by their non-le label set.
    grouped: dict[tuple, list[tuple[str, float]]] = {}
    for (name, labels), value in samples.items():
        if name != family + "_bucket":
            continue
        le = dict(labels).get("le")
        if le is None:
            problems.append(
                f"histogram series {_series_repr((name, labels))} is "
                f"missing its 'le' label"
            )
            continue
        rest = tuple(kv for kv in labels if kv[0] != "le")
        grouped.setdefault(rest, []).append((le, value))
    for rest, buckets in grouped.items():
        ident = _series_repr((family, rest))

        def bound(le: str) -> float:
            return math.inf if le == "+Inf" else float(le)

        ordered = sorted(buckets, key=lambda item: bound(item[0]))
        previous = -1.0
        for le, value in ordered:
            if value < previous:
                problems.append(
                    f"histogram {ident}: bucket le={le} count {value:g} "
                    f"is below the previous bucket's {previous:g} "
                    f"(buckets must be cumulative)"
                )
            previous = value
        inf = dict(buckets).get("+Inf")
        if inf is None:
            problems.append(f"histogram {ident}: no '+Inf' bucket")
        count = samples.get((family + "_count", rest))
        if count is None:
            problems.append(f"histogram {ident}: missing _count series")
        elif inf is not None and count != inf:
            problems.append(
                f"histogram {ident}: _count is {count:g} but the +Inf "
                f"bucket holds {inf:g} (they must match)"
            )
        if (family + "_sum", rest) not in samples:
            problems.append(f"histogram {ident}: missing _sum series")


def validate_exposition(text: str, previous: str | None = None) -> list[str]:
    """All problems with ``text`` ([] = valid).

    ``previous`` is an earlier scrape of the same target: counter
    families (and histogram ``_bucket``/``_count``/``_sum`` series)
    must not have decreased since.
    """
    families, samples, problems = parse_exposition(text)
    for (name, labels), value in samples.items():
        base = _base_name(name)
        family = families.get(base) or families.get(name)
        ident = _series_repr((name, labels))
        if family is None:
            problems.append(
                f"series {ident} has no # HELP/# TYPE announcement"
            )
            continue
        if not family.get("help"):
            problems.append(f"series {ident} has no # HELP line")
        if "type" not in family:
            problems.append(f"series {ident} has no # TYPE line")
            continue
        if not math.isfinite(value):
            problems.append(f"series {ident} has non-finite value {value!r}")
        kind = family["type"]
        if kind == "counter" and value < 0:
            problems.append(
                f"counter {ident} is negative ({value:g}); counters only "
                f"go up"
            )
        if kind == "histogram" and name == base:
            problems.append(
                f"series {ident} is declared a histogram but has no "
                f"_bucket/_sum/_count suffix"
            )
    for name, family in families.items():
        if family.get("type") == "histogram":
            _check_histogram(name, samples, problems)
    if previous is not None:
        prev_families, prev_samples, prev_problems = (
            parse_exposition(previous)
        )
        problems.extend(
            f"previous exposition: {problem}" for problem in prev_problems
        )
        for key, old in prev_samples.items():
            name, _labels = key
            base = _base_name(name)
            fam = families.get(base) or families.get(name)
            kind = (fam or {}).get("type")
            monotonic = kind == "counter" or (
                kind == "histogram" and name != base
            )
            if not monotonic:
                continue
            new = samples.get(key)
            if new is not None and new < old:
                problems.append(
                    f"counter {_series_repr(key)} went backwards: "
                    f"{old:g} -> {new:g} (non-monotonic)"
                )
    return problems
