"""Prometheus text exposition rendering for a :class:`MetricsRegistry`.

The output follows the text-based exposition format version 0.0.4:
one ``# HELP`` and one ``# TYPE`` comment per family, then every series
— histograms expand into cumulative ``_bucket{le=...}`` series plus
``_sum`` and ``_count``.  ``scripts/validate_metrics.py`` checks the
output's well-formedness (and counter monotonicity across scrapes), so
the renderer and the validator together freeze the surface.
"""

from __future__ import annotations

from repro.metrics.registry import MetricsRegistry, format_labels


def _merge_labels(key: tuple, extra: tuple[tuple[str, str], ...]) -> str:
    return format_labels(tuple(sorted((*key, *extra))))


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    # le= values render like sample values: trailing .0 trimmed off
    # integers, full precision kept elsewhere.
    return _format_value(float(bound))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render ``registry`` in the Prometheus text exposition format.

    Families render in name order, series in label order, so two
    renders of the same state are byte-identical (the soak harness and
    the golden tests rely on this).
    """
    lines: list[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.type}")
        for key, series in family.series():
            if family.type in ("counter", "gauge"):
                lines.append(
                    f"{family.name}{format_labels(key)} "
                    f"{_format_value(series.value)}"
                )
                continue
            snap = series.snapshot()
            for bound, cumulative in snap["buckets"].items():
                le = bound if bound == "+Inf" else _format_bound(float(bound))
                labels = _merge_labels(key, (("le", le),))
                lines.append(f"{family.name}_bucket{labels} {cumulative}")
            lines.append(
                f"{family.name}_sum{format_labels(key)} "
                f"{_format_value(snap['sum'])}"
            )
            lines.append(
                f"{family.name}_count{format_labels(key)} {snap['count']}"
            )
    return "\n".join(lines) + "\n" if lines else ""
