"""First-class runtime metrics for the view service (no dependencies).

Three pieces, one contract:

- :mod:`repro.metrics.registry` — :class:`MetricsRegistry` with
  counters, gauges and fixed-bucket latency histograms, threaded
  through :class:`~repro.service.facade.ViewService`,
  :class:`~repro.service.pipeline.CommitPipeline`,
  :class:`~repro.changefeed.hub.ChangefeedHub`,
  :class:`~repro.subscribe.engine.SubscriptionRegistry` and
  :class:`~repro.wal.log.WriteAheadLog`;
- :mod:`repro.metrics.render` — :func:`render_prometheus`, the text
  exposition format;
- :mod:`repro.metrics.validate` — :func:`validate_exposition`, the
  well-formedness/monotonicity checker behind
  ``scripts/validate_metrics.py``.

``service.metrics()`` snapshots the registry as a JSON-safe dict;
``service.metrics_text()`` renders the exposition document (what
``repro.apply --metrics`` prints).  The metric catalog lives in
``docs/observability.md``.
"""

from repro.metrics.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NULL_METRICS,
)
from repro.metrics.render import render_prometheus
from repro.metrics.validate import parse_exposition, validate_exposition

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_METRICS",
    "DEFAULT_LATENCY_BUCKETS",
    "render_prometheus",
    "parse_exposition",
    "validate_exposition",
]
