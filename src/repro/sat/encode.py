"""Finite-domain equality logic → CNF (direct encoding).

The insertion translator produces constraints over *finite-domain
variables* (unknown attribute values): equalities between a variable and
a constant, equalities between two variables, and Boolean combinations
thereof.  This module encodes such a formula into CNF:

- every variable ``v`` with domain ``{c1..ck}`` gets selector
  propositions ``p_{v=ci}`` under an exactly-one constraint (the paper's
  "x = c1 ∨ ... ∨ x = ck" plus the pairwise "(p̄ ∨ p̄')" clauses);
- ``v = c`` maps to the selector literal; ``v = w`` maps to a Tseitin
  proposition tied to agreement on every common domain value;
- arbitrary and/or/not structure is encoded by Tseitin transformation.

Attributes over *infinite* domains are handled upstream by finite
abstraction: their effective domain is the set of constants they are
compared against plus one fresh "anything else" token per variable —
sound and complete for pure equality constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.sat.cnf import CNF


@dataclass(frozen=True)
class FDVar:
    """A finite-domain variable, identified by name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class VarConst:
    """Atom ``var = value``."""

    var: FDVar
    value: object

    def __str__(self) -> str:
        return f"{self.var}={self.value!r}"


@dataclass(frozen=True)
class VarVar:
    """Atom ``a = b`` between two variables."""

    a: FDVar
    b: FDVar

    def __str__(self) -> str:
        return f"{self.a}={self.b}"


@dataclass(frozen=True)
class FdAnd:
    parts: tuple

    def __str__(self) -> str:
        return "(" + " & ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class FdOr:
    parts: tuple

    def __str__(self) -> str:
        return "(" + " | ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class FdNot:
    part: object

    def __str__(self) -> str:
        return f"~{self.part}"


class _FTrue:
    def __str__(self) -> str:
        return "T"


class _FFalse:
    def __str__(self) -> str:
        return "F"


FTrue = _FTrue()
FFalse = _FFalse()

Formula = object  # union of the node types above


def fd_and(*parts: Formula) -> Formula:
    flat: list[Formula] = []
    for part in parts:
        if part is FTrue:
            continue
        if part is FFalse:
            return FFalse
        if isinstance(part, FdAnd):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return FTrue
    if len(flat) == 1:
        return flat[0]
    return FdAnd(tuple(flat))


def fd_or(*parts: Formula) -> Formula:
    flat: list[Formula] = []
    for part in parts:
        if part is FFalse:
            continue
        if part is FTrue:
            return FTrue
        if isinstance(part, FdOr):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return FFalse
    if len(flat) == 1:
        return flat[0]
    return FdOr(tuple(flat))


def fd_not(part: Formula) -> Formula:
    if part is FTrue:
        return FFalse
    if part is FFalse:
        return FTrue
    if isinstance(part, FdNot):
        return part.part
    return FdNot(part)


@dataclass
class EncodingResult:
    """CNF plus the bookkeeping to decode a model back to values."""

    cnf: CNF
    domains: dict[FDVar, tuple]
    selector: dict[tuple[FDVar, int], int]

    def decode(self, assignment: Mapping[int, bool]) -> dict[FDVar, object]:
        """Map a SAT model back to a value per finite-domain variable."""
        values: dict[FDVar, object] = {}
        for (var, index), prop in self.selector.items():
            if assignment.get(prop, False):
                values[var] = self.domains[var][index]
        # Exactly-one guarantees presence; default defensively anyway.
        for var, domain in self.domains.items():
            values.setdefault(var, domain[0])
        return values


def encode_formula(
    formula: Formula, domains: Mapping[FDVar, tuple]
) -> EncodingResult:
    """Encode ``formula`` over the given per-variable domains."""
    cnf = CNF()
    doms = {v: tuple(d) for v, d in domains.items()}
    for var, domain in doms.items():
        if not domain:
            raise ValueError(f"variable {var} has an empty domain")
    selector: dict[tuple[FDVar, int], int] = {}
    for var in sorted(doms, key=lambda v: v.name):
        props = [cnf.new_var() for _ in doms[var]]
        for index, prop in enumerate(props):
            selector[(var, index)] = prop
        cnf.add_exactly_one(props)
    result = EncodingResult(cnf, doms, selector)
    root = _tseitin(formula, result)
    if root is None:  # constant formula
        if formula is FFalse:
            cnf.add_clause(())
        return result
    cnf.add_clause((root,))
    return result


def _sel(result: EncodingResult, var: FDVar, value: object) -> int | None:
    """Selector literal for var=value, or None if value not in domain."""
    domain = result.domains.get(var)
    if domain is None:
        raise ValueError(f"unknown variable {var}")
    for index, candidate in enumerate(domain):
        if candidate == value and type(candidate) is type(value):
            return result.selector[(var, index)]
        if candidate == value:
            return result.selector[(var, index)]
    return None


def _tseitin(formula: Formula, result: EncodingResult) -> int | None:
    """Return a literal equivalent to ``formula`` (None for constants)."""
    cnf = result.cnf
    if formula is FTrue:
        aux = cnf.new_var()
        cnf.add_clause((aux,))
        return aux
    if formula is FFalse:
        aux = cnf.new_var()
        cnf.add_clause((-aux,))
        return aux
    if isinstance(formula, VarConst):
        lit = _sel(result, formula.var, formula.value)
        if lit is None:
            aux = cnf.new_var()
            cnf.add_clause((-aux,))  # value outside domain: atom is false
            return aux
        return lit
    if isinstance(formula, VarVar):
        return _encode_var_eq(formula.a, formula.b, result)
    if isinstance(formula, FdNot):
        inner = _tseitin(formula.part, result)
        assert inner is not None
        return -inner
    if isinstance(formula, FdAnd):
        lits = [_tseitin(p, result) for p in formula.parts]
        aux = cnf.new_var()
        for lit in lits:
            assert lit is not None
            cnf.add_clause((-aux, lit))
        cnf.add_clause((aux, *(-lit for lit in lits if lit is not None)))
        return aux
    if isinstance(formula, FdOr):
        lits = [_tseitin(p, result) for p in formula.parts]
        aux = cnf.new_var()
        cnf.add_clause((-aux, *(lit for lit in lits if lit is not None)))
        for lit in lits:
            assert lit is not None
            cnf.add_clause((aux, -lit))
        return aux
    raise TypeError(f"unknown formula node {formula!r}")


def _encode_var_eq(a: FDVar, b: FDVar, result: EncodingResult) -> int:
    """Tseitin proposition for ``a = b`` over the two domains."""
    cnf = result.cnf
    dom_a = result.domains[a]
    dom_b = result.domains[b]
    aux = cnf.new_var()
    index_b = {value: i for i, value in enumerate(dom_b)}
    # aux → (a=c → b=c) for every c in dom(a)
    for i, value in enumerate(dom_a):
        pa = result.selector[(a, i)]
        j = index_b.get(value)
        if j is None:
            cnf.add_clause((-aux, -pa))
        else:
            pb = result.selector[(b, j)]
            cnf.add_clause((-aux, -pa, pb))
            # (a=c ∧ b=c) → aux
            cnf.add_clause((aux, -pa, -pb))
    return aux
