"""CNF formulas over positive integer variables.

A literal is a non-zero int (DIMACS convention: ``-v`` negates variable
``v``); a clause is a tuple of literals; a CNF is a list of clauses plus
the variable count.
"""

from __future__ import annotations

from typing import Iterable, Iterator

Lit = int
Clause = tuple[Lit, ...]


class CNF:
    """A CNF formula under construction."""

    def __init__(self) -> None:
        self.clauses: list[Clause] = []
        self.num_vars = 0

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its (positive) index."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: Iterable[Lit]) -> None:
        clause = tuple(literals)
        if not clause:
            # An empty clause makes the formula trivially unsatisfiable;
            # keep it so solvers detect the contradiction.
            self.clauses.append(clause)
            return
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self.num_vars = max(self.num_vars, abs(lit))
        self.clauses.append(clause)

    def add_exactly_one(self, variables: list[int]) -> None:
        """Exactly-one constraint: at-least-one + pairwise at-most-one."""
        self.add_clause(variables)
        for i in range(len(variables)):
            for j in range(i + 1, len(variables)):
                self.add_clause((-variables[i], -variables[j]))

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def is_satisfied_by(self, assignment: dict[int, bool]) -> bool:
        """Whether a (total) assignment satisfies every clause."""
        for clause in self.clauses:
            if not any(
                assignment.get(abs(lit), False) == (lit > 0) for lit in clause
            ):
                return False
        return True

    def to_dimacs(self) -> str:
        """Serialize in DIMACS format (diagnostics / interop)."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines)
