"""A complete DPLL SAT solver with unit propagation.

Used as the oracle in tests and as the fallback when the caller needs a
definite UNSAT answer (WalkSAT is incomplete: "gave up" is not "UNSAT" —
Theorem 2 makes the underlying problem NP-complete, so a complete check
is only feasible because the paper's encodings are small: their size
depends on ``|ΔV|`` and ``|Q|``, not on the database).
"""

from __future__ import annotations

import sys

from repro.sat.cnf import CNF


def dpll_solve(cnf: CNF) -> dict[int, bool] | None:
    """Solve; return a satisfying assignment or ``None`` if unsatisfiable."""
    clauses = [frozenset(c) for c in cnf.clauses]
    if any(not c for c in clauses):
        return None
    # Recursion depth is bounded by the variable count; raise the limit
    # defensively for larger encodings.
    limit = sys.getrecursionlimit()
    needed = cnf.num_vars * 2 + 100
    if needed > limit:
        sys.setrecursionlimit(needed)
    result = _solve([set(c) for c in clauses], {})
    if result is None:
        return None
    for var in range(1, cnf.num_vars + 1):
        result.setdefault(var, False)
    return result


def _simplify(clauses: list[set[int]], lit: int) -> list[set[int]] | None:
    """Assert ``lit``; drop satisfied clauses, shrink the rest.

    Returns ``None`` on an empty-clause conflict.
    """
    out: list[set[int]] = []
    for clause in clauses:
        if lit in clause:
            continue
        if -lit in clause:
            reduced = clause - {-lit}
            if not reduced:
                return None
            out.append(reduced)
        else:
            out.append(clause)
    return out


def _solve(
    clauses: list[set[int]], assignment: dict[int, bool]
) -> dict[int, bool] | None:
    # Unit propagation to fixpoint.
    while True:
        unit = next((c for c in clauses if len(c) == 1), None)
        if unit is None:
            break
        lit = next(iter(unit))
        assignment[abs(lit)] = lit > 0
        reduced = _simplify(clauses, lit)
        if reduced is None:
            return None
        clauses = reduced
    if not clauses:
        return assignment
    # Pure-literal elimination.
    polarity: dict[int, int] = {}
    for clause in clauses:
        for lit in clause:
            var = abs(lit)
            sign = 1 if lit > 0 else -1
            polarity[var] = 0 if polarity.get(var, sign) != sign else sign
    pure = next((v for v, s in polarity.items() if s != 0), None)
    if pure is not None:
        lit = pure * polarity[pure]
        assignment[abs(lit)] = lit > 0
        reduced = _simplify(clauses, lit)
        if reduced is None:  # pragma: no cover - cannot conflict on pure
            return None
        return _solve(reduced, assignment)
    # Branch on a literal from the shortest clause.
    shortest = min(clauses, key=len)
    lit = next(iter(shortest))
    for choice in (lit, -lit):
        reduced = _simplify(clauses, choice)
        if reduced is not None:
            trial = dict(assignment)
            trial[abs(choice)] = choice > 0
            result = _solve(reduced, trial)
            if result is not None:
                return result
    return None
