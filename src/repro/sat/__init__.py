"""SAT substrate for the insertion translator (paper, Section 4.3).

The paper reduces SPJ view insertion to SAT and hands the instance to
Walksat.  Walksat is a closed-source external binary, so this package
reimplements everything from scratch:

- :mod:`repro.sat.cnf` — CNF formulas, literals, assignments;
- :mod:`repro.sat.dpll` — a complete DPLL solver with unit propagation
  and pure-literal elimination (used as the oracle in tests, and to
  distinguish "UNSAT" from "WalkSAT gave up");
- :mod:`repro.sat.walksat` — WalkSAT stochastic local search with the
  classic noise parameter and restarts (the paper's solver);
- :mod:`repro.sat.encode` — finite-domain equality logic → CNF (direct
  encoding with at-least-one / at-most-one clauses, the construction
  sketched at the end of Section 4.3).
"""

from repro.sat.cnf import CNF, Clause, Lit
from repro.sat.dpll import dpll_solve
from repro.sat.walksat import walksat_solve
from repro.sat.encode import (
    EncodingResult,
    FDVar,
    FFalse,
    FTrue,
    FdAnd,
    FdNot,
    FdOr,
    Formula,
    VarConst,
    VarVar,
    encode_formula,
)

__all__ = [
    "CNF",
    "Clause",
    "Lit",
    "dpll_solve",
    "walksat_solve",
    "FDVar",
    "Formula",
    "FTrue",
    "FFalse",
    "VarConst",
    "VarVar",
    "FdAnd",
    "FdOr",
    "FdNot",
    "encode_formula",
    "EncodingResult",
]
