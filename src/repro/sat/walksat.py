"""WalkSAT: stochastic local search for SAT (Selman & Kautz).

The paper uses the authors' Walksat tool to process the view-insertion
encodings and reports that it returns a truth assignment in 78% of their
cases.  This is a faithful reimplementation of the classic algorithm:

1. start from a random assignment;
2. while unsatisfied clauses remain, pick one at random;
3. with probability ``noise`` flip a random variable of the clause,
   otherwise flip the variable minimizing the *break count* (number of
   currently satisfied clauses the flip would break), flipping freely
   when some variable has break count zero;
4. restart after ``max_flips`` flips, up to ``max_restarts`` times.

Incomplete by design: ``None`` means "gave up", not "unsatisfiable".
"""

from __future__ import annotations

import random

from repro.sat.cnf import CNF


def walksat_solve(
    cnf: CNF,
    max_flips: int = 10_000,
    max_restarts: int = 10,
    noise: float = 0.5,
    rng: random.Random | None = None,
) -> dict[int, bool] | None:
    """Run WalkSAT; return an assignment or ``None`` if it gives up."""
    if any(len(c) == 0 for c in cnf.clauses):
        return None
    rng = rng if rng is not None else random.Random(0)
    num_vars = cnf.num_vars
    if num_vars == 0:
        return {} if not cnf.clauses else None
    clauses = [tuple(c) for c in cnf.clauses]
    # occurrences: var -> clause indexes containing it (either sign)
    occurs: dict[int, list[int]] = {v: [] for v in range(1, num_vars + 1)}
    for idx, clause in enumerate(clauses):
        for lit in clause:
            occurs[abs(lit)].append(idx)

    for _ in range(max_restarts):
        assignment = [False] + [rng.random() < 0.5 for _ in range(num_vars)]
        sat_count = [0] * len(clauses)
        unsat: set[int] = set()
        for idx, clause in enumerate(clauses):
            count = sum(
                1 for lit in clause if assignment[abs(lit)] == (lit > 0)
            )
            sat_count[idx] = count
            if count == 0:
                unsat.add(idx)

        def flip(var: int) -> None:
            new_value = not assignment[var]
            assignment[var] = new_value
            for idx in occurs[var]:
                clause = clauses[idx]
                for lit in clause:
                    if abs(lit) != var:
                        continue
                    now_true = assignment[var] == (lit > 0)
                    if now_true:
                        sat_count[idx] += 1
                        if sat_count[idx] == 1:
                            unsat.discard(idx)
                    else:
                        sat_count[idx] -= 1
                        if sat_count[idx] == 0:
                            unsat.add(idx)

        def break_count(var: int) -> int:
            broken = 0
            for idx in occurs[var]:
                if sat_count[idx] != 1:
                    continue
                # Broken iff the single satisfying literal is var's.
                for lit in clauses[idx]:
                    if abs(lit) == var and assignment[var] == (lit > 0):
                        broken += 1
                        break
            return broken

        for _ in range(max_flips):
            if not unsat:
                return {v: assignment[v] for v in range(1, num_vars + 1)}
            clause = clauses[rng.choice(tuple(unsat))]
            variables = sorted({abs(lit) for lit in clause})
            breaks = [(break_count(v), v) for v in variables]
            zero = [v for b, v in breaks if b == 0]
            if zero:
                flip(rng.choice(zero))
            elif rng.random() < noise:
                flip(rng.choice(variables))
            else:
                best = min(b for b, _ in breaks)
                flip(rng.choice([v for b, v in breaks if b == best]))
        if not unsat:
            return {v: assignment[v] for v in range(1, num_vars + 1)}
    return None
