"""Background garbage collection of unreachable view nodes.

After a deletion, subtrees may become disconnected from the root; the
paper keeps them in the gen tables during update processing (shared
subtrees must not disappear eagerly) and removes them *in the background*
"at the completion of ΔV" (Section 2.3).  :func:`collect_unreachable`
implements that pass: it drops every node no longer reachable from the
root, together with its incident edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.views.store import ViewStore


@dataclass
class GCResult:
    """What a garbage-collection pass removed."""

    removed_nodes: list[int] = field(default_factory=list)
    removed_edges: list[tuple[int, int]] = field(default_factory=list)
    removed_info: dict[int, tuple[str, str | None]] = field(
        default_factory=dict
    )
    """(type, PCDATA value) per removed node, captured before removal —
    the same shape :class:`~repro.core.maintenance.DeleteMaintenance`
    records for subscription events, so callers driving this standalone
    GC pass can still describe nodes the store has already dropped."""

    @property
    def removed_node_count(self) -> int:
        return len(self.removed_nodes)

    @property
    def removed_edge_count(self) -> int:
        return len(self.removed_edges)


def collect_unreachable(store: ViewStore) -> GCResult:
    """Remove every node not reachable from the root; return what went."""
    result = GCResult()
    reachable = store.reachable_from_root()
    doomed = [node for node in store.nodes() if node not in reachable]
    for node in doomed:
        result.removed_info[node] = (store.type_of(node), store.value_of(node))
    # Remove edges first (both among doomed nodes and from doomed nodes
    # into surviving shared subtrees), then the isolated nodes.
    for node in doomed:
        for child in list(store.children_of(node)):
            store.remove_edge(node, child)
            result.removed_edges.append((node, child))
        for parent in list(store.parents_of(node)):
            store.remove_edge(parent, node)
            result.removed_edges.append((parent, node))
    for node in doomed:
        store.remove_node(node)
        result.removed_nodes.append(node)
    return result
