"""Relational coding of DAG-compressed XML views (paper, Section 2.3).

The published view ``σ(I)`` is stored as a DAG with one node per
``(element type, $A)`` pair — the *subtree property* guarantees this is
lossless.  The DAG is held in a :class:`~repro.views.store.ViewStore`
(gen tables + ordered edge relations) and can be materialized into plain
relations (``gen_A`` / ``edge_A_B`` tables) for storage in an RDBMS.

:mod:`repro.views.registry` derives, for every starred ATG rule, the
*edge-view* SPJ definition over the base relations — the key-preserving
views that the Section-4 translation algorithms reason over.
"""

from repro.views.store import ViewStore, ViewDelta, EdgeOp
from repro.views.registry import EdgeView, EdgeViewRegistry, build_registry
from repro.views.gc import collect_unreachable
from repro.views.loader import store_from_database

__all__ = [
    "ViewStore",
    "ViewDelta",
    "EdgeOp",
    "EdgeView",
    "EdgeViewRegistry",
    "build_registry",
    "collect_unreachable",
    "store_from_database",
]
