"""Reload a persisted DAG coding back into a :class:`ViewStore`.

:meth:`ViewStore.to_database` materializes the view as ``gen_A`` /
``edge_A_B`` relations (optionally pushed to SQLite by the bridge); this
module is the inverse: rebuild the in-memory store — including child
ordering, the intern table and the root — from those relations, so a
published view survives process restarts without republishing from the
base data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.atg.model import ATG
from repro.errors import ReproError
from repro.relational.database import Database
from repro.views.store import ViewStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.topo import TopoOrder
    from repro.index import ReachabilityIndex


def store_from_database(atg: ATG, db: Database) -> ViewStore:
    """Rebuild a view store from its relational materialization.

    ``db`` must contain one ``gen_<type>`` table per element type of the
    ATG's DTD and one ``edge_<parent>_<child>`` table per DTD edge, with
    the layout written by :meth:`ViewStore.to_database` (ids, semantic
    columns, and per-edge child positions).
    """
    store = ViewStore(atg)
    id_map: dict[int, int] = {}

    # gen tables: intern every node, remapping persisted ids to fresh
    # dense ids (interning keeps gen_id semantics; the mapping is only
    # needed while decoding the edges).
    for element in atg.dtd.types:
        table_name = f"gen_{element}"
        if table_name not in db:
            raise ReproError(f"missing table {table_name!r}")
        for row in db.rows(table_name):
            old_id, *sem = row
            node, _ = store.intern(element, tuple(sem))
            id_map[old_id] = node

    # edge tables: collect with positions, then add per parent in order.
    pending: dict[int, list[tuple[int, int]]] = {}
    for parent_type, child_type in atg.dtd.edges():
        table_name = f"edge_{parent_type}_{child_type}"
        if table_name not in db:
            raise ReproError(f"missing table {table_name!r}")
        for parent_old, child_old, position in db.rows(table_name):
            try:
                parent = id_map[parent_old]
                child = id_map[child_old]
            except KeyError as exc:
                raise ReproError(
                    f"edge table {table_name!r} references unknown node id "
                    f"{exc.args[0]}"
                ) from None
            pending.setdefault(parent, []).append((position, child))
    for parent, children in pending.items():
        for _, child in sorted(children):
            store.add_edge(parent, child)

    # Root: the unique node of the root type.
    roots = list(store.gen.get(atg.dtd.root, {}))
    if len(roots) != 1:
        raise ReproError(
            f"expected exactly one {atg.dtd.root!r} node, found {len(roots)}"
        )
    store.root_id = roots[0]
    return store


def load_structures(
    store: ViewStore, index_backend: str = "auto"
) -> "tuple[TopoOrder, ReachabilityIndex]":
    """Build the auxiliary structures ``(L, M)`` for a (re)loaded store.

    ``index_backend`` selects the reachability-index engine
    (``"auto"`` | ``"matrix"`` | ``"bitset"`` | ``"sets"``, see
    :mod:`repro.index` and ``docs/index-backends.md``).
    """
    from repro.core.topo import TopoOrder
    from repro.index import build_index

    topo = TopoOrder.from_store(store)
    return topo, build_index(store, topo, index_backend)
