"""Edge-view SPJ definitions over the base relations (paper, Section 2.3).

For every starred ATG rule ``A → B*`` with query ``$B ← Q($A)``, the
*edge view* ``Q_edge_A_B`` characterizes all derivable parent→child
edges: it is ``Q`` closed over its parameters (the parameter columns are
projected out instead of bound) and made *key-preserving* by additionally
projecting every base relation's primary key.

The closed form answers two questions the Section-4 translation needs:

- which base tuples derive a given edge (the deletable sources
  ``Sr(Q, t)`` of Algorithm delete) — read directly off the projected
  keys;
- which view tuples reference a given base tuple (the side-effect test) —
  evaluated with the key pushed down as a selection.

The paper's own formulation joins the derived ``gen_A`` table to restrict
parents to published ones; we instead close over *all* potential parents
and let reachability (the DAG store + garbage collection) decide what is
published.  This is equivalent for translation purposes — deleting a base
tuple removes the edge under every potential parent, which is exactly the
paper's side-effect semantics — and keeps every view a pure SPJ query
over base relations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atg.model import ATG, QueryRule
from repro.errors import ATGError
from repro.relational.conditions import And, Col, Const, Eq, Param, Predicate
from repro.relational.database import Database
from repro.relational.query import SPJQuery, QueryResult


@dataclass
class EdgeView:
    """The key-preserving SPJ view of one starred DTD edge.

    Attributes
    ----------
    parent_type / child_type:
        The DTD edge this view codes.
    query:
        Closed-form SPJ query.  Output layout:
        ``p_<param>...`` (parent parameter columns, in ``param_names``
        order), then the child's semantic-attribute columns, then
        ``k_<alias>_<attr>...`` key columns for every base occurrence.
    param_names:
        Parent-signature column names the original rule was
        parameterized by.
    child_columns:
        The child's semantic-attribute signature.
    key_layout:
        ``alias → (relation, [(output_index, attr), ...])`` describing
        where each base occurrence's key lives in an output row.
    """

    parent_type: str
    child_type: str
    query: SPJQuery
    param_names: tuple[str, ...]
    child_columns: tuple[str, ...]
    key_layout: dict[str, tuple[str, list[tuple[int, str]]]]

    # -- row accessors ------------------------------------------------------------

    @property
    def name(self) -> str:
        return f"edge_{self.parent_type}_{self.child_type}"

    @property
    def n_params(self) -> int:
        return len(self.param_names)

    @property
    def n_child(self) -> int:
        return len(self.child_columns)

    def visible(self, row: tuple) -> tuple[tuple, tuple]:
        """Split a view row into (parent params, child sem)."""
        return (
            tuple(row[: self.n_params]),
            tuple(row[self.n_params : self.n_params + self.n_child]),
        )

    def source_key(self, row: tuple, alias: str) -> tuple:
        """Primary key of the base tuple ``alias`` contributed to ``row``."""
        _, slots = self.key_layout[alias]
        return tuple(row[i] for i, _ in slots)

    def sources(self, row: tuple) -> list[tuple[str, str, tuple]]:
        """Deletable source of a view row: ``[(relation, alias, key), ...]``.

        This is ``Sr(Q, t)`` of the paper (Fig. 9) — under key
        preservation each base occurrence's contributing tuple is
        identified by its key inside ``t``.
        """
        return [
            (relation, alias, self.source_key(row, alias))
            for alias, (relation, _) in sorted(self.key_layout.items())
        ]

    # -- evaluation -----------------------------------------------------------------

    def evaluate(self, db: Database) -> QueryResult:
        """All derivable edges (full rows, including key columns)."""
        return self.query.evaluate(db)

    def matching_rows(
        self, db: Database, parent_params: tuple, child_sem: tuple
    ) -> list[tuple]:
        """View rows whose visible part equals the given edge."""
        extra: list[Predicate] = []
        for i, value in enumerate(parent_params):
            extra.append(Eq(self.query.project[i][1], Const(value)))
        for i, value in enumerate(child_sem):
            extra.append(
                Eq(self.query.project[self.n_params + i][1], Const(value))
            )
        narrowed = SPJQuery(
            f"{self.query.name}__point",
            self.query.tables,
            self.query.project,
            And(self.query.where, *extra),
        )
        return narrowed.evaluate(db).rows

    def rows_referencing(
        self, db: Database, alias: str, key: tuple
    ) -> list[tuple]:
        """View rows whose ``alias`` occurrence is the base tuple ``key``."""
        relation, slots = self.key_layout[alias]
        schema_key_attrs = [attr for _, attr in slots]
        extra = [
            Eq(Col(alias, attr), Const(value))
            for attr, value in zip(schema_key_attrs, key)
        ]
        narrowed = SPJQuery(
            f"{self.query.name}__ref",
            self.query.tables,
            self.query.project,
            And(self.query.where, *extra),
        )
        return narrowed.evaluate(db).rows


class EdgeViewRegistry:
    """All edge views of one ATG, indexed by (parent type, child type)."""

    def __init__(self, atg: ATG, views: dict[tuple[str, str], EdgeView]):
        self.atg = atg
        self._views = views

    def view(self, parent_type: str, child_type: str) -> EdgeView:
        try:
            return self._views[(parent_type, child_type)]
        except KeyError:
            raise ATGError(
                f"no edge view for {parent_type}->{child_type} "
                "(only starred edges have views)"
            ) from None

    def has_view(self, parent_type: str, child_type: str) -> bool:
        return (parent_type, child_type) in self._views

    def views(self) -> list[EdgeView]:
        return [self._views[k] for k in sorted(self._views)]

    def base_relations(self) -> set[str]:
        out: set[str] = set()
        for view in self._views.values():
            for relation, _ in view.query.tables:
                out.add(relation)
        return out


def build_registry(
    atg: ATG, db: Database, create_indexes: bool = True
) -> EdgeViewRegistry:
    """Derive the closed-form edge view for every starred ATG rule.

    With ``create_indexes`` (the default), secondary hash indexes are
    created on every base column used in an equality condition and on
    every primary key, so the point queries issued by the translation
    algorithms (``matching_rows``, ``rows_referencing``) avoid scans.
    """
    views: dict[tuple[str, str], EdgeView] = {}
    for rule in atg.query_rules():
        views[(rule.parent, rule.child)] = _close_rule(atg, db, rule)
    registry = EdgeViewRegistry(atg, views)
    if create_indexes:
        _create_indexes(registry, db)
    return registry


def _create_indexes(registry: EdgeViewRegistry, db: Database) -> None:
    for view in registry.views():
        alias_to_rel = {alias: rel for rel, alias in view.query.tables}
        for conjunct in view.query.where.conjuncts():
            for col in conjunct.columns():
                db.table(alias_to_rel[col.alias]).create_index((col.attr,))
        for _, col in view.query.project:
            db.table(alias_to_rel[col.alias]).create_index((col.attr,))
        for relation, _ in view.query.tables:
            schema = db.schema(relation)
            db.table(relation).create_index(tuple(sorted(schema.key)))


def _close_rule(atg: ATG, db: Database, rule: QueryRule) -> EdgeView:
    query = rule.query
    params = sorted(query.params())
    # Locate, for every parameter, the base columns it is equated with.
    param_cols: dict[str, list[Col]] = {p: [] for p in params}
    kept: list[Predicate] = []
    for conjunct in query.where.conjuncts():
        param_name, col = _param_equality(conjunct)
        if param_name is not None:
            if col is None:
                raise ATGError(
                    f"rule {rule.parent}->{rule.child}: parameter "
                    f"{param_name!r} used in a non-equality or "
                    "constant comparison; cannot close over it"
                )
            param_cols[param_name].append(col)
        else:
            kept.append(conjunct)
    project: list[tuple[str, Col]] = []
    for param in params:
        cols = param_cols[param]
        if not cols:
            raise ATGError(
                f"rule {rule.parent}->{rule.child}: parameter {param!r} "
                "never constrained by an equality"
            )
        project.append((f"p_{param}", cols[0]))
        for other in cols[1:]:
            kept.append(Eq(cols[0], other))
    for name, col in query.project:
        project.append((name, col))
    key_layout: dict[str, tuple[str, list[tuple[int, str]]]] = {}
    for relation, alias in query.tables:
        schema = db.schema(relation)
        slots: list[tuple[int, str]] = []
        for attr in schema.key:
            out_name = f"k_{alias}_{attr}"
            slots.append((len(project), attr))
            project.append((out_name, Col(alias, attr)))
        key_layout[alias] = (relation, slots)
    closed = SPJQuery(
        f"Qedge_{rule.parent}_{rule.child}",
        query.tables,
        project,
        And(*kept) if kept else And(),
    )
    return EdgeView(
        parent_type=rule.parent,
        child_type=rule.child,
        query=closed,
        param_names=tuple(params),
        child_columns=atg.signature(rule.child),
        key_layout=key_layout,
    )


def _param_equality(pred: Predicate) -> tuple[str | None, Col | None]:
    """Detect ``Col = Param`` / ``Param = Col`` conjuncts."""
    if not isinstance(pred, Eq):
        # A Param inside any other predicate is unsupported for closing.
        for term in getattr(pred, "left", None), getattr(pred, "right", None):
            if isinstance(term, Param):
                return term.name, None
        return None, None
    left, right = pred.left, pred.right
    if isinstance(left, Param) and isinstance(right, Col):
        return left.name, right
    if isinstance(right, Param) and isinstance(left, Col):
        return right.name, left
    if isinstance(left, Param) or isinstance(right, Param):
        name = left.name if isinstance(left, Param) else right.name
        return name, None
    return None, None
